#include "network/load.h"

#include <gtest/gtest.h>

#include "network/routing.h"
#include "topology/builders.h"

namespace hit::net {
namespace {

class LoadTest : public ::testing::Test {
 protected:
  // Case-study tree: access switches capacity 64, root 128.
  topo::Topology topo_ = topo::make_case_study_tree();
  LoadTracker load_{topo_};
  NodeId s1_ = topo_.servers()[0];
  NodeId s4_ = topo_.servers()[3];
  Policy cross_ = shortest_policy(topo_, s1_, s4_, FlowId(0));
};

TEST_F(LoadTest, AssignAndRemove) {
  load_.assign(cross_, 10.0);
  for (NodeId w : cross_.list) {
    EXPECT_DOUBLE_EQ(load_.load(w), 10.0);
  }
  load_.remove(cross_, 10.0);
  for (NodeId w : cross_.list) {
    EXPECT_DOUBLE_EQ(load_.load(w), 0.0);
  }
}

TEST_F(LoadTest, ResidualAndUtilization) {
  load_.assign(cross_, 16.0);
  const NodeId access = cross_.list[0];
  EXPECT_DOUBLE_EQ(load_.residual(access), 64.0 - 16.0);
  EXPECT_DOUBLE_EQ(load_.utilization(access), 0.25);
}

TEST_F(LoadTest, FeasibilityThresholds) {
  EXPECT_TRUE(load_.feasible(cross_, 64.0));
  EXPECT_FALSE(load_.feasible(cross_, 64.1));
  load_.assign(cross_, 60.0);
  EXPECT_TRUE(load_.feasible_switch(cross_.list[0], 4.0));
  EXPECT_FALSE(load_.feasible_switch(cross_.list[0], 5.0));
}

TEST_F(LoadTest, OverloadedDetection) {
  EXPECT_TRUE(load_.overloaded().empty());
  load_.assign(cross_, 65.0);  // access switches hold 64
  const auto over = load_.overloaded();
  ASSERT_EQ(over.size(), 2u);  // both access switches; root holds 128
  for (NodeId w : over) {
    EXPECT_EQ(topo_.tier(w), topo::Tier::Access);
  }
}

TEST_F(LoadTest, NegativeAndUnderflowErrors) {
  EXPECT_THROW(load_.assign(cross_, -1.0), std::invalid_argument);
  load_.assign(cross_, 5.0);
  EXPECT_THROW(load_.remove(cross_, 10.0), std::logic_error);
}

TEST_F(LoadTest, ResetClears) {
  load_.assign(cross_, 30.0);
  load_.reset();
  for (NodeId w : topo_.switches()) {
    EXPECT_DOUBLE_EQ(load_.load(w), 0.0);
  }
}

TEST_F(LoadTest, CandidatesFilterByResidual) {
  // Redundant-core tree so substitution candidates exist.
  topo::TreeConfig config;
  config.depth = 2;
  config.fanout = 2;
  config.redundancy = 2;
  config.hosts_per_access = 1;
  const topo::Topology t = topo::make_tree(config);
  LoadTracker load(t);
  const NodeId a = t.servers()[0];
  const NodeId b = t.servers()[1];
  const Policy p = shortest_policy(t, a, b, FlowId(0));
  ASSERT_EQ(p.len(), 3u);

  auto cands = load.candidates(a, b, p, 1, 1.0);
  ASSERT_EQ(cands.size(), 1u);  // the twin core

  // Saturate the twin: it drops out.
  Policy twin = p;
  twin.list[1] = cands[0];
  load.assign(twin, t.switch_capacity(cands[0]));
  EXPECT_TRUE(load.candidates(a, b, p, 1, 1.0).empty());
}

}  // namespace
}  // namespace hit::net
