// SRPT flow scheduling (related work [5][6]) — allocator unit tests plus the
// classic result: SRPT beats fair sharing on mean flow completion time.
#include <gtest/gtest.h>

#include "network/bandwidth.h"
#include "sched/capacity_scheduler.h"
#include "sim/engine.h"
#include "test_helpers.h"

namespace hit::net {
namespace {

class SrptTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::tiny_tree_world();  // links 16

  FlowDemand demand(unsigned id, std::size_t src, std::size_t dst) {
    const auto servers = world_->topology.servers();
    return FlowDemand{FlowId(id),
                      world_->topology.shortest_path(servers[src], servers[dst]),
                      0.0};
  }
};

TEST_F(SrptTest, ShortestFlowMonopolizesSharedLink) {
  // Two flows out of server 0 share its access link: SRPT gives the shorter
  // one the full 16 and starves the longer one.
  const auto rates = srpt_allocate(world_->topology,
                                   {demand(0, 0, 1), demand(1, 0, 3)},
                                   {5.0, 20.0});
  EXPECT_DOUBLE_EQ(rates[0], 16.0);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
}

TEST_F(SrptTest, DisjointFlowsBothRun) {
  const auto rates = srpt_allocate(world_->topology,
                                   {demand(0, 0, 1), demand(1, 2, 3)},
                                   {20.0, 5.0});
  EXPECT_DOUBLE_EQ(rates[0], 16.0);
  EXPECT_DOUBLE_EQ(rates[1], 16.0);
}

TEST_F(SrptTest, TiesBreakByFlowId) {
  const auto rates = srpt_allocate(world_->topology,
                                   {demand(7, 0, 1), demand(3, 0, 3)},
                                   {5.0, 5.0});
  EXPECT_DOUBLE_EQ(rates[1], 16.0);  // FlowId 3 wins the tie
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
}

TEST_F(SrptTest, RateCapRespectedAndLeftoverFlows) {
  auto capped = demand(0, 0, 1);
  capped.rate_cap = 4.0;
  const auto rates =
      srpt_allocate(world_->topology, {capped, demand(1, 0, 3)}, {5.0, 20.0});
  EXPECT_DOUBLE_EQ(rates[0], 4.0);
  EXPECT_DOUBLE_EQ(rates[1], 12.0);  // leftover of the shared access link
}

TEST_F(SrptTest, Validation) {
  EXPECT_THROW(
      (void)srpt_allocate(world_->topology, {demand(0, 0, 1)}, {1.0, 2.0}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)srpt_allocate(world_->topology, {demand(0, 0, 1)}, {1.0}, 0.0),
      std::invalid_argument);
}

TEST(SrptEngine, BeatsFairSharingOnMeanFlowTime) {
  auto world = test::small_tree_world();
  sched::CapacityScheduler scheduler;

  auto run_with = [&](net::SharingPolicy policy) {
    mr::WorkloadConfig config;
    config.num_jobs = 6;
    config.max_maps_per_job = 6;
    config.max_reduces_per_job = 2;
    config.block_size_gb = 3.0;
    const mr::WorkloadGenerator gen(config);
    mr::IdAllocator ids;
    Rng rng(5);
    const auto jobs = gen.generate(ids, rng);
    sim::SimConfig sconfig;
    sconfig.bandwidth_scale = 0.05;
    sconfig.sharing = policy;
    return sim::ClusterSimulator(world->cluster, sconfig)
        .run(scheduler, jobs, ids, rng);
  };

  const auto fair = run_with(net::SharingPolicy::MaxMinFair);
  const auto srpt = run_with(net::SharingPolicy::Srpt);
  // Classic SRPT property: mean flow completion time drops; total bytes and
  // static cost are placement-determined and identical.
  EXPECT_LT(srpt.average_flow_duration(), fair.average_flow_duration());
  EXPECT_DOUBLE_EQ(srpt.total_shuffle_cost, fair.total_shuffle_cost);
  EXPECT_NEAR(srpt.total_shuffle_gb, fair.total_shuffle_gb, 1e-6);
}

}  // namespace
}  // namespace hit::net
