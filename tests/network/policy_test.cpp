#include "network/policy.h"

#include <gtest/gtest.h>

#include "topology/builders.h"

namespace hit::net {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  topo::Topology topo_ = topo::make_case_study_tree();
  NodeId s1_ = topo_.servers()[0];
  NodeId s2_ = topo_.servers()[1];
  NodeId s4_ = topo_.servers()[3];
};

TEST_F(PolicyTest, FromPathMirrorsSwitches) {
  const topo::Path path = topo_.shortest_path(s1_, s4_);
  const Policy p = policy_from_path(topo_, path, FlowId(1));
  EXPECT_EQ(p.flow, FlowId(1));
  ASSERT_EQ(p.len(), 3u);
  EXPECT_EQ(p.type[0], topo::Tier::Access);
  EXPECT_EQ(p.type[1], topo::Tier::Core);
  EXPECT_EQ(p.type[2], topo::Tier::Access);
}

TEST_F(PolicyTest, SatisfiedForMatchingEndpoints) {
  const Policy p =
      policy_from_path(topo_, topo_.shortest_path(s1_, s4_), FlowId(1));
  EXPECT_TRUE(p.satisfied(topo_, s1_, s4_));
  // Same access pair also works in reverse direction for symmetric paths.
  EXPECT_FALSE(p.satisfied(topo_, s4_, s2_));  // s4 not attached to list[0]
}

TEST_F(PolicyTest, UnsatisfiedWhenTypeWrong) {
  Policy p = policy_from_path(topo_, topo_.shortest_path(s1_, s4_), FlowId(1));
  p.type[1] = topo::Tier::Aggregation;  // actual switch is Core
  EXPECT_FALSE(p.satisfied(topo_, s1_, s4_));
}

TEST_F(PolicyTest, UnsatisfiedWhenDisconnected) {
  Policy p = policy_from_path(topo_, topo_.shortest_path(s1_, s4_), FlowId(1));
  // Replace the middle (core) switch with the other access switch id but
  // keep the type list: type check fails first; also test wrong order.
  std::swap(p.list[0], p.list[2]);
  EXPECT_FALSE(p.satisfied(topo_, s1_, s4_));
}

TEST_F(PolicyTest, EmptyPolicyNeverSatisfied) {
  Policy p;
  EXPECT_FALSE(p.satisfied(topo_, s1_, s4_));
}

TEST_F(PolicyTest, RealizeReconstructsFullPath) {
  const topo::Path path = topo_.shortest_path(s1_, s4_);
  const Policy p = policy_from_path(topo_, path, FlowId(1));
  EXPECT_EQ(p.realize(topo_, s1_, s4_), path);
  EXPECT_THROW((void)p.realize(topo_, s4_, s2_), std::invalid_argument);
}

TEST_F(PolicyTest, RealizeInsertsBCubeRelays) {
  const topo::Topology bcube = topo::make_bcube(topo::BCubeConfig{4, 1});
  const NodeId a = bcube.servers()[0];
  const NodeId b = bcube.servers()[5];  // differs in both digits
  const topo::Path path = bcube.shortest_path(a, b);
  const Policy p = policy_from_path(bcube, path, FlowId(2));
  ASSERT_EQ(p.len(), 2u);
  EXPECT_TRUE(p.satisfied(bcube, a, b));
  const topo::Path realized = p.realize(bcube, a, b);
  EXPECT_EQ(realized.front(), a);
  EXPECT_EQ(realized.back(), b);
  EXPECT_EQ(realized.size(), 5u);  // a, sw, relay, sw, b
}

TEST_F(PolicyTest, ToStringNamesSwitches) {
  const Policy p =
      policy_from_path(topo_, topo_.shortest_path(s1_, s4_), FlowId(1));
  const std::string s = p.to_string(topo_);
  EXPECT_NE(s.find("access-left"), std::string::npos);
  EXPECT_NE(s.find("root"), std::string::npos);
  EXPECT_NE(s.find("access-right"), std::string::npos);
}

}  // namespace
}  // namespace hit::net
