#include "network/bandwidth.h"

#include <gtest/gtest.h>

#include <numeric>

#include "topology/builders.h"

namespace hit::net {
namespace {

class BandwidthTest : public ::testing::Test {
 protected:
  // Case study tree: every link 16.0; access capacity 64, root 128.
  topo::Topology topo_ = topo::make_case_study_tree();
  MaxMinFairAllocator alloc_{topo_};

  FlowDemand demand(std::size_t src, std::size_t dst, double cap = 0.0) {
    const auto servers = topo_.servers();
    return FlowDemand{FlowId(static_cast<FlowId::value_type>(next_id_++)),
                      topo_.shortest_path(servers[src], servers[dst]), cap};
  }

  unsigned next_id_ = 0;
};

TEST_F(BandwidthTest, SingleFlowGetsBottleneckLink) {
  const auto rates = alloc_.allocate({demand(0, 3)});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 16.0);  // limited by its server link
}

TEST_F(BandwidthTest, TwoFlowsShareServerLink) {
  // Both flows originate at server 0: its single 16.0 link splits evenly.
  const auto rates = alloc_.allocate({demand(0, 1), demand(0, 3)});
  EXPECT_DOUBLE_EQ(rates[0], 8.0);
  EXPECT_DOUBLE_EQ(rates[1], 8.0);
}

TEST_F(BandwidthTest, DisjointFlowsDoNotInterfere) {
  const auto rates = alloc_.allocate({demand(0, 1), demand(2, 3)});
  EXPECT_DOUBLE_EQ(rates[0], 16.0);
  EXPECT_DOUBLE_EQ(rates[1], 16.0);
}

TEST_F(BandwidthTest, RateCapRespected) {
  const auto rates = alloc_.allocate({demand(0, 3, 2.5)});
  EXPECT_DOUBLE_EQ(rates[0], 2.5);
}

TEST_F(BandwidthTest, CapFreesBandwidthForOthers) {
  // Two flows share server 0's link; one is capped at 4, the other takes 12.
  const auto rates = alloc_.allocate({demand(0, 1, 4.0), demand(0, 3)});
  EXPECT_DOUBLE_EQ(rates[0], 4.0);
  EXPECT_DOUBLE_EQ(rates[1], 12.0);
}

TEST_F(BandwidthTest, MaxMinPropertyNoFlowStarves) {
  std::vector<FlowDemand> demands;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) demands.push_back(demand(i, j));
    }
  }
  const auto rates = alloc_.allocate(demands);
  for (double r : rates) {
    EXPECT_GT(r, 0.0);
  }
}

TEST_F(BandwidthTest, NoResourceOverCommitted) {
  std::vector<FlowDemand> demands;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) demands.push_back(demand(i, j));
    }
  }
  const auto rates = alloc_.allocate(demands);
  // Check each link's aggregate rate against its capacity.
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const topo::Path& p = demands[i].path;
    for (std::size_t e = 0; e + 1 < p.size(); ++e) {
      double total = 0.0;
      for (std::size_t j = 0; j < demands.size(); ++j) {
        const topo::Path& q = demands[j].path;
        for (std::size_t f = 0; f + 1 < q.size(); ++f) {
          const bool same = (q[f] == p[e] && q[f + 1] == p[e + 1]) ||
                            (q[f] == p[e + 1] && q[f + 1] == p[e]);
          if (same) total += rates[j];
        }
      }
      EXPECT_LE(total, 16.0 + 1e-6);
    }
  }
}

TEST_F(BandwidthTest, ScaleMultipliesCapacity) {
  const MaxMinFairAllocator half(topo_, 0.5);
  const auto rates = half.allocate({demand(0, 3)});
  EXPECT_DOUBLE_EQ(rates[0], 8.0);
}

TEST_F(BandwidthTest, SwitchCapacityBinds) {
  // 4 flows through the same access switch pair exceed link fan-in before
  // switch capacity (64) binds; scale switch capacity down instead.
  topo::Topology tiny(topo::Family::Custom);
  const NodeId w = tiny.add_switch(topo::Tier::Access, 3.0, "w");
  const NodeId a = tiny.add_server("a");
  const NodeId b = tiny.add_server("b");
  tiny.add_link(a, w, 16.0);
  tiny.add_link(b, w, 16.0);
  const MaxMinFairAllocator alloc(tiny);
  const auto rates =
      alloc.allocate({FlowDemand{FlowId(0), tiny.shortest_path(a, b), 0.0}});
  EXPECT_DOUBLE_EQ(rates[0], 3.0);  // switch processing capacity binds
}

TEST_F(BandwidthTest, ErrorsOnBadInput) {
  EXPECT_THROW((void)MaxMinFairAllocator(topo_, 0.0), std::invalid_argument);
  EXPECT_THROW((void)alloc_.allocate({FlowDemand{FlowId(0), {}, 0.0}}),
               std::invalid_argument);
  // Path with a missing link.
  const auto servers = topo_.servers();
  EXPECT_THROW((void)alloc_.allocate({FlowDemand{
                   FlowId(0), topo::Path{servers[0], servers[1]}, 0.0}}),
               std::invalid_argument);
  EXPECT_TRUE(alloc_.allocate({}).empty());
}

TEST_F(BandwidthTest, DeterministicAcrossCalls) {
  std::vector<FlowDemand> demands{demand(0, 1), demand(0, 2), demand(1, 3)};
  const auto r1 = alloc_.allocate(demands);
  const auto r2 = alloc_.allocate(demands);
  EXPECT_EQ(r1, r2);
}

}  // namespace
}  // namespace hit::net
