#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hit {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, AllTasksExecute) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(50, 0);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, DrainsQueueBeforeDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace hit
