#include "util/logging.h"

#include <gtest/gtest.h>

namespace hit::log {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = threshold(); }
  void TearDown() override { set_level(saved_); }
  Level saved_ = Level::Warn;

  /// Capture stderr around `fn`.
  template <typename F>
  std::string capture(F&& fn) {
    testing::internal::CaptureStderr();
    fn();
    return testing::internal::GetCapturedStderr();
  }
};

TEST_F(LoggingTest, DefaultThresholdSuppressesInfo) {
  set_level(Level::Warn);
  const std::string out = capture([] { HIT_LOG_INFO() << "quiet"; });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, WarnAndAboveEmit) {
  set_level(Level::Warn);
  const std::string out = capture([] {
    HIT_LOG_WARN() << "w" << 1;
    HIT_LOG_ERROR() << "e" << 2;
  });
  EXPECT_NE(out.find("WARN  w1"), std::string::npos);
  EXPECT_NE(out.find("ERROR e2"), std::string::npos);
}

TEST_F(LoggingTest, LoweringThresholdEnablesDebug) {
  set_level(Level::Trace);
  const std::string out = capture([] {
    HIT_LOG_TRACE() << "t";
    HIT_LOG_DEBUG() << "d";
  });
  EXPECT_NE(out.find("TRACE t"), std::string::npos);
  EXPECT_NE(out.find("DEBUG d"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_level(Level::Off);
  const std::string out = capture([] { HIT_LOG_ERROR() << "nope"; });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, TagPrefixesLine) {
  set_level(Level::Info);
  const std::string out =
      capture([] { Log(Level::Info, "sched") << "placed"; });
  EXPECT_NE(out.find("[sched] placed"), std::string::npos);
}

TEST_F(LoggingTest, MacrosAcceptOptionalTag) {
  set_level(Level::Info);
  const std::string tagged =
      capture([] { HIT_LOG_INFO("controller") << "rerouted"; });
  EXPECT_NE(tagged.find("INFO"), std::string::npos);
  EXPECT_NE(tagged.find("[controller] rerouted"), std::string::npos);

  // Bare form keeps working: no tag, no brackets.
  const std::string bare = capture([] { HIT_LOG_WARN() << "plain"; });
  EXPECT_NE(bare.find("WARN  plain"), std::string::npos);
  EXPECT_EQ(bare.find('['), std::string::npos);
}

TEST_F(LoggingTest, TaggedMacrosRespectThreshold) {
  set_level(Level::Error);
  const std::string out =
      capture([] { HIT_LOG_INFO("controller") << "suppressed"; });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_EQ(name(Level::Trace), "TRACE");
  EXPECT_EQ(name(Level::Error), "ERROR");
}

}  // namespace
}  // namespace hit::log
