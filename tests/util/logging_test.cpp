#include "util/logging.h"

#include <gtest/gtest.h>

namespace hit::log {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = threshold(); }
  void TearDown() override { set_level(saved_); }
  Level saved_ = Level::Warn;

  /// Capture stderr around `fn`.
  template <typename F>
  std::string capture(F&& fn) {
    testing::internal::CaptureStderr();
    fn();
    return testing::internal::GetCapturedStderr();
  }
};

TEST_F(LoggingTest, DefaultThresholdSuppressesInfo) {
  set_level(Level::Warn);
  const std::string out = capture([] { HIT_LOG_INFO() << "quiet"; });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, WarnAndAboveEmit) {
  set_level(Level::Warn);
  const std::string out = capture([] {
    HIT_LOG_WARN() << "w" << 1;
    HIT_LOG_ERROR() << "e" << 2;
  });
  EXPECT_NE(out.find("WARN  w1"), std::string::npos);
  EXPECT_NE(out.find("ERROR e2"), std::string::npos);
}

TEST_F(LoggingTest, LoweringThresholdEnablesDebug) {
  set_level(Level::Trace);
  const std::string out = capture([] {
    HIT_LOG_TRACE() << "t";
    HIT_LOG_DEBUG() << "d";
  });
  EXPECT_NE(out.find("TRACE t"), std::string::npos);
  EXPECT_NE(out.find("DEBUG d"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_level(Level::Off);
  const std::string out = capture([] { HIT_LOG_ERROR() << "nope"; });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, TagPrefixesLine) {
  set_level(Level::Info);
  const std::string out =
      capture([] { Log(Level::Info, "sched") << "placed"; });
  EXPECT_NE(out.find("[sched] placed"), std::string::npos);
}

TEST_F(LoggingTest, MacrosAcceptOptionalTag) {
  set_level(Level::Info);
  const std::string tagged =
      capture([] { HIT_LOG_INFO("controller") << "rerouted"; });
  EXPECT_NE(tagged.find("INFO"), std::string::npos);
  EXPECT_NE(tagged.find("[controller] rerouted"), std::string::npos);

  // Bare form keeps working: no tag, no brackets.
  const std::string bare = capture([] { HIT_LOG_WARN() << "plain"; });
  EXPECT_NE(bare.find("WARN  plain"), std::string::npos);
  EXPECT_EQ(bare.find('['), std::string::npos);
}

TEST_F(LoggingTest, TaggedMacrosRespectThreshold) {
  set_level(Level::Error);
  const std::string out =
      capture([] { HIT_LOG_INFO("controller") << "suppressed"; });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_EQ(name(Level::Trace), "TRACE");
  EXPECT_EQ(name(Level::Error), "ERROR");
}

TEST(ParseLevel, AcceptsCanonicalNamesCaseInsensitively) {
  EXPECT_EQ(parse_level("trace"), Level::Trace);
  EXPECT_EQ(parse_level("DEBUG"), Level::Debug);
  EXPECT_EQ(parse_level("Info"), Level::Info);
  EXPECT_EQ(parse_level("wArN"), Level::Warn);
  EXPECT_EQ(parse_level("error"), Level::Error);
  EXPECT_EQ(parse_level("OFF"), Level::Off);
}

TEST(ParseLevel, AcceptsAliases) {
  EXPECT_EQ(parse_level("warning"), Level::Warn);
  EXPECT_EQ(parse_level("none"), Level::Off);
}

TEST(ParseLevel, RejectsUnknownText) {
  EXPECT_EQ(parse_level(""), std::nullopt);
  EXPECT_EQ(parse_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_level("warn "), std::nullopt);  // no trimming: exact tokens
  EXPECT_EQ(parse_level("2"), std::nullopt);
}

// detail::initial_level() re-reads HIT_LOG_LEVEL each call, so the env-var
// behavior is testable even though threshold() latched its value at startup.
class EnvLevelTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("HIT_LOG_LEVEL"); }
};

TEST_F(EnvLevelTest, UnsetKeepsDefaultWarn) {
  unsetenv("HIT_LOG_LEVEL");
  EXPECT_EQ(detail::initial_level(), Level::Warn);
}

TEST_F(EnvLevelTest, ValidValueApplies) {
  setenv("HIT_LOG_LEVEL", "debug", 1);
  EXPECT_EQ(detail::initial_level(), Level::Debug);
  setenv("HIT_LOG_LEVEL", "ERROR", 1);
  EXPECT_EQ(detail::initial_level(), Level::Error);
}

TEST_F(EnvLevelTest, BadValueWarnsOnceAndKeepsDefault) {
  setenv("HIT_LOG_LEVEL", "loudest", 1);
  testing::internal::CaptureStderr();
  const Level level = detail::initial_level();
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(level, Level::Warn);
  EXPECT_NE(out.find("HIT_LOG_LEVEL"), std::string::npos);
  EXPECT_NE(out.find("loudest"), std::string::npos);
}

TEST_F(EnvLevelTest, EmptyValueIsDefaultWithoutWarning) {
  setenv("HIT_LOG_LEVEL", "", 1);
  testing::internal::CaptureStderr();
  const Level level = detail::initial_level();
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
  EXPECT_EQ(level, Level::Warn);
}

}  // namespace
}  // namespace hit::log
