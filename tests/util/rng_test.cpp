#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace hit {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsIndependentOfConsumption) {
  Rng a(42);
  Rng b(42);
  (void)b.uniform(0, 1);  // consume from b only
  EXPECT_EQ(a.fork(7).seed(), b.fork(7).seed());
}

TEST(Rng, ForkSaltsDiffer) {
  Rng a(42);
  EXPECT_NE(a.fork(1).seed(), a.fork(2).seed());
}

TEST(Rng, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
  EXPECT_THROW((void)rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_index(7), 7u);
  }
  EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformRealRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsZeros) {
  Rng rng(7);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
  EXPECT_THROW((void)rng.weighted_index({}), std::invalid_argument);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(8);
  const std::vector<double> weights{1.0, 3.0};
  int hi = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.weighted_index(weights) == 1) ++hi;
  }
  EXPECT_NEAR(static_cast<double>(hi) / n, 0.75, 0.03);
}

TEST(Rng, ZipfSkewPrefersLowRanks) {
  Rng rng(9);
  int first = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.zipf(10, 1.5) == 0) ++first;
  }
  // Rank 0 share under s=1.5, n=10 is ~0.66 of the mass... at least dominant.
  EXPECT_GT(first, n / 3);
  EXPECT_THROW((void)rng.zipf(0, 1.0), std::invalid_argument);
}

TEST(Rng, ZipfZeroExponentIsUniformish) {
  Rng rng(10);
  std::vector<int> counts(4, 0);
  const int n = 8000;
  for (int i = 0; i < n; ++i) ++counts[rng.zipf(4, 0.0)];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.05);
}

TEST(Rng, LognormalMedianRoughlyCorrect) {
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 4001; ++i) samples.push_back(rng.lognormal_median(10.0, 0.3));
  std::nth_element(samples.begin(), samples.begin() + 2000, samples.end());
  EXPECT_NEAR(samples[2000], 10.0, 0.5);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace hit
