#include "util/ids.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace hit {
namespace {

TEST(Ids, DefaultConstructedIsInvalid) {
  ServerId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), ServerId::kInvalid);
}

TEST(Ids, ExplicitValueIsValid) {
  ServerId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
  EXPECT_EQ(id.index(), 7u);
}

TEST(Ids, EqualityAndOrdering) {
  TaskId a(1), b(2), c(1);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, c);
  EXPECT_GE(c, a);
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<ServerId, TaskId>);
  static_assert(!std::is_same_v<FlowId, PolicyId>);
}

TEST(Ids, HashWorksInUnorderedContainers) {
  std::unordered_set<JobId> set;
  set.insert(JobId(1));
  set.insert(JobId(2));
  set.insert(JobId(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, StreamOutput) {
  std::ostringstream os;
  os << FlowId(3) << " " << FlowId();
  EXPECT_EQ(os.str(), "3 <invalid>");
}

}  // namespace
}  // namespace hit
