// Full-pipeline integration: workload generation -> scheduling -> simulation
// across scheduler x topology combinations, checking the paper's qualitative
// claims hold on every substrate.
#include <gtest/gtest.h>

#include "core/hit_scheduler.h"
#include "core/taa.h"
#include "mapreduce/workload.h"
#include "sched/capacity_scheduler.h"
#include "sched/pna_scheduler.h"
#include "sim/engine.h"
#include "test_helpers.h"

namespace hit {
namespace {

struct TopoCase {
  std::string name;
  std::function<topo::Topology()> build;
};

class EndToEnd : public ::testing::TestWithParam<TopoCase> {
 protected:
  sim::SimResult run(sched::Scheduler& scheduler, const test::World& world,
                     std::uint64_t seed) {
    mr::WorkloadConfig wconfig;
    wconfig.num_jobs = 4;
    wconfig.max_maps_per_job = 6;
    wconfig.max_reduces_per_job = 2;
    wconfig.block_size_gb = 2.0;
    const mr::WorkloadGenerator generator(wconfig);
    Rng rng(seed);
    mr::IdAllocator ids;
    const auto jobs = generator.generate(ids, rng);
    sim::SimConfig sconfig;
    sconfig.bandwidth_scale = 0.1;
    const sim::ClusterSimulator sim(world.cluster, sconfig);
    return sim.run(scheduler, jobs, ids, rng);
  }
};

TEST_P(EndToEnd, AllSchedulersCompleteAllJobs) {
  auto world = std::make_unique<test::World>(GetParam().build(),
                                             cluster::Resource{2.0, 8.0});
  sched::CapacityScheduler capacity;
  sched::PnaScheduler pna;
  core::HitScheduler hit;
  for (sched::Scheduler* s :
       {static_cast<sched::Scheduler*>(&capacity),
        static_cast<sched::Scheduler*>(&pna),
        static_cast<sched::Scheduler*>(&hit)}) {
    const sim::SimResult result = run(*s, *world, 11);
    EXPECT_EQ(result.jobs.size(), 4u) << s->name();
    for (const auto& j : result.jobs) {
      EXPECT_GT(j.completion_time, 0.0) << s->name();
    }
  }
}

TEST_P(EndToEnd, HitNeverCostsMoreThanCapacity) {
  auto world = std::make_unique<test::World>(GetParam().build(),
                                             cluster::Resource{2.0, 8.0});
  sched::CapacityScheduler capacity;
  core::HitScheduler hit;
  double cap_total = 0.0, hit_total = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    cap_total += run(capacity, *world, seed).total_shuffle_cost;
    hit_total += run(hit, *world, seed).total_shuffle_cost;
  }
  EXPECT_LE(hit_total, cap_total * 1.02);  // allow noise, expect a clear win
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, EndToEnd,
    ::testing::Values(
        TopoCase{"Tree",
                 [] { return topo::make_tree(topo::TreeConfig{3, 2, 2, 2}); }},
        TopoCase{"FatTree", [] { return topo::make_fat_tree(topo::FatTreeConfig{4}); }},
        TopoCase{"Vl2",
                 [] { return topo::make_vl2(topo::Vl2Config{2, 4, 4, 4}); }},
        TopoCase{"BCube", [] { return topo::make_bcube(topo::BCubeConfig{4, 1}); }}),
    [](const ::testing::TestParamInfo<TopoCase>& info) { return info.param.name; });

}  // namespace
}  // namespace hit
