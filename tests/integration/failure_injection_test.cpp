// Failure injection: degenerate clusters, saturated networks, zero-capacity
// servers, infeasible policies.  Schedulers must degrade gracefully — throw
// typed errors or route around damage, never crash or violate constraints.
#include <gtest/gtest.h>

#include "core/hit_scheduler.h"
#include "core/taa.h"
#include "sched/capacity_scheduler.h"
#include "sched/pna_scheduler.h"
#include "test_helpers.h"

namespace hit {
namespace {

TEST(FailureInjection, ZeroCapacityServersAreAvoided) {
  const topo::Topology topology = topo::make_case_study_tree();
  // Server 0 has zero capacity.
  std::vector<cluster::Resource> caps(4, cluster::Resource{2.0, 8.0});
  caps[0] = cluster::Resource{0.0, 0.0};
  const cluster::Cluster cluster(topology, caps);

  sched::Problem problem;
  problem.topology = &topology;
  problem.cluster = &cluster;
  for (unsigned i = 0; i < 4; ++i) {
    problem.tasks.push_back(sched::TaskRef{
        TaskId(i), JobId(0),
        i < 2 ? cluster::TaskKind::Map : cluster::TaskKind::Reduce,
        cluster::kDefaultContainerDemand, 1.0});
  }
  problem.flows = {net::Flow{FlowId(0), JobId(0), TaskId(0), TaskId(2), 2.0, 2.0},
                   net::Flow{FlowId(1), JobId(0), TaskId(1), TaskId(3), 2.0, 2.0}};

  sched::CapacityScheduler capacity;
  core::HitScheduler hit;
  for (sched::Scheduler* s : {static_cast<sched::Scheduler*>(&capacity),
                              static_cast<sched::Scheduler*>(&hit)}) {
    Rng rng(1);
    const auto a = s->schedule(problem, rng);
    for (const auto& [task, server] : a.placement) {
      EXPECT_NE(server, ServerId(0)) << s->name();
    }
    EXPECT_TRUE(core::taa_violations(problem, a).empty()) << s->name();
  }
}

TEST(FailureInjection, HitFallsBackWhenNetworkSaturated) {
  // Tiny switch capacities: no route can carry the flows' rates; Hit must
  // fall back to shortest paths instead of failing.
  const topo::Topology topology = topo::make_case_study_tree(16.0, /*cap=*/0.5);
  const cluster::Cluster cluster(topology, cluster::Resource{2.0, 8.0});

  sched::Problem problem;
  problem.topology = &topology;
  problem.cluster = &cluster;
  problem.tasks = {sched::TaskRef{TaskId(0), JobId(0), cluster::TaskKind::Map,
                                  cluster::kDefaultContainerDemand, 1.0},
                   sched::TaskRef{TaskId(1), JobId(0), cluster::TaskKind::Map,
                                  cluster::kDefaultContainerDemand, 1.0},
                   sched::TaskRef{TaskId(2), JobId(0), cluster::TaskKind::Reduce,
                                  cluster::kDefaultContainerDemand, 1.0},
                   sched::TaskRef{TaskId(3), JobId(0), cluster::TaskKind::Reduce,
                                  cluster::kDefaultContainerDemand, 1.0}};
  problem.flows = {net::Flow{FlowId(0), JobId(0), TaskId(0), TaskId(2), 8.0, 8.0},
                   net::Flow{FlowId(1), JobId(0), TaskId(0), TaskId(3), 8.0, 8.0},
                   net::Flow{FlowId(2), JobId(0), TaskId(1), TaskId(2), 8.0, 8.0},
                   net::Flow{FlowId(3), JobId(0), TaskId(1), TaskId(3), 8.0, 8.0}};

  core::HitScheduler hit;
  Rng rng(2);
  sched::Assignment a;
  ASSERT_NO_THROW(a = hit.schedule(problem, rng));
  // Placement complete and within compute capacity; policies exist for all
  // placed non-local flows (switch capacity is violated by construction —
  // the simulator handles that by throttling, not the scheduler by failing).
  EXPECT_NO_THROW(sched::validate_assignment(problem, a));
}

TEST(FailureInjection, SingleSlotClusterSerializesEverything) {
  const topo::Topology topology = topo::make_case_study_tree();
  const cluster::Cluster cluster(topology, cluster::Resource{1.0, 4.0});

  sched::Problem problem;
  problem.topology = &topology;
  problem.cluster = &cluster;
  for (unsigned i = 0; i < 4; ++i) {
    problem.tasks.push_back(sched::TaskRef{TaskId(i), JobId(0),
                                           cluster::TaskKind::Map,
                                           cluster::kDefaultContainerDemand, 1.0});
  }
  core::HitScheduler hit;
  Rng rng(3);
  const auto a = hit.schedule(problem, rng);
  // Exactly one task per server.
  std::set<ServerId> used;
  for (const auto& [task, server] : a.placement) {
    EXPECT_TRUE(used.insert(server).second);
  }
}

TEST(FailureInjection, PnaSurvivesMissingBlockInfo) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 3, 2, 4.0);
  fixture.problem.blocks = nullptr;  // no HDFS metadata at all
  sched::PnaScheduler pna;
  Rng rng(4);
  EXPECT_NO_THROW(sched::validate_assignment(fixture.problem,
                                             pna.schedule(fixture.problem, rng)));
}

TEST(FailureInjection, OverloadedSwitchDetectedByAudit) {
  const topo::Topology topology = topo::make_case_study_tree(16.0, 4.0);
  net::LoadTracker load(topology);
  net::Policy p;
  p.list = {topology.switches()[1]};
  p.type = {topo::Tier::Access};
  load.assign(p, 100.0);
  EXPECT_FALSE(load.overloaded().empty());
}

}  // namespace
}  // namespace hit
