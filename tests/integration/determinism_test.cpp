// Whole-pipeline determinism: identical seeds must reproduce every metric
// bit-for-bit — the property that makes the benchmark harnesses regenerate
// the paper's figures stably.
#include <gtest/gtest.h>

#include "core/hit_scheduler.h"
#include "mapreduce/workload.h"
#include "sched/pna_scheduler.h"
#include "sim/engine.h"
#include "test_helpers.h"

namespace hit {
namespace {

sim::SimResult pipeline(const test::World& world, sched::Scheduler& scheduler,
                        std::uint64_t seed) {
  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 5;
  wconfig.max_maps_per_job = 5;
  wconfig.max_reduces_per_job = 2;
  const mr::WorkloadGenerator generator(wconfig);
  Rng rng(seed);
  mr::IdAllocator ids;
  const auto jobs = generator.generate(ids, rng);
  const sim::ClusterSimulator sim(world.cluster);
  return sim.run(scheduler, jobs, ids, rng);
}

TEST(Determinism, HitPipelineBitIdentical) {
  auto world = test::small_tree_world();
  core::HitScheduler hit;
  const auto a = pipeline(*world, hit, 42);
  const auto b = pipeline(*world, hit, 42);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].start, b.tasks[i].start);
    EXPECT_DOUBLE_EQ(a.tasks[i].finish, b.tasks[i].finish);
  }
  EXPECT_DOUBLE_EQ(a.total_shuffle_cost, b.total_shuffle_cost);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Determinism, StochasticSchedulerStillSeedStable) {
  auto world = test::small_tree_world();
  sched::PnaScheduler pna;
  const auto a = pipeline(*world, pna, 7);
  const auto b = pipeline(*world, pna, 7);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_shuffle_cost, b.total_shuffle_cost);
}

TEST(Determinism, DifferentSeedsDiffer) {
  auto world = test::small_tree_world();
  core::HitScheduler hit;
  const auto a = pipeline(*world, hit, 1);
  const auto b = pipeline(*world, hit, 2);
  EXPECT_NE(a.makespan, b.makespan);  // different workloads entirely
}

}  // namespace
}  // namespace hit
