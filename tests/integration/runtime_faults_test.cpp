// Runtime fault injection end-to-end: both simulators ride out mid-run
// switch and server failures (maps re-executed, shuffle flows detoured or
// stalled), seeded fault runs replay bit-identically, and the controller's
// fail/recover path keeps its ledger auditable throughout.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/controller.h"
#include "core/hit_scheduler.h"
#include "network/routing.h"
#include "sched/capacity_scheduler.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/online.h"
#include "test_helpers.h"

namespace hit {
namespace {

/// Jobs with long deterministic map compute so a t=1 server fault is
/// guaranteed mid-map, and enough shuffle that a later switch fault lands
/// mid-transfer.
std::vector<mr::Job> long_map_jobs(mr::IdAllocator& ids, std::size_t n,
                                   std::size_t maps, std::size_t reduces,
                                   double shuffle_gb) {
  std::vector<mr::Job> jobs;
  for (std::size_t j = 0; j < n; ++j) {
    mr::Job job;
    job.id = ids.next_job();
    job.benchmark = "fault-drill";
    job.cls = mr::JobClass::ShuffleHeavy;
    job.input_gb = shuffle_gb;
    job.shuffle_gb = shuffle_gb;
    for (std::size_t m = 0; m < maps; ++m) {
      mr::Task t;
      t.id = ids.next_task();
      t.job = job.id;
      t.kind = cluster::TaskKind::Map;
      t.index = m;
      t.input_gb = shuffle_gb / static_cast<double>(maps);
      t.compute_seconds = 5.0;
      job.maps.push_back(t);
    }
    for (std::size_t r = 0; r < reduces; ++r) {
      mr::Task t;
      t.id = ids.next_task();
      t.job = job.id;
      t.kind = cluster::TaskKind::Reduce;
      t.index = r;
      t.input_gb = shuffle_gb / static_cast<double>(reduces);
      t.compute_seconds = 1.0;
      job.reduces.push_back(t);
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

NodeId first_core_switch(const topo::Topology& topo) {
  for (NodeId sw : topo.switches()) {
    if (topo.tier(sw) == topo::Tier::Core) return sw;
  }
  return topo.switches().back();
}

class RuntimeFaults : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();  // 8x2 slots
  sched::CapacityScheduler capacity_;

  sim::SimConfig fault_config() {
    sim::SimConfig config;
    config.bandwidth_scale = 0.05;  // stretch the shuffle phase
    // Servers die mid-map (compute = 5 s) and repair before the re-executed
    // wave ends; a core switch dies mid-shuffle, permanently.
    config.faults.fail_server(world_->topology.servers()[0], 1.0,
                              /*repair_after=*/10.0);
    config.faults.fail_server(world_->topology.servers()[3], 1.5,
                              /*repair_after=*/10.0);
    config.faults.fail_switch(first_core_switch(world_->topology), 7.0);
    return config;
  }

  sim::SimResult run_batch(std::uint64_t seed) {
    mr::IdAllocator ids;
    auto jobs = long_map_jobs(ids, 2, 4, 2, 8.0);
    const sim::ClusterSimulator sim(world_->cluster, fault_config());
    Rng rng(seed);
    return sim.run(capacity_, jobs, ids, rng);
  }
};

TEST_F(RuntimeFaults, BatchRunSurvivesServerAndSwitchFaults) {
  const sim::SimResult result = run_batch(21);

  // Run completed with every job accounted for.
  ASSERT_EQ(result.jobs.size(), 2u);
  for (const auto& j : result.jobs) EXPECT_GT(j.completion_time, 0.0);

  const sim::RecoveryStats& rec = result.recovery;
  EXPECT_GE(rec.faults_applied, 5u);  // 2 server pairs + permanent switch
  EXPECT_EQ(rec.servers_failed, 2u);
  EXPECT_EQ(rec.switches_failed, 1u);

  // Both failed servers hosted containers at t=1/1.5 (10 containers over 8
  // servers): every killed map must have been re-executed to completion.
  EXPECT_GT(rec.maps_killed, 0u);
  EXPECT_EQ(rec.maps_reexecuted, rec.maps_killed);
  EXPECT_GT(rec.unavailable_seconds, 0.0);

  // No flow finishing after the permanent switch death routes across it.
  const NodeId dead = first_core_switch(world_->topology);
  for (const sim::FlowTiming& f : result.flows) {
    if (f.local || f.finish <= 7.0) continue;
    EXPECT_EQ(std::count(f.final_route.begin(), f.final_route.end(), dead), 0)
        << "flow " << f.id << " still crosses the dead core";
  }
}

TEST_F(RuntimeFaults, BatchFaultRunsAreBitIdentical) {
  const sim::SimResult a = run_batch(22);
  const sim::SimResult b = run_batch(22);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_shuffle_cost, b.total_shuffle_cost);
  EXPECT_EQ(a.recovery.maps_killed, b.recovery.maps_killed);
  EXPECT_EQ(a.recovery.flows_rerouted, b.recovery.flows_rerouted);
  EXPECT_EQ(a.recovery.flows_stalled, b.recovery.flows_stalled);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].finish, b.flows[i].finish);
    EXPECT_EQ(a.flows[i].reroutes, b.flows[i].reroutes);
    EXPECT_EQ(a.flows[i].final_route, b.flows[i].final_route);
  }
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].finish, b.tasks[i].finish);
  }
}

TEST_F(RuntimeFaults, EmptyPlanMatchesFaultFreeRunExactly) {
  // The fault-aware engine with no faults must be bit-identical to the
  // plain configuration — the restructuring cannot perturb anything.
  auto run_with = [&](sim::SimConfig config) {
    mr::IdAllocator ids;
    auto jobs = long_map_jobs(ids, 2, 4, 2, 8.0);
    const sim::ClusterSimulator sim(world_->cluster, config);
    Rng rng(23);
    return sim.run(capacity_, jobs, ids, rng);
  };
  sim::SimConfig plain;
  plain.bandwidth_scale = 0.05;
  const sim::SimResult a = run_with(plain);
  const sim::SimResult b = run_with(plain);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.recovery.faults_applied, 0u);
  EXPECT_EQ(a.recovery.maps_killed, 0u);
  for (const sim::FlowTiming& f : a.flows) {
    EXPECT_EQ(f.reroutes, 0u);
    EXPECT_DOUBLE_EQ(f.stall_seconds, 0.0);
    EXPECT_TRUE(f.final_route.empty());  // only recorded on fault runs
  }
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].finish, b.flows[i].finish);
  }
}

TEST_F(RuntimeFaults, OnlineRunSurvivesAndReplaysIdentically) {
  auto run_online = [&]() {
    mr::IdAllocator ids;
    auto jobs = long_map_jobs(ids, 4, 4, 2, 6.0);
    sim::OnlineConfig config;
    config.arrival_rate = 5.0;  // all four jobs arrive within the map phase
    config.sim.bandwidth_scale = 0.05;
    config.sim.faults.fail_server(world_->topology.servers()[1], 3.0,
                                  /*repair_after=*/20.0);
    config.sim.faults.fail_switch(first_core_switch(world_->topology), 10.0,
                                  /*repair_after=*/20.0);
    const sim::OnlineSimulator sim(world_->cluster, config);
    Rng rng(24);
    return sim.run(capacity_, jobs, ids, rng);
  };

  const sim::OnlineResult a = run_online();
  ASSERT_EQ(a.jobs.size(), 4u);
  for (const auto& j : a.jobs) {
    EXPECT_GE(j.scheduled, j.arrival);
    EXPECT_GT(j.finish, j.scheduled);
  }
  EXPECT_EQ(a.recovery.servers_failed, 1u);
  EXPECT_EQ(a.recovery.switches_failed, 1u);
  // The server fault at t=3 hit running work: either its in-flight maps
  // were killed and re-placed, or a reduce host died and the job restarted.
  EXPECT_TRUE(a.recovery.maps_killed > 0 || a.recovery.jobs_restarted > 0);
  // Killed maps re-execute unless their whole job fell back to restart.
  EXPECT_LE(a.recovery.maps_reexecuted, a.recovery.maps_killed);
  if (a.recovery.jobs_restarted == 0) {
    EXPECT_EQ(a.recovery.maps_reexecuted, a.recovery.maps_killed);
  }

  const sim::OnlineResult b = run_online();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
    EXPECT_DOUBLE_EQ(a.jobs[i].shuffle_cost, b.jobs[i].shuffle_cost);
  }
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].finish, b.flows[i].finish);
    EXPECT_EQ(a.flows[i].reroutes, b.flows[i].reroutes);
  }
}

TEST_F(RuntimeFaults, ControllerStaysAuditableThroughFailRecoverCycle) {
  // Drive the controller with a realistic flow population, then cycle a
  // core switch through fail -> rebalance -> recover, auditing at each step.
  core::ControllerConfig config;
  config.hot_threshold = 0.9;
  core::NetworkController controller(world_->topology, config);

  const auto& servers = world_->topology.servers();
  unsigned next_id = 1;
  for (std::size_t s = 0; s + 4 < servers.size(); ++s) {
    net::Flow f;
    f.id = FlowId(next_id++);
    f.size_gb = 2.0;
    f.rate = 2.0;
    const net::Policy p =
        net::shortest_policy(world_->topology, servers[s], servers[s + 4], f.id);
    controller.install(f, p, servers[s], servers[s + 4]);
  }
  ASSERT_GT(controller.installed_count(), 0u);
  EXPECT_NO_THROW(controller.audit());

  const NodeId core = first_core_switch(world_->topology);
  controller.fail(core);
  EXPECT_TRUE(controller.failed(core));
  EXPECT_NO_THROW(controller.audit());  // asserts nothing crosses `core`

  controller.rebalance();
  EXPECT_NO_THROW(controller.audit());

  controller.recover(core);
  EXPECT_FALSE(controller.failed(core));
  EXPECT_EQ(controller.parked_count(), 0u);
  EXPECT_NO_THROW(controller.audit());
}

}  // namespace
}  // namespace hit
