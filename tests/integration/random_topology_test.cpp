// Fuzz-lite sweep: random multi-tier topologies (random depth, fanout,
// redundancy, host counts) x random workloads.  Invariants that must hold on
// every instance:
//   * Hit produces a TAA-feasible assignment (all six Eq. 3 constraints),
//   * every routed policy is satisfied and loop-free,
//   * Hit's static shuffle cost never exceeds Capacity's by more than noise.
#include <gtest/gtest.h>

#include <set>

#include "core/hit_scheduler.h"
#include "core/taa.h"
#include "sched/capacity_scheduler.h"
#include "test_helpers.h"
#include "topology/builders.h"

namespace hit {
namespace {

class RandomTopologySweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomTopologySweep, InvariantsHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);

  topo::TreeConfig config;
  config.depth = 2 + rng.uniform_index(2);        // 2..3
  config.fanout = 2 + rng.uniform_index(3);       // 2..4
  config.redundancy = 1 + rng.uniform_index(3);   // 1..3
  config.hosts_per_access = 1 + rng.uniform_index(3);
  const auto world = std::make_unique<test::World>(topo::make_tree(config),
                                                   cluster::Resource{2.0, 8.0});

  // Random workload that always fits: total tasks <= half the slots.
  const std::size_t slots = world->cluster.size() * 2;
  const std::size_t jobs = 1 + rng.uniform_index(2);
  const std::size_t budget = std::max<std::size_t>(slots / (2 * jobs), 2);
  const std::size_t maps = 1 + rng.uniform_index(budget);
  const std::size_t reduces = std::max<std::size_t>(1, budget - maps);
  test::ProblemFixture fixture(*world, jobs, maps, reduces,
                               rng.uniform(2.0, 12.0));

  core::HitScheduler hit;
  sched::CapacityScheduler capacity;
  Rng sched_rng(1);
  const sched::Assignment a = hit.schedule(fixture.problem, sched_rng);

  // TAA feasibility.
  const auto violations = core::taa_violations(fixture.problem, a);
  EXPECT_TRUE(violations.empty())
      << "depth=" << config.depth << " fanout=" << config.fanout
      << " redundancy=" << config.redundancy << ": " << violations.front();

  // Policies loop-free.
  for (const auto& [flow, policy] : a.policies) {
    std::set<NodeId> seen(policy.list.begin(), policy.list.end());
    EXPECT_EQ(seen.size(), policy.list.size());
  }

  // Cost sanity vs the topology-unaware baseline.
  core::CostConfig pure;
  pure.congestion_weight = 0.0;
  Rng cap_rng(2);
  const double hit_cost = core::taa_objective(fixture.problem, a, pure);
  const double cap_cost = core::taa_objective(
      fixture.problem, capacity.schedule(fixture.problem, cap_rng), pure);
  EXPECT_LE(hit_cost, cap_cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologySweep, ::testing::Range(0, 30));

}  // namespace
}  // namespace hit
