// Heterogeneous clusters: mixed server capacities (big-memory nodes, small
// edge nodes).  Every scheduler must respect per-server limits, and Hit's
// matching must exploit the larger servers for co-location.
#include <gtest/gtest.h>

#include <map>

#include "core/hit_scheduler.h"
#include "core/taa.h"
#include "sched/capacity_scheduler.h"
#include "sched/fair_scheduler.h"
#include "test_helpers.h"
#include "topology/builders.h"

namespace hit {
namespace {

/// 8-host tree where two hosts are 4-slot "fat" servers and two are 1-slot.
struct HeterogeneousWorld {
  topo::Topology topology;
  cluster::Cluster cluster;

  static std::vector<cluster::Resource> capacities() {
    std::vector<cluster::Resource> caps(8, cluster::Resource{2.0, 8.0});
    caps[0] = cluster::Resource{4.0, 16.0};  // fat
    caps[1] = cluster::Resource{4.0, 16.0};  // fat
    caps[6] = cluster::Resource{1.0, 4.0};   // thin
    caps[7] = cluster::Resource{1.0, 4.0};   // thin
    return caps;
  }

  HeterogeneousWorld()
      : topology(topo::make_tree(topo::TreeConfig{3, 2, 2, 2})),
        cluster(topology, capacities()) {}
};

TEST(Heterogeneous, CapacitiesRespectedByAllSchedulers) {
  HeterogeneousWorld world;
  // Total slots: 4 + 4 + 4x2 + 1 + 1 = 18; the fixture needs exactly 18.
  auto base = test::small_tree_world();
  test::ProblemFixture fixture(*base, 3, 4, 2, 6.0);
  sched::Problem problem = fixture.problem;
  problem.topology = &world.topology;
  problem.cluster = &world.cluster;

  sched::CapacityScheduler capacity;
  sched::FairScheduler fair;
  core::HitScheduler hit;
  for (sched::Scheduler* s : {static_cast<sched::Scheduler*>(&capacity),
                              static_cast<sched::Scheduler*>(&fair),
                              static_cast<sched::Scheduler*>(&hit)}) {
    Rng rng(1);
    const sched::Assignment a = s->schedule(problem, rng);
    EXPECT_NO_THROW(sched::validate_assignment(problem, a)) << s->name();
    // Thin servers carry at most one container.
    std::map<ServerId, int> count;
    for (const auto& [task, server] : a.placement) ++count[server];
    EXPECT_LE(count[ServerId(6)], 1) << s->name();
    EXPECT_LE(count[ServerId(7)], 1) << s->name();
    EXPECT_LE(count[ServerId(0)], 4) << s->name();
  }
}

TEST(Heterogeneous, HitPacksHeavyJobOntoFatServers) {
  HeterogeneousWorld world;
  // One shuffle-heavy job with 4 tasks: a fat server pair under one access
  // switch can hold everything near itself.
  sched::Problem problem;
  problem.topology = &world.topology;
  problem.cluster = &world.cluster;
  for (unsigned i = 0; i < 2; ++i) {
    problem.tasks.push_back(sched::TaskRef{TaskId(i), JobId(0),
                                           cluster::TaskKind::Map,
                                           cluster::kDefaultContainerDemand, 2.0});
  }
  for (unsigned i = 2; i < 4; ++i) {
    problem.tasks.push_back(sched::TaskRef{TaskId(i), JobId(0),
                                           cluster::TaskKind::Reduce,
                                           cluster::kDefaultContainerDemand, 2.0});
  }
  unsigned fid = 0;
  for (unsigned m = 0; m < 2; ++m) {
    for (unsigned r = 2; r < 4; ++r) {
      problem.flows.push_back(
          net::Flow{FlowId(fid++), JobId(0), TaskId(m), TaskId(r), 5.0, 5.0});
    }
  }

  core::HitScheduler hit;
  Rng rng(2);
  const sched::Assignment a = hit.schedule(problem, rng);
  core::CostConfig pure;
  pure.congestion_weight = 0.0;
  // All four tasks fit on the two fat servers (same access switch): total
  // cost <= 4 flows x 5 GB x 1 hop = 20, and co-location usually beats that.
  EXPECT_LE(core::taa_objective(problem, a, pure), 20.0 + 1e-9);
}

TEST(Heterogeneous, ZeroAndFullServersCoexist) {
  HeterogeneousWorld world;
  sched::Problem problem;
  problem.topology = &world.topology;
  problem.cluster = &world.cluster;
  problem.base_usage.assign(8, cluster::Resource{});
  problem.base_usage[0] = cluster::Resource{4.0, 16.0};  // fat server full
  for (unsigned i = 0; i < 6; ++i) {
    problem.tasks.push_back(sched::TaskRef{TaskId(i), JobId(0),
                                           cluster::TaskKind::Map,
                                           cluster::kDefaultContainerDemand, 1.0});
  }
  core::HitScheduler hit;
  Rng rng(3);
  const sched::Assignment a = hit.schedule(problem, rng);
  for (const auto& [task, server] : a.placement) {
    EXPECT_NE(server, ServerId(0));
  }
}

}  // namespace
}  // namespace hit
