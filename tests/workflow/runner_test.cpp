#include "workflow/runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/hit_scheduler.h"
#include "sim/faults.h"
#include "test_helpers.h"

namespace hit::workflow {
namespace {

class WorkflowRunnerTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();
  mr::WorkloadGenerator gen_{mr::WorkloadConfig{}};
};

// Small stages (2 GB) so concurrently-ready stage jobs (and their hedged
// duplicates) fit the 16-slot world together.
GenConfig small_stages() {
  GenConfig cfg;
  cfg.input_gb = 2.0;
  return cfg;
}

BatchWorkflowResult run_batch(const test::World& world,
                              const mr::WorkloadGenerator& gen,
                              const std::vector<Workflow>& wfs,
                              const SchedConfig& cfg, std::uint64_t seed,
                              const sim::SimConfig& sconfig = {}) {
  core::HitScheduler scheduler;
  mr::IdAllocator ids;
  Rng rng(seed);
  return run_workflows_batch(world.cluster, sconfig, cfg, wfs, gen, ids,
                             scheduler, rng);
}

// Satellite regression: a 3-stage chain must produce one coflow per stage
// shuffle — (job, wave)-keyed grouping keeps successive stages' flows from
// collapsing into a single coflow record.
TEST_F(WorkflowRunnerTest, ThreeStageChainYieldsPerStageCoflows) {
  const BatchWorkflowResult r =
      run_batch(*world_, gen_, {make_chain(3)}, SchedConfig{}, 11);
  EXPECT_EQ(r.stats.stages_completed, 3u);
  ASSERT_FALSE(r.sim.coflows.empty());
  std::set<std::pair<std::uint64_t, std::uint32_t>> keys;
  for (const sim::CoflowTiming& c : r.sim.coflows) {
    EXPECT_TRUE(keys.emplace(c.job.value(), c.wave).second)
        << "duplicate coflow for job " << c.job.value() << " wave " << c.wave;
  }
  // Each stage job shuffles once, so the coflow count matches the stage
  // count and every stage job id appears exactly once.
  EXPECT_EQ(r.sim.coflows.size(), 3u);
  std::size_t grouped = 0;
  for (const sim::CoflowTiming& c : r.sim.coflows) grouped += c.width;
  EXPECT_EQ(grouped, r.sim.flows.size());
}

TEST_F(WorkflowRunnerTest, BatchRunsAreDeterministic) {
  const std::vector<Workflow> wfs = {make_tree(2, 2, small_stages()),
                                     make_chain(3, small_stages())};
  SchedConfig cfg;
  cfg.hedge_budget = 1;
  cfg.escalation_budget = 1;
  const BatchWorkflowResult a = run_batch(*world_, gen_, wfs, cfg, 5);
  const BatchWorkflowResult b = run_batch(*world_, gen_, wfs, cfg, 5);
  EXPECT_DOUBLE_EQ(a.sim.makespan, b.sim.makespan);
  EXPECT_DOUBLE_EQ(a.stats.makespan, b.stats.makespan);
  EXPECT_EQ(a.stats.hedges_won, b.stats.hedges_won);
  EXPECT_EQ(a.stats.hedges_lost, b.stats.hedges_lost);
  ASSERT_EQ(a.sim.flows.size(), b.sim.flows.size());
  for (std::size_t i = 0; i < a.sim.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.sim.flows[i].finish, b.sim.flows[i].finish);
  }
}

TEST_F(WorkflowRunnerTest, HedgeBudgetBoundsDuplicates) {
  SchedConfig cfg;
  cfg.hedge_budget = 1;
  const BatchWorkflowResult r = run_batch(
      *world_, gen_, {make_chain(4, small_stages()), make_chain(4, small_stages())},
      cfg, 3);
  EXPECT_EQ(r.stats.hedges_launched, 2u);  // one per workflow
  EXPECT_EQ(r.stats.hedges_won + r.stats.hedges_lost,
            r.stats.hedges_launched);
  EXPECT_EQ(r.stats.stages_completed, 8u);  // duplicates don't double-count
}

TEST_F(WorkflowRunnerTest, EscalationBudgetBumpsSpineStages) {
  SchedConfig cfg;
  cfg.escalation_budget = 2;
  const BatchWorkflowResult r =
      run_batch(*world_, gen_, {make_chain(4)}, cfg, 3);
  // chain stages all sit on the spine, but only two may clear the 0.5
  // threshold; the budget is the binding constraint for the first ones.
  EXPECT_GE(r.stats.escalations, 1u);
  EXPECT_LE(r.stats.escalations, 2u);
}

TEST(SlicePlan, FoldsActiveOutagesToTimeZero) {
  std::vector<sim::FaultEvent> events;
  sim::FaultEvent fail{};
  fail.kind = sim::FaultKind::Fail;
  fail.target = sim::FaultTarget::Server;
  fail.node = NodeId(3);
  fail.time = 10.0;
  events.push_back(fail);
  sim::FaultEvent recover = fail;
  recover.kind = sim::FaultKind::Recover;
  recover.time = 200.0;
  events.push_back(recover);
  sim::FaultEvent later{};
  later.kind = sim::FaultKind::Fail;
  later.target = sim::FaultTarget::Server;
  later.node = NodeId(4);
  later.time = 150.0;
  events.push_back(later);
  const sim::FaultPlan plan = sim::FaultPlan::scripted(std::move(events));

  const sim::FaultPlan sliced = slice_plan(plan, 100.0);
  // Node 3 is mid-outage at t0=100: folded to a time-0 Fail, recovery at 100.
  bool folded_fail = false;
  for (const sim::FaultEvent& e : sliced.events()) {
    if (e.kind == sim::FaultKind::Fail && e.node == NodeId(3)) {
      folded_fail = true;
      EXPECT_DOUBLE_EQ(e.time, 0.0);
    }
    if (e.kind == sim::FaultKind::Recover && e.node == NodeId(3)) {
      EXPECT_DOUBLE_EQ(e.time, 100.0);
    }
    if (e.node == NodeId(4)) EXPECT_DOUBLE_EQ(e.time, 50.0);
  }
  EXPECT_TRUE(folded_fail);
  // t0 <= 0 returns the plan untouched.
  EXPECT_EQ(slice_plan(plan, 0.0).events().size(), plan.events().size());
}

TEST_F(WorkflowRunnerTest, OnlinePlanEncodesDagAndBudgets) {
  const std::vector<Workflow> wfs = {make_diamond(3), make_chain(3)};
  SchedConfig cfg;
  cfg.hedge_budget = 1;
  cfg.escalation_budget = 1;
  mr::IdAllocator ids;
  const OnlinePlanBuild pb = build_online_plan(wfs, cfg, gen_, ids);
  ASSERT_EQ(pb.plan.groups, 2u);
  ASSERT_EQ(pb.plan.stages.size(), 8u);  // 5 diamond + 3 chain
  ASSERT_EQ(pb.plan.job_tags.size(), pb.jobs.size());
  EXPECT_EQ(pb.hedges, 2u);       // one per workflow
  EXPECT_EQ(pb.escalations, 2u);  // one per workflow
  EXPECT_EQ(pb.jobs.size(), 8u + pb.hedges);

  // Stage attempt lists point back at correctly tagged jobs, and parent /
  // child indices are mutually consistent.
  for (std::size_t s = 0; s < pb.plan.stages.size(); ++s) {
    const sim::WorkflowPlan::StageInfo& info = pb.plan.stages[s];
    ASSERT_FALSE(info.attempts.empty());
    for (std::size_t a = 0; a < info.attempts.size(); ++a) {
      const sim::WorkflowPlan::JobTag& tag = pb.plan.job_tags[info.attempts[a]];
      EXPECT_EQ(tag.stage, s);
      EXPECT_EQ(tag.attempt, a);
      EXPECT_EQ(tag.group, info.group);
      EXPECT_EQ(pb.jobs[info.attempts[a]].stage, info.index);
    }
    for (std::size_t p : info.parents) {
      const auto& kids = pb.plan.stages[p].children;
      EXPECT_NE(std::find(kids.begin(), kids.end(), s), kids.end());
    }
  }
  // Escalated attempts carry Priority::High and sit on the spine.
  std::size_t high = 0;
  for (const mr::Job& j : pb.jobs) {
    if (j.priority == mr::Priority::High) ++high;
  }
  EXPECT_GE(high, pb.escalations);
}

TEST_F(WorkflowRunnerTest, StretchNormalizesMakespanByCriticalPath) {
  const BatchWorkflowResult r =
      run_batch(*world_, gen_, {make_chain(3)}, SchedConfig{}, 2);
  EXPECT_GT(r.stats.cp_lower_bound, 0.0);
  EXPECT_DOUBLE_EQ(r.stats.stretch,
                   r.stats.makespan / r.stats.cp_lower_bound);
}

}  // namespace
}  // namespace hit::workflow
