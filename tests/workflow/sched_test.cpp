#include "workflow/sched.h"

#include <gtest/gtest.h>

namespace hit::workflow {
namespace {

ReadyStage stage(std::size_t wf, std::uint32_t s, double rem_cp,
                 double cp_total, double elapsed = 0.0,
                 double ready_since = 0.0) {
  ReadyStage rs;
  rs.workflow = wf;
  rs.stage = s;
  rs.rem_cp = rem_cp;
  rs.cp_total = cp_total;
  rs.elapsed = elapsed;
  rs.ready_since = ready_since;
  return rs;
}

TEST(StageScore, AlphaRewardsCriticality) {
  const CpWeights w{1.0, 0.0, 0.0};
  EXPECT_GT(stage_score(stage(0, 0, 100.0, 100.0), w, 0.0),
            stage_score(stage(0, 1, 10.0, 100.0), w, 0.0));
}

TEST(StageScore, BetaOnlyKicksInPastTheIdealPath) {
  const CpWeights w{0.0, 1.0, 0.0};
  // On schedule: elapsed + rem_cp == cp_total -> zero slack.
  EXPECT_DOUBLE_EQ(stage_score(stage(0, 0, 60.0, 100.0, 40.0), w, 0.0), 0.0);
  // 25s behind the ideal critical path -> slack 25.
  EXPECT_DOUBLE_EQ(stage_score(stage(0, 0, 60.0, 100.0, 65.0), w, 0.0), 25.0);
}

TEST(StageScore, GammaAgesWaitingStages) {
  const CpWeights w{0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(
      stage_score(stage(0, 0, 1.0, 1.0, 0.0, /*ready_since=*/10.0), w, 30.0),
      20.0);
}

TEST(RankStages, OrdersByScoreThenIndices) {
  const std::vector<ReadyStage> ready = {
      stage(1, 0, 10.0, 100.0),  // low criticality
      stage(0, 2, 90.0, 100.0),  // spine
      stage(0, 1, 90.0, 100.0),  // same score, earlier stage index
  };
  const std::vector<std::size_t> order =
      rank_stages(ready, CpWeights{1.0, 0.0, 0.0}, 0.0);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);  // (wf 0, stage 1) before (wf 0, stage 2)
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 0u);
}

TEST(RankStages, DeterministicAcrossCalls) {
  std::vector<ReadyStage> ready;
  for (std::uint32_t s = 0; s < 8; ++s) {
    ready.push_back(stage(s % 3, s, 10.0 * (s % 4), 40.0, 5.0, 1.0 * s));
  }
  const SchedConfig cfg;
  const auto a = rank_stages(ready, cfg.weights, 12.0);
  const auto b = rank_stages(ready, cfg.weights, 12.0);
  EXPECT_EQ(a, b);
}

TEST(IsCritical, ThresholdOnRemainingFraction) {
  SchedConfig cfg;
  cfg.critical_threshold = 0.5;
  EXPECT_TRUE(is_critical(stage(0, 0, 60.0, 100.0), cfg));
  EXPECT_FALSE(is_critical(stage(0, 0, 40.0, 100.0), cfg));
  EXPECT_FALSE(is_critical(stage(0, 0, 0.0, 0.0), cfg));  // degenerate DAG
}

}  // namespace
}  // namespace hit::workflow
