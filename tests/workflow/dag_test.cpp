#include "workflow/dag.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "mapreduce/profiles.h"

namespace hit::workflow {
namespace {

TEST(WorkflowValidate, AcceptsGeneratedShapes) {
  EXPECT_NO_THROW(make_chain(4).validate());
  EXPECT_NO_THROW(make_tree(2, 3).validate());
  EXPECT_NO_THROW(make_diamond(4).validate());
}

TEST(WorkflowValidate, RejectsForwardParent) {
  Workflow wf;
  wf.name = "bad";
  wf.stages.push_back({"a", "terasort", 4.0, {1}});  // parent not yet defined
  wf.stages.push_back({"b", "terasort", 4.0, {}});
  EXPECT_THROW(wf.validate(), std::invalid_argument);
}

TEST(WorkflowValidate, RejectsDuplicateNamesAndParents) {
  Workflow dup_name;
  dup_name.name = "dup";
  dup_name.stages.push_back({"a", "terasort", 4.0, {}});
  dup_name.stages.push_back({"a", "terasort", 4.0, {0}});
  EXPECT_THROW(dup_name.validate(), std::invalid_argument);

  Workflow dup_parent;
  dup_parent.name = "dup2";
  dup_parent.stages.push_back({"a", "terasort", 4.0, {}});
  dup_parent.stages.push_back({"b", "terasort", 4.0, {0, 0}});
  EXPECT_THROW(dup_parent.validate(), std::invalid_argument);
}

TEST(WorkflowValidate, RejectsEmptyAndUnknownProfile) {
  EXPECT_THROW(Workflow{}.validate(), std::invalid_argument);
  Workflow wf;
  wf.name = "bad-profile";
  wf.stages.push_back({"a", "no-such-benchmark", 4.0, {}});
  EXPECT_THROW(wf.validate(), std::invalid_argument);
}

TEST(WorkflowShape, ChainTopology) {
  const Workflow wf = make_chain(4);
  ASSERT_EQ(wf.stages.size(), 4u);
  EXPECT_EQ(wf.roots(), (std::vector<std::uint32_t>{0}));
  const auto kids = wf.children();
  for (std::size_t s = 0; s + 1 < wf.stages.size(); ++s) {
    EXPECT_EQ(kids[s], (std::vector<std::uint32_t>{
                           static_cast<std::uint32_t>(s) + 1}));
  }
  EXPECT_TRUE(kids.back().empty());
}

TEST(WorkflowShape, DiamondJoinsEveryBranch) {
  const Workflow wf = make_diamond(3);
  ASSERT_EQ(wf.stages.size(), 5u);  // source + 3 branches + sink
  EXPECT_EQ(wf.roots().size(), 1u);
  const Stage& sink = wf.stages.back();
  EXPECT_EQ(sink.parents.size(), 3u);
}

TEST(WorkflowShape, TreeAggregatesToSingleSink) {
  const Workflow wf = make_tree(2, 3);
  ASSERT_EQ(wf.stages.size(), 13u);  // 9 leaves + 3 mid + 1 sink
  EXPECT_EQ(wf.roots().size(), 9u);
  std::size_t sinks = 0;
  const auto kids = wf.children();
  for (std::size_t s = 0; s < wf.stages.size(); ++s) {
    if (kids[s].empty()) ++sinks;
  }
  EXPECT_EQ(sinks, 1u);
}

TEST(WorkflowCriticalPath, ChainSumsStageCosts) {
  const Workflow wf = make_chain(3);
  const std::vector<double> cp = remaining_critical_path(wf);
  ASSERT_EQ(cp.size(), 3u);
  // rem_cp decreases along the chain and the head carries the full length.
  EXPECT_GT(cp[0], cp[1]);
  EXPECT_GT(cp[1], cp[2]);
  EXPECT_DOUBLE_EQ(cp[0], critical_path_length(wf));
  double serial = 0.0;
  for (const Stage& s : wf.stages) serial += stage_cost(s);
  EXPECT_DOUBLE_EQ(cp[0], serial);
}

TEST(WorkflowCriticalPath, DiamondTakesHeaviestBranch) {
  Workflow wf;
  wf.name = "skew";
  wf.stages.push_back({"src", "terasort", 2.0, {}});
  wf.stages.push_back({"light", "terasort", 1.0, {0}});
  wf.stages.push_back({"heavy", "terasort", 16.0, {0}});
  wf.stages.push_back({"sink", "terasort", 2.0, {1, 2}});
  wf.validate();
  const std::vector<double> cp = remaining_critical_path(wf);
  EXPECT_GT(cp[2], cp[1]);  // heavy branch is the spine
  EXPECT_DOUBLE_EQ(
      critical_path_length(wf),
      stage_cost(wf.stages[0]) + stage_cost(wf.stages[2]) +
          stage_cost(wf.stages[3]));
}

TEST(WorkflowEdges, EdgeCarriesShuffleSelectivity) {
  const Workflow wf = make_chain(2);
  const mr::BenchmarkProfile& prof = mr::profile(wf.stages[0].benchmark);
  EXPECT_DOUBLE_EQ(wf.edge_gb(0),
                   wf.stages[0].input_gb * prof.shuffle_selectivity);
}

TEST(WorkflowSpec, ParsesNamedDag) {
  const Workflow wf = parse_spec(
      "# comment\n"
      "workflow etl\n"
      "stage extract terasort 8\n"
      "stage clean grep 4 extract\n"
      "stage join join 6 extract,clean\n");
  EXPECT_EQ(wf.name, "etl");
  ASSERT_EQ(wf.stages.size(), 3u);
  EXPECT_EQ(wf.stages[2].parents, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_NO_THROW(wf.validate());
}

TEST(WorkflowSpec, RejectsUnknownParentWithLineNumber) {
  try {
    (void)parse_spec("workflow x\nstage a terasort 8 ghost\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(WorkflowMaterialize, TagsJobsWithInstanceStageAndCp) {
  const Workflow wf = make_chain(3);
  mr::WorkloadConfig wconfig;
  const mr::WorkloadGenerator gen(wconfig);
  mr::IdAllocator ids;
  const std::vector<mr::Job> jobs = materialize(wf, 7, gen, ids);
  const std::vector<double> cp = remaining_critical_path(wf);
  ASSERT_EQ(jobs.size(), wf.stages.size());
  for (std::size_t s = 0; s < jobs.size(); ++s) {
    EXPECT_EQ(jobs[s].workflow, 7u);
    EXPECT_EQ(jobs[s].stage, static_cast<std::uint32_t>(s));
    EXPECT_DOUBLE_EQ(jobs[s].critical_path, cp[s]);
  }
}

TEST(WorkflowShape, UnknownShapeThrows) {
  EXPECT_THROW((void)make_shape("moebius"), std::invalid_argument);
}

}  // namespace
}  // namespace hit::workflow
