#include "obs/trace.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace hit::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(TraceWriter, EmptyTraceIsAnEmptyArray) {
  std::ostringstream out;
  {
    TraceWriter trace(out);
    EXPECT_EQ(trace.events_written(), 0u);
  }
  EXPECT_EQ(out.str(), "[\n\n]\n");
}

TEST(TraceWriter, CompleteEventCarriesAllFields) {
  std::ostringstream out;
  TraceWriter trace(out);
  trace.complete("map", "sim.task", 1500.0, 250.5,
                 {{"task", std::int64_t{7}}, {"server", std::string("s3")}},
                 TraceWriter::kSimPid, 1);
  trace.finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("\"name\":\"map\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"sim.task\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\":1500.000"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":250.500"), std::string::npos);
  EXPECT_NE(text.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(text.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(text.find("\"args\":{\"task\":7,\"server\":\"s3\"}"),
            std::string::npos);
  EXPECT_EQ(trace.events_written(), 1u);
}

TEST(TraceWriter, InstantEventHasThreadScope) {
  std::ostringstream out;
  TraceWriter trace(out);
  trace.instant("flow.stall", "sim.flow", 42.0);
  trace.finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"s\":\"t\""), std::string::npos);
}

TEST(TraceWriter, BeginEndPairAndCommaSeparation) {
  std::ostringstream out;
  TraceWriter trace(out);
  trace.begin("phase", "test", 0.0);
  trace.end(10.0);
  trace.finish();
  EXPECT_EQ(trace.events_written(), 2u);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"E\""), std::string::npos);
  // Events are comma-separated inside the array — exactly one separator.
  EXPECT_NE(text.find("},\n{"), std::string::npos);
}

TEST(TraceWriter, MetadataNamesLanes) {
  std::ostringstream out;
  TraceWriter trace(out);
  trace.name_process(TraceWriter::kSimPid, "simulated time");
  trace.name_thread(TraceWriter::kSimPid, 2, "flows");
  trace.finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("\"args\":{\"name\":\"simulated time\"}"),
            std::string::npos);
  EXPECT_NE(text.find("\"args\":{\"name\":\"flows\"}"), std::string::npos);
}

TEST(TraceWriter, WellFormedArrayShape) {
  std::ostringstream out;
  TraceWriter trace(out);
  for (int i = 0; i < 5; ++i) {
    trace.instant("tick", "test", static_cast<double>(i));
  }
  trace.finish();
  const std::string text = out.str();
  ASSERT_GE(text.size(), 4u);
  EXPECT_EQ(text.substr(0, 2), "[\n");
  EXPECT_EQ(text.substr(text.size() - 3), "\n]\n");
  // Balanced braces — every event object opens and closes.
  std::size_t opens = 0, closes = 0;
  for (const char c : text) {
    if (c == '{') ++opens;
    if (c == '}') ++closes;
  }
  EXPECT_EQ(opens, closes);
  // No trailing comma before the closing bracket (the classic malformed-JSON
  // failure mode of streaming writers).
  EXPECT_EQ(text.find(",\n]"), std::string::npos);
}

TEST(TraceWriter, FinishIsIdempotentAndDropsLateEvents) {
  std::ostringstream out;
  TraceWriter trace(out);
  trace.instant("a", "test", 0.0);
  trace.finish();
  const std::string closed = out.str();
  trace.finish();                       // second finish: no double bracket
  trace.instant("late", "test", 1.0);   // after finish: dropped
  EXPECT_EQ(out.str(), closed);
  EXPECT_EQ(trace.events_written(), 1u);
}

TEST(TraceWriter, JsonlMirrorIsOneObjectPerLine) {
  std::ostringstream out;
  std::ostringstream events;
  TraceWriter trace(out, &events);
  trace.instant("a", "test", 0.0, {{"flow", std::int64_t{1}}});
  trace.complete("b", "test", 0.0, 5.0);
  trace.finish();
  const std::vector<std::string> lines = lines_of(events.str());
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_NE(lines[0].find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\":\"b\""), std::string::npos);
}

TEST(TraceWriter, NonFiniteArgValuesSerializeAsNull) {
  std::ostringstream out;
  TraceWriter trace(out);
  trace.instant("nan", "test", 0.0,
                {{"bad", std::numeric_limits<double>::quiet_NaN()}});
  trace.finish();
  EXPECT_NE(out.str().find("\"bad\":null"), std::string::npos);
}

TEST(TraceWriter, EscapesQuotesInNamesAndArgs) {
  std::ostringstream out;
  TraceWriter trace(out);
  trace.instant("say \"hi\"", "test", 0.0);
  trace.finish();
  EXPECT_NE(out.str().find("say \\\"hi\\\""), std::string::npos);
}

TEST(TraceWriter, HostClockAdvances) {
  std::ostringstream out;
  const TraceWriter trace(out);
  const double a = trace.now_us();
  const double b = trace.now_us();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace hit::obs
