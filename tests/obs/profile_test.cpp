#include "obs/profile.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/context.h"

namespace hit::obs {
namespace {

TEST(Profiler, RecordAccumulatesCountTotalMax) {
  Profiler p;
  p.record("phase.a", 100);
  p.record("phase.a", 300);
  p.record("phase.b", 50);
  EXPECT_EQ(p.scope_count(), 2u);
  const auto snap = p.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  const Profiler::ScopeStats& a = snap.at("phase.a");
  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.total_ns, 400u);
  EXPECT_EQ(a.max_ns, 300u);
  EXPECT_EQ(snap.at("phase.b").count, 1u);
}

TEST(Profiler, WriteTableListsEveryScope) {
  Profiler p;
  p.record("core.match", 2'000'000);
  p.record("sim.run", 5'000'000);
  std::ostringstream out;
  p.write_table(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("core.match"), std::string::npos);
  EXPECT_NE(text.find("sim.run"), std::string::npos);
  // Total-descending: the bigger scope prints first.
  EXPECT_LT(text.find("sim.run"), text.find("core.match"));
}

TEST(ScopeTimer, ExplicitContextRecordsIntoProfiler) {
  Profiler p;
  const Context ctx(nullptr, nullptr, &p);
  {
    ScopeTimer timer(ctx, "explicit.scope");
  }
  const auto snap = p.snapshot();
  ASSERT_EQ(snap.count("explicit.scope"), 1u);
  EXPECT_EQ(snap.at("explicit.scope").count, 1u);
}

TEST(ScopeTimer, AmbientContextViaBind) {
  Profiler p;
  const Context ctx(nullptr, nullptr, &p);
  {
    const Bind bind(ctx);
    HIT_PROF_SCOPE("ambient.scope");
  }
  EXPECT_EQ(p.snapshot().at("ambient.scope").count, 1u);
}

TEST(ScopeTimer, DisabledAmbientIsNoOp) {
  // No Bind installed: the ambient context is the null object and the timer
  // must not crash or record anywhere.
  EXPECT_FALSE(current().enabled());
  {
    HIT_PROF_SCOPE("nothing.listens");
  }
  EXPECT_FALSE(current().enabled());
}

TEST(ScopeTimer, EmitsHostSpanWhenTracingToo) {
  Profiler p;
  std::ostringstream out;
  TraceWriter trace(out);
  const Context ctx(nullptr, &trace, &p);
  {
    ScopeTimer timer(ctx, "traced.scope");
  }
  trace.finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("\"name\":\"traced.scope\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"pid\":2"), std::string::npos);  // host lane
}

TEST(Bind, RestoresPreviousContextNested) {
  Profiler pa, pb;
  const Context outer(nullptr, nullptr, &pa);
  const Context inner(nullptr, nullptr, &pb);
  {
    const Bind a(outer);
    EXPECT_EQ(current().profiler(), &pa);
    {
      const Bind b(inner);
      EXPECT_EQ(current().profiler(), &pb);
    }
    EXPECT_EQ(current().profiler(), &pa);
  }
  EXPECT_FALSE(current().enabled());
}

TEST(Bind, NullPointerPassesThrough) {
  Profiler p;
  const Context ctx(nullptr, nullptr, &p);
  const Bind outer(ctx);
  {
    // Null binding (the disabled-owner wiring path) keeps the outer ambient
    // context visible instead of masking it.
    const Bind passthrough(static_cast<const Context*>(nullptr));
    EXPECT_EQ(current().profiler(), &p);
  }
  EXPECT_EQ(current().profiler(), &p);
}

}  // namespace
}  // namespace hit::obs
