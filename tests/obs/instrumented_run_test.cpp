// End-to-end check of the observability wiring: a fully instrumented
// ClusterSimulator run must land scheduler phases in the profiler, decision
// counters/histograms in the registry, and placement/flow/wave events on the
// simulated-time trace lane — and an un-instrumented run must behave
// identically (same SimResult) with nothing recorded.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/hit_scheduler.h"
#include "obs/context.h"
#include "sim/engine.h"
#include "test_helpers.h"

namespace hit::obs {
namespace {

std::vector<mr::Job> make_jobs(mr::IdAllocator& ids, std::size_t n) {
  mr::WorkloadConfig config;
  config.max_maps_per_job = 4;
  config.max_reduces_per_job = 2;
  config.block_size_gb = 2.0;
  const mr::WorkloadGenerator gen(config);
  std::vector<mr::Job> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(gen.make_job(mr::profile("terasort"), 8.0, ids));
  }
  return jobs;
}

TEST(InstrumentedRun, CollectsMetricsTraceAndProfile) {
  auto world = test::small_tree_world();
  mr::IdAllocator ids;
  const auto jobs = make_jobs(ids, 2);

  Registry registry;
  Profiler profiler;
  std::ostringstream trace_out;
  std::ostringstream events_out;
  sim::SimResult result;
  {
    TraceWriter trace(trace_out, &events_out);
    const Context ctx(&registry, &trace, &profiler);

    core::HitScheduler scheduler;
    scheduler.set_observer(&ctx);
    sim::SimConfig sconfig;
    sconfig.observer = &ctx;
    const sim::ClusterSimulator sim(world->cluster, sconfig);
    Rng rng(7);
    result = sim.run(scheduler, jobs, ids, rng);
    trace.finish();
    EXPECT_GT(trace.events_written(), 0u);
  }
  ASSERT_EQ(result.jobs.size(), 2u);

  // Metrics: wave/task counters and duration histograms were fed.
  EXPECT_EQ(registry.counter("sim.runs").value(), 1u);
  EXPECT_GE(registry.counter("sim.waves").value(), 1u);
  EXPECT_EQ(registry.counter("sim.tasks_placed").value(), result.tasks.size());
  EXPECT_EQ(registry.histogram("sim.flow_duration_s").count(),
            result.flows.size());
  EXPECT_EQ(registry.histogram("sim.job_completion_s").count(), 2u);

  // Profiler: the simulator phase plus the scheduler's deep phases (reached
  // through the ambient Bind, with no explicit plumbing below schedule()).
  const auto scopes = profiler.snapshot();
  EXPECT_EQ(scopes.count("sim.run"), 1u);
  EXPECT_EQ(scopes.count("core.hit_scheduler.schedule"), 1u);
  EXPECT_EQ(scopes.count("core.policy_optimizer.build_preferences"), 1u);

  // Trace: placement, wave and flow events on the simulated-time lane.
  const std::string trace_text = trace_out.str();
  EXPECT_NE(trace_text.find("\"name\":\"task.place\""), std::string::npos);
  EXPECT_NE(trace_text.find("\"name\":\"wave\""), std::string::npos);
  EXPECT_NE(trace_text.find("\"name\":\"flow\""), std::string::npos);
  EXPECT_NE(trace_text.find("\"cat\":\"phase\""), std::string::npos);
  // JSONL mirror carries the same events, one per line.
  std::istringstream lines(events_out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_GT(n, 0u);
}

TEST(InstrumentedRun, DisabledObserverChangesNothing) {
  auto world = test::small_tree_world();
  core::HitScheduler scheduler;

  mr::IdAllocator ids_a;
  const auto jobs_a = make_jobs(ids_a, 2);
  const sim::ClusterSimulator plain(world->cluster);
  Rng rng_a(7);
  const sim::SimResult bare = plain.run(scheduler, jobs_a, ids_a, rng_a);

  Registry registry;
  mr::IdAllocator ids_b;
  const auto jobs_b = make_jobs(ids_b, 2);
  const Context ctx(&registry, nullptr, nullptr);
  sim::SimConfig sconfig;
  sconfig.observer = &ctx;
  const sim::ClusterSimulator observed(world->cluster, sconfig);
  Rng rng_b(7);
  const sim::SimResult watched = observed.run(scheduler, jobs_b, ids_b, rng_b);

  // Observability must not perturb the simulation.
  EXPECT_DOUBLE_EQ(bare.makespan, watched.makespan);
  EXPECT_DOUBLE_EQ(bare.total_shuffle_cost, watched.total_shuffle_cost);
  EXPECT_GT(registry.counter("sim.runs").value(), 0u);
}

TEST(InstrumentedRun, MetricsOnlyContextSkipsTracing) {
  auto world = test::small_tree_world();
  mr::IdAllocator ids;
  const auto jobs = make_jobs(ids, 1);

  Registry registry;
  const Context ctx(&registry, nullptr, nullptr);
  EXPECT_TRUE(ctx.enabled());
  EXPECT_EQ(ctx.trace(), nullptr);

  core::HitScheduler scheduler;
  sim::SimConfig sconfig;
  sconfig.observer = &ctx;
  const sim::ClusterSimulator sim(world->cluster, sconfig);
  Rng rng(3);
  const sim::SimResult result = sim.run(scheduler, jobs, ids, rng);
  EXPECT_EQ(result.jobs.size(), 1u);
  EXPECT_GE(registry.counter("sim.waves").value(), 1u);
}

}  // namespace
}  // namespace hit::obs
