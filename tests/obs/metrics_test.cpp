#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace hit::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Histogram, BucketsObservations) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(5.0);    // <= 10
  h.observe(50.0);   // <= 100
  h.observe(500.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  const std::vector<std::uint64_t> cum = h.cumulative();
  ASSERT_EQ(cum.size(), 4u);  // 3 bounds + total
  EXPECT_EQ(cum[0], 1u);
  EXPECT_EQ(cum[1], 2u);
  EXPECT_EQ(cum[2], 3u);
  EXPECT_EQ(cum[3], 4u);
}

TEST(Histogram, BoundaryValueLandsInLowerBucket) {
  Histogram h({1.0, 2.0});
  h.observe(1.0);  // exactly on a bound: counts as <= bound
  EXPECT_EQ(h.cumulative()[0], 1u);
}

TEST(Histogram, EmptyMinMaxAreNan) {
  Histogram h({1.0});
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Registry, LookupOrCreateReturnsStableRefs) {
  Registry r;
  Counter& a = r.counter("x");
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(r.counter("x").value(), 3u);
  r.gauge("g").set(1.0);
  r.histogram("h").observe(0.01);
  EXPECT_EQ(r.size(), 3u);
}

TEST(Registry, TaggedFoldsTagsIntoName) {
  EXPECT_EQ(Registry::tagged("flows", {{"job", "3"}, {"kind", "map"}}),
            "flows{job=3,kind=map}");
  EXPECT_EQ(Registry::tagged("flows", {}), "flows");
}

TEST(Registry, SnapshotIsNameSorted) {
  Registry r;
  r.counter("zebra").add();
  r.counter("apple").add(2);
  r.gauge("mango").set(7.0);
  const std::vector<MetricSample> snap = r.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "apple");
  EXPECT_EQ(snap[1].name, "mango");
  EXPECT_EQ(snap[2].name, "zebra");
  EXPECT_DOUBLE_EQ(snap[0].value, 2.0);
  EXPECT_EQ(snap[0].kind, "counter");
  EXPECT_EQ(snap[1].kind, "gauge");
}

TEST(Registry, WriteJsonlRoundTripsAsJson) {
  Registry r;
  r.counter("runs").add(2);
  r.histogram("latency", std::vector<double>{1.0, 10.0}).observe(0.5);
  std::ostringstream out;
  const std::vector<std::pair<std::string, stats::Cell>> stamp = {
      {"bench", std::string("unit")}, {"seed", std::int64_t{7}}};
  r.write_jsonl(out, stamp);

  // Every line must be a flat JSON object carrying the stamp fields.
  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  bool saw_bucket = false;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"bench\":\"unit\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"seed\":7"), std::string::npos) << line;
    if (line.find("histogram_bucket") != std::string::npos) saw_bucket = true;
  }
  // 1 counter + 1 histogram aggregate + 2 bounds + overflow bucket.
  EXPECT_EQ(n, 5u);
  EXPECT_TRUE(saw_bucket);
  // The overflow bucket serializes its +inf bound as null.
  EXPECT_NE(out.str().find("\"le\":null"), std::string::npos);
}

TEST(Registry, WriteCsvHasHeaderAndRows) {
  Registry r;
  r.counter("a").add();
  r.gauge("b").set(3.0);
  std::ostringstream out;
  r.write_csv(out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("name,kind,value,count,sum,min,max"), 0u);
  EXPECT_NE(text.find("a,counter,1"), std::string::npos);
  EXPECT_NE(text.find("b,gauge,3"), std::string::npos);
}

}  // namespace
}  // namespace hit::obs
