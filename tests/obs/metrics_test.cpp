#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <sstream>

#include "stats/export.h"

namespace hit::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Histogram, BucketsObservations) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(5.0);    // <= 10
  h.observe(50.0);   // <= 100
  h.observe(500.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  const std::vector<std::uint64_t> cum = h.cumulative();
  ASSERT_EQ(cum.size(), 4u);  // 3 bounds + total
  EXPECT_EQ(cum[0], 1u);
  EXPECT_EQ(cum[1], 2u);
  EXPECT_EQ(cum[2], 3u);
  EXPECT_EQ(cum[3], 4u);
}

TEST(Histogram, BoundaryValueLandsInLowerBucket) {
  Histogram h({1.0, 2.0});
  h.observe(1.0);  // exactly on a bound: counts as <= bound
  EXPECT_EQ(h.cumulative()[0], 1u);
}

TEST(Histogram, EmptyMinMaxAreNan) {
  Histogram h({1.0});
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Registry, LookupOrCreateReturnsStableRefs) {
  Registry r;
  Counter& a = r.counter("x");
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(r.counter("x").value(), 3u);
  r.gauge("g").set(1.0);
  r.histogram("h").observe(0.01);
  EXPECT_EQ(r.size(), 3u);
}

TEST(Registry, TaggedFoldsTagsIntoName) {
  EXPECT_EQ(Registry::tagged("flows", {{"job", "3"}, {"kind", "map"}}),
            "flows{job=3,kind=map}");
  EXPECT_EQ(Registry::tagged("flows", {}), "flows");
}

TEST(Registry, SnapshotIsNameSorted) {
  Registry r;
  r.counter("zebra").add();
  r.counter("apple").add(2);
  r.gauge("mango").set(7.0);
  const std::vector<MetricSample> snap = r.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "apple");
  EXPECT_EQ(snap[1].name, "mango");
  EXPECT_EQ(snap[2].name, "zebra");
  EXPECT_DOUBLE_EQ(snap[0].value, 2.0);
  EXPECT_EQ(snap[0].kind, "counter");
  EXPECT_EQ(snap[1].kind, "gauge");
}

TEST(Registry, WriteJsonlRoundTripsAsJson) {
  Registry r;
  r.counter("runs").add(2);
  r.histogram("latency", std::vector<double>{1.0, 10.0}).observe(0.5);
  std::ostringstream out;
  const std::vector<std::pair<std::string, stats::Cell>> stamp = {
      {"bench", std::string("unit")}, {"seed", std::int64_t{7}}};
  r.write_jsonl(out, stamp);

  // Every line must be a flat JSON object carrying the stamp fields.
  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  bool saw_bucket = false;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"bench\":\"unit\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"seed\":7"), std::string::npos) << line;
    if (line.find("histogram_bucket") != std::string::npos) saw_bucket = true;
  }
  // 1 counter + 1 histogram aggregate + 2 bounds + overflow bucket.
  EXPECT_EQ(n, 5u);
  EXPECT_TRUE(saw_bucket);
  // The overflow bucket serializes its +inf bound as null.
  EXPECT_NE(out.str().find("\"le\":null"), std::string::npos);
}

TEST(Registry, WriteCsvHasHeaderAndRows) {
  Registry r;
  r.counter("a").add();
  r.gauge("b").set(3.0);
  std::ostringstream out;
  r.write_csv(out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("name,kind,value,count,sum,min,max"), 0u);
  EXPECT_NE(text.find("a,counter,1"), std::string::npos);
  EXPECT_NE(text.find("b,gauge,3"), std::string::npos);
}

TEST(Registry, CsvRoundTripsTaggedNamesThroughParseCsvRow) {
  // Tagged metric keys contain commas ("flows{tenant=0,class=high}"); the
  // CSV export must quote them so a reader splits the row back into exactly
  // seven fields with the name intact.
  Registry r;
  const std::string tagged =
      Registry::tagged("flows", {{"tenant", "0"}, {"class", "high"}});
  ASSERT_EQ(tagged, "flows{tenant=0,class=high}");
  r.counter(tagged).add(7);
  std::ostringstream out;
  r.write_csv(out);

  std::istringstream lines(out.str());
  std::string header, row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  const std::vector<std::string> fields = stats::parse_csv_row(row);
  ASSERT_EQ(fields.size(), 7u);
  EXPECT_EQ(fields[0], tagged);
  EXPECT_EQ(fields[1], "counter");
  EXPECT_EQ(fields[2], "7");
}

TEST(Histogram, QuantileInterpolatesAndClampsToObservedRange) {
  Histogram h({1.0, 10.0, 100.0});
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));  // empty
  for (double v : {2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0}) h.observe(v);
  // All mass in (1, 10]; the estimate stays inside the observed [2, 9].
  EXPECT_GE(h.quantile(0.0), 2.0);
  EXPECT_LE(h.quantile(1.0), 9.0);
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 1.0);
  EXPECT_LT(p50, 10.0);
  EXPECT_LE(h.quantile(0.25), h.quantile(0.75));
  // Deterministic: two identical histograms agree exactly.
  Histogram h2({1.0, 10.0, 100.0});
  for (double v : {2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0}) h2.observe(v);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), h2.quantile(0.95));
}

TEST(Registry, SnapshotCarriesHistogramQuantiles) {
  Registry r;
  auto& h = r.histogram("lat", std::array<double, 2>{1.0, 10.0});
  h.observe(2.0);
  h.observe(4.0);
  h.observe(8.0);
  const std::vector<MetricSample> snap = r.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kind, "histogram");
  EXPECT_DOUBLE_EQ(snap[0].p50, h.quantile(0.5));
  EXPECT_DOUBLE_EQ(snap[0].p95, h.quantile(0.95));
}

TEST(DiffSnapshots, MergeJoinsByNameWithAbsentSidesZeroed) {
  Registry before, after;
  before.counter("shared").add(3);
  before.gauge("gone").set(1.0);
  after.counter("shared").add(10);
  after.counter("new").add(2);
  const std::vector<SampleDelta> deltas =
      diff_snapshots(before.snapshot(), after.snapshot());
  ASSERT_EQ(deltas.size(), 3u);  // name-sorted: gone, new, shared
  EXPECT_EQ(deltas[0].name, "gone");
  EXPECT_TRUE(deltas[0].in_before);
  EXPECT_FALSE(deltas[0].in_after);
  EXPECT_DOUBLE_EQ(deltas[0].delta(), -1.0);
  EXPECT_EQ(deltas[1].name, "new");
  EXPECT_FALSE(deltas[1].in_before);
  EXPECT_DOUBLE_EQ(deltas[1].delta(), 2.0);
  EXPECT_EQ(deltas[2].name, "shared");
  EXPECT_DOUBLE_EQ(deltas[2].before, 3.0);
  EXPECT_DOUBLE_EQ(deltas[2].after, 10.0);
  EXPECT_DOUBLE_EQ(deltas[2].delta(), 7.0);
}

}  // namespace
}  // namespace hit::obs
