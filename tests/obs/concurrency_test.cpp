// Concurrency soundness of the metrics registry: many threads hammering the
// same instruments through one Registry must neither race (TSan/ASan/UBSan
// jobs run this) nor lose updates (exact totals checked below).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/context.h"
#include "obs/metrics.h"

namespace hit::obs {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 10'000;

TEST(RegistryConcurrency, CountersAreExactUnderContention) {
  Registry r;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        // Lookup + bump each time: exercises the registration lock path, not
        // just the atomic.
        r.counter("shared").add();
        r.counter("shared").add(2);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(r.counter("shared").value(), kThreads * kOpsPerThread * 3);
}

TEST(RegistryConcurrency, HistogramTotalsAreExact) {
  Registry r;
  const std::vector<double> bounds{1.0, 2.0, 3.0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r, &bounds, t] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        // Spread observations across all buckets, including overflow.
        r.histogram("lat", bounds).observe(static_cast<double>((t + i) % 4) + 0.5);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const Histogram& h = r.histogram("lat", bounds);
  EXPECT_EQ(h.count(), kThreads * kOpsPerThread);
  const std::vector<std::uint64_t> cum = h.cumulative();
  ASSERT_EQ(cum.size(), 4u);
  EXPECT_EQ(cum.back(), kThreads * kOpsPerThread);
  // (t + i) % 4 cycles uniformly, so each bucket holds exactly a quarter.
  EXPECT_EQ(cum[0], kThreads * kOpsPerThread / 4);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 3.5);
}

TEST(RegistryConcurrency, GaugeAddIsLossless) {
  Registry r;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) r.gauge("g").add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(r.gauge("g").value(),
                   static_cast<double>(kThreads * kOpsPerThread));
}

TEST(RegistryConcurrency, MixedRegistrationAndSnapshots) {
  // Threads register fresh instruments while others snapshot/serialize; the
  // sanitizers verify there is no data race between the two paths.
  Registry r;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads / 2; ++t) {
    threads.emplace_back([&r, t] {
      for (std::size_t i = 0; i < 200; ++i) {
        r.counter(Registry::tagged("op", {{"t", std::to_string(t)}})).add();
        r.histogram("h").observe(0.001 * static_cast<double>(i));
      }
    });
    threads.emplace_back([&r] {
      for (std::size_t i = 0; i < 50; ++i) {
        (void)r.snapshot();
        std::ostringstream sink;
        r.write_jsonl(sink);
        (void)r.size();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GE(r.size(), kThreads / 2 + 1);
}

TEST(ContextConcurrency, AmbientBindIsPerThread) {
  // Each thread binds its own context; counts must not bleed across threads.
  Registry a, b;
  const Context ctx_a(&a, nullptr, nullptr);
  const Context ctx_b(&b, nullptr, nullptr);
  std::thread ta([&ctx_a] {
    const Bind bind(ctx_a);
    for (int i = 0; i < 1000; ++i) count("hits");
  });
  std::thread tb([&ctx_b] {
    const Bind bind(ctx_b);
    for (int i = 0; i < 500; ++i) count("hits");
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.counter("hits").value(), 1000u);
  EXPECT_EQ(b.counter("hits").value(), 500u);
  EXPECT_FALSE(current().enabled());  // this thread never bound anything
}

}  // namespace
}  // namespace hit::obs
