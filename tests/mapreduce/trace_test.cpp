#include "mapreduce/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.h"

namespace hit::mr {
namespace {

TEST(Trace, LoadBasic) {
  std::istringstream in(
      "benchmark,input_gb,arrival_s\n"
      "terasort,30.5,0\n"
      "grep,16,12.25\n");
  const auto entries = load_trace(in);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].benchmark, "terasort");
  EXPECT_DOUBLE_EQ(entries[0].input_gb, 30.5);
  EXPECT_DOUBLE_EQ(entries[1].arrival_s, 12.25);
}

TEST(Trace, ArrivalColumnOptional) {
  std::istringstream in(
      "benchmark,input_gb\n"
      "wordcount,8\n");
  const auto entries = load_trace(in);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_DOUBLE_EQ(entries[0].arrival_s, 0.0);
}

TEST(Trace, CommentsAndBlankLinesSkipped) {
  std::istringstream in(
      "# produced by hitsim\n"
      "benchmark,input_gb,arrival_s\n"
      "\n"
      "join,10,0\n");
  EXPECT_EQ(load_trace(in).size(), 1u);
}

TEST(Trace, RejectsMalformedInput) {
  {
    std::istringstream in("join,10\n");  // no header
    EXPECT_THROW((void)load_trace(in), std::invalid_argument);
  }
  {
    std::istringstream in("benchmark,input_gb\nnot-a-benchmark,10\n");
    EXPECT_THROW((void)load_trace(in), std::invalid_argument);
  }
  {
    std::istringstream in("benchmark,input_gb\njoin,zero\n");
    EXPECT_THROW((void)load_trace(in), std::invalid_argument);
  }
  {
    std::istringstream in("benchmark,input_gb\njoin,-4\n");
    EXPECT_THROW((void)load_trace(in), std::invalid_argument);
  }
  {
    std::istringstream in("benchmark,input_gb,arrival_s\njoin,4,9\njoin,4,5\n");
    EXPECT_THROW((void)load_trace(in), std::invalid_argument);  // arrivals decrease
  }
  {
    std::istringstream in("benchmark,input_gb\njoin,4,5,6,7\n");
    EXPECT_THROW((void)load_trace(in), std::invalid_argument);  // too many fields
  }
}

TEST(Trace, RoundTripThroughSaveAndLoad) {
  WorkloadConfig config;
  config.num_jobs = 6;
  const WorkloadGenerator gen(config);
  IdAllocator ids;
  Rng rng(3);
  const auto jobs = gen.generate(ids, rng);
  const auto entries = trace_from_jobs(jobs);

  std::stringstream buffer;
  save_trace(buffer, entries);
  const auto reloaded = load_trace(buffer);
  ASSERT_EQ(reloaded.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(reloaded[i].benchmark, entries[i].benchmark);
    EXPECT_NEAR(reloaded[i].input_gb, entries[i].input_gb, 1e-4);
  }

  // Jobs rebuilt from the trace match the originals structurally.
  IdAllocator ids2;
  const auto rebuilt = jobs_from_trace(reloaded, gen, ids2);
  ASSERT_EQ(rebuilt.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(rebuilt[i].benchmark, jobs[i].benchmark);
    EXPECT_EQ(rebuilt[i].maps.size(), jobs[i].maps.size());
    EXPECT_EQ(rebuilt[i].reduces.size(), jobs[i].reduces.size());
    EXPECT_NEAR(rebuilt[i].shuffle_gb, jobs[i].shuffle_gb, 1e-3);
  }
}

TEST(Trace, LegacyUnlabelledTracesSaveByteIdentically) {
  // A trace with no priority/tenant labels must round-trip to the exact
  // two-or-three-column format older tools wrote — the optional columns only
  // appear when some entry actually uses them.
  TraceEntry a{"terasort", 30.5, 0.0, Priority::Normal, 0};
  TraceEntry b{"grep", 16.0, 12.25, Priority::Normal, 0};
  std::ostringstream out;
  save_trace(out, {a, b});
  EXPECT_EQ(out.str(),
            "benchmark,input_gb,arrival_s\n"
            "terasort,30.5,0\n"
            "grep,16,12.25\n");
}

TEST(Trace, PriorityAndTenantColumnsRoundTrip) {
  TraceEntry a{"terasort", 30.5, 0.0, Priority::High, 2};
  TraceEntry b{"grep", 16.0, 12.25, Priority::Normal, 0};
  TraceEntry c{"wordcount", 8.0, 20.0, Priority::Low, 1};
  std::stringstream buffer;
  save_trace(buffer, {a, b, c});
  EXPECT_NE(buffer.str().find("priority,tenant"), std::string::npos);
  const auto reloaded = load_trace(buffer);
  ASSERT_EQ(reloaded.size(), 3u);
  EXPECT_EQ(reloaded[0].priority, Priority::High);
  EXPECT_EQ(reloaded[0].tenant, 2u);
  EXPECT_EQ(reloaded[1].priority, Priority::Normal);
  EXPECT_EQ(reloaded[1].tenant, 0u);
  EXPECT_EQ(reloaded[2].priority, Priority::Low);
  EXPECT_EQ(reloaded[2].tenant, 1u);
}

TEST(Trace, BadPriorityNameThrows) {
  std::istringstream in(
      "benchmark,input_gb,arrival_s,priority,tenant\n"
      "grep,16,0,urgent,0\n");
  EXPECT_THROW((void)load_trace(in), std::invalid_argument);
}

TEST(Trace, JobsFromTraceCarriesLabels) {
  std::istringstream in(
      "benchmark,input_gb,arrival_s,priority,tenant\n"
      "terasort,30,0,high,3\n"
      "grep,16,5,low,1\n");
  const auto entries = load_trace(in);
  WorkloadConfig config;
  const WorkloadGenerator gen(config);
  IdAllocator ids;
  const auto jobs = jobs_from_trace(entries, gen, ids);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].priority, Priority::High);
  EXPECT_EQ(jobs[0].tenant, 3u);
  EXPECT_EQ(jobs[1].priority, Priority::Low);
  EXPECT_EQ(jobs[1].tenant, 1u);
  // And back out: trace_from_jobs keeps the labels.
  const auto back = trace_from_jobs(jobs);
  EXPECT_EQ(back[0].priority, Priority::High);
  EXPECT_EQ(back[1].tenant, 1u);
}

TEST(Trace, TraceFromJobsWithArrivals) {
  WorkloadConfig config;
  config.num_jobs = 2;
  const WorkloadGenerator gen(config);
  IdAllocator ids;
  Rng rng(4);
  const auto jobs = gen.generate(ids, rng);
  const auto entries = trace_from_jobs(jobs, {1.0, 2.5});
  EXPECT_DOUBLE_EQ(entries[1].arrival_s, 2.5);
  EXPECT_THROW((void)trace_from_jobs(jobs, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace hit::mr
