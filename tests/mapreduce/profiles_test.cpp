#include "mapreduce/profiles.h"

#include <gtest/gtest.h>

namespace hit::mr {
namespace {

TEST(Profiles, ElevenBenchmarks) {
  EXPECT_EQ(puma_profiles().size(), 11u);
}

TEST(Profiles, MixSumsToHundred) {
  double sum = 0.0;
  for (const auto& p : puma_profiles()) sum += p.mix_percent;
  EXPECT_DOUBLE_EQ(sum, 100.0);
}

TEST(Profiles, ClassSharesMatchTable1) {
  double heavy = 0.0, medium = 0.0, light = 0.0;
  for (const auto& p : puma_profiles()) {
    switch (p.cls) {
      case JobClass::ShuffleHeavy: heavy += p.mix_percent; break;
      case JobClass::ShuffleMedium: medium += p.mix_percent; break;
      case JobClass::ShuffleLight: light += p.mix_percent; break;
    }
  }
  EXPECT_DOUBLE_EQ(heavy, 40.0);
  EXPECT_DOUBLE_EQ(medium, 20.0);
  EXPECT_DOUBLE_EQ(light, 40.0);
}

TEST(Profiles, SelectivityOrderedByClass) {
  for (const auto& p : puma_profiles()) {
    switch (p.cls) {
      case JobClass::ShuffleHeavy:
        EXPECT_GE(p.shuffle_selectivity, 0.7) << p.name;
        break;
      case JobClass::ShuffleMedium:
        EXPECT_GE(p.shuffle_selectivity, 0.3) << p.name;
        EXPECT_LT(p.shuffle_selectivity, 0.7) << p.name;
        break;
      case JobClass::ShuffleLight:
        EXPECT_LT(p.shuffle_selectivity, 0.3) << p.name;
        break;
    }
  }
}

TEST(Profiles, AllFieldsPositive) {
  for (const auto& p : puma_profiles()) {
    EXPECT_GT(p.mix_percent, 0.0) << p.name;
    EXPECT_GT(p.shuffle_selectivity, 0.0) << p.name;
    EXPECT_GT(p.map_sec_per_gb, 0.0) << p.name;
    EXPECT_GT(p.reduce_sec_per_gb, 0.0) << p.name;
    EXPECT_GT(p.typical_input_gb, 0.0) << p.name;
  }
}

TEST(Profiles, LookupByName) {
  EXPECT_EQ(profile("terasort").shuffle_selectivity, 1.0);
  EXPECT_EQ(profile("grep").cls, JobClass::ShuffleLight);
  EXPECT_THROW((void)profile("no-such-benchmark"), std::invalid_argument);
}

TEST(Profiles, Table1Entries) {
  // The exact benchmark names and shares of Table 1.
  EXPECT_DOUBLE_EQ(profile("terasort").mix_percent, 5.0);
  EXPECT_DOUBLE_EQ(profile("index").mix_percent, 10.0);
  EXPECT_DOUBLE_EQ(profile("join").mix_percent, 10.0);
  EXPECT_DOUBLE_EQ(profile("sequence-count").mix_percent, 10.0);
  EXPECT_DOUBLE_EQ(profile("adjacency").mix_percent, 5.0);
  EXPECT_DOUBLE_EQ(profile("inverted-index").mix_percent, 10.0);
  EXPECT_DOUBLE_EQ(profile("term-vector").mix_percent, 10.0);
  EXPECT_DOUBLE_EQ(profile("grep").mix_percent, 15.0);
  EXPECT_DOUBLE_EQ(profile("wordcount").mix_percent, 10.0);
  EXPECT_DOUBLE_EQ(profile("classification").mix_percent, 5.0);
  EXPECT_DOUBLE_EQ(profile("histogram").mix_percent, 10.0);
}

}  // namespace
}  // namespace hit::mr
