#include "mapreduce/hdfs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "test_helpers.h"

namespace hit::mr {
namespace {

class HdfsTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();  // 8 servers

  std::vector<Job> jobs(std::size_t maps) {
    WorkloadConfig config;
    config.max_maps_per_job = maps;
    WorkloadGenerator gen(config);
    const Job job = gen.make_job(profile("terasort"), static_cast<double>(maps), ids_);
    return {job};
  }

  IdAllocator ids_;
};

TEST_F(HdfsTest, ThreeDistinctReplicasPerSplit) {
  Rng rng(1);
  const auto js = jobs(16);
  const BlockPlacement blocks(world_->cluster, js, rng, 3);
  for (const Task& t : js[0].maps) {
    const auto& r = blocks.replicas(t.id);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_TRUE(std::is_sorted(r.begin(), r.end()));
    EXPECT_NE(r[0], r[1]);
    EXPECT_NE(r[1], r[2]);
  }
}

TEST_F(HdfsTest, ReplicationClampedToClusterSize) {
  Rng rng(2);
  const auto js = jobs(4);
  const BlockPlacement blocks(world_->cluster, js, rng, 100);
  EXPECT_EQ(blocks.replicas(js[0].maps[0].id).size(), 8u);
}

TEST_F(HdfsTest, LocalityChecks) {
  Rng rng(3);
  const auto js = jobs(8);
  const BlockPlacement blocks(world_->cluster, js, rng, 3);
  const Task& t = js[0].maps[0];
  const auto& replicas = blocks.replicas(t.id);
  for (const cluster::Server& s : world_->cluster.servers()) {
    const bool is_replica =
        std::binary_search(replicas.begin(), replicas.end(), s.id);
    EXPECT_EQ(blocks.local(t.id, s.id), is_replica);
    EXPECT_DOUBLE_EQ(blocks.remote_map_gb(t, s.id), is_replica ? 0.0 : t.input_gb);
  }
}

TEST_F(HdfsTest, UnknownTaskThrows) {
  Rng rng(4);
  const BlockPlacement blocks(world_->cluster, jobs(2), rng, 3);
  EXPECT_THROW((void)blocks.replicas(TaskId(9999)), std::out_of_range);
}

TEST_F(HdfsTest, DeterministicPerSeed) {
  const auto js = jobs(8);
  Rng rng1(5), rng2(5);
  const BlockPlacement a(world_->cluster, js, rng1, 3);
  const BlockPlacement b(world_->cluster, js, rng2, 3);
  for (const Task& t : js[0].maps) {
    EXPECT_EQ(a.replicas(t.id), b.replicas(t.id));
  }
}

TEST_F(HdfsTest, SpreadAcrossCluster) {
  Rng rng(6);
  const auto js = jobs(32);
  const BlockPlacement blocks(world_->cluster, js, rng, 3);
  std::set<ServerId> used;
  for (const Task& t : js[0].maps) {
    for (ServerId s : blocks.replicas(t.id)) used.insert(s);
  }
  EXPECT_EQ(used.size(), 8u);  // 96 replica slots over 8 servers: all touched
}

}  // namespace
}  // namespace hit::mr
