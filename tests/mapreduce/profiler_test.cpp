#include "mapreduce/profiler.h"

#include <gtest/gtest.h>

#include "mapreduce/workload.h"
#include "util/rng.h"

namespace hit::mr {
namespace {

TEST(Profiler, EmptyHasNoEstimates) {
  ShuffleProfiler profiler;
  EXPECT_EQ(profiler.benchmarks_profiled(), 0u);
  EXPECT_EQ(profiler.estimate("terasort"), std::nullopt);
  EXPECT_DOUBLE_EQ(profiler.selectivity_or("terasort", 0.5), 0.5);
  EXPECT_THROW((void)profiler.predict_shuffle_gb("terasort", 10.0), std::out_of_range);
}

TEST(Profiler, SingleObservation) {
  ShuffleProfiler profiler;
  profiler.observe("terasort", 10.0, 10.0, 5.0);
  const auto e = profiler.estimate("terasort");
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->shuffle_selectivity, 1.0);
  EXPECT_DOUBLE_EQ(e->shuffle_rate, 2.0);  // 10 GB / 5 s
  EXPECT_EQ(e->samples, 1u);
}

TEST(Profiler, RatioEstimatorPoolsObservations) {
  ShuffleProfiler profiler;
  profiler.observe("wordcount", 10.0, 1.0);
  profiler.observe("wordcount", 30.0, 3.0);
  const auto e = profiler.estimate("wordcount");
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->shuffle_selectivity, 0.1);
  EXPECT_DOUBLE_EQ(e->shuffle_rate, 0.0);  // never timed
  EXPECT_EQ(e->samples, 2u);
}

TEST(Profiler, PredictionScalesWithInput) {
  ShuffleProfiler profiler;
  profiler.observe("join", 20.0, 19.0);
  EXPECT_DOUBLE_EQ(profiler.predict_shuffle_gb("join", 40.0), 38.0);
}

TEST(Profiler, RecoversTrueSelectivitiesFromGeneratedJobs) {
  // Feed the profiler jobs from the workload generator; the estimates must
  // converge to the profile selectivities exactly (the generator is
  // proportional by construction).
  ShuffleProfiler profiler;
  WorkloadConfig config;
  config.num_jobs = 300;
  const WorkloadGenerator gen(config);
  IdAllocator ids;
  Rng rng(1);
  for (const Job& job : gen.generate(ids, rng)) {
    profiler.observe(job.benchmark, job.input_gb, job.shuffle_gb);
  }
  for (const BenchmarkProfile& p : puma_profiles()) {
    const auto e = profiler.estimate(p.name);
    ASSERT_TRUE(e.has_value()) << p.name;
    EXPECT_NEAR(e->shuffle_selectivity, p.shuffle_selectivity, 1e-9) << p.name;
  }
  EXPECT_EQ(profiler.benchmarks_profiled(), puma_profiles().size());
  EXPECT_EQ(profiler.profiled_benchmarks().size(), puma_profiles().size());
}

TEST(Profiler, TimedAndUntimedObservationsMix) {
  ShuffleProfiler profiler;
  profiler.observe("index", 10.0, 9.0, 3.0);  // timed: 3 GB/s
  profiler.observe("index", 10.0, 9.0);       // untimed
  const auto e = profiler.estimate("index");
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->shuffle_selectivity, 0.9);
  EXPECT_DOUBLE_EQ(e->shuffle_rate, 3.0);  // only the timed bytes count
}

TEST(Profiler, ClearResets) {
  ShuffleProfiler profiler;
  profiler.observe("grep", 10.0, 0.2);
  profiler.clear();
  EXPECT_EQ(profiler.benchmarks_profiled(), 0u);
}

TEST(Profiler, RejectsBadObservations) {
  ShuffleProfiler profiler;
  EXPECT_THROW(profiler.observe("", 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(profiler.observe("x", 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(profiler.observe("x", 1.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace hit::mr
