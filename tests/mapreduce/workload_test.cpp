#include "mapreduce/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

namespace hit::mr {
namespace {

TEST(Workload, MakeJobBasics) {
  WorkloadGenerator gen;
  IdAllocator ids;
  const Job job = gen.make_job(profile("terasort"), 10.0, ids);
  EXPECT_EQ(job.benchmark, "terasort");
  EXPECT_EQ(job.cls, JobClass::ShuffleHeavy);
  EXPECT_DOUBLE_EQ(job.input_gb, 10.0);
  EXPECT_DOUBLE_EQ(job.shuffle_gb, 10.0);  // selectivity 1.0
  EXPECT_EQ(job.maps.size(), 10u);         // 1 GB blocks
  EXPECT_EQ(job.reduces.size(), 5u);       // reduce_ratio 0.5
  EXPECT_DOUBLE_EQ(job.shuffle_selectivity(), 1.0);
}

TEST(Workload, TaskFieldsConsistent) {
  WorkloadGenerator gen;
  IdAllocator ids;
  const Job job = gen.make_job(profile("wordcount"), 8.0, ids);
  double map_input = 0.0;
  for (const Task& t : job.maps) {
    EXPECT_EQ(t.job, job.id);
    EXPECT_EQ(t.kind, cluster::TaskKind::Map);
    EXPECT_GT(t.compute_seconds, 0.0);
    map_input += t.input_gb;
  }
  EXPECT_NEAR(map_input, 8.0, 1e-9);
  double reduce_input = 0.0;
  for (const Task& t : job.reduces) {
    EXPECT_EQ(t.kind, cluster::TaskKind::Reduce);
    reduce_input += t.input_gb;
  }
  EXPECT_NEAR(reduce_input, job.shuffle_gb, 1e-9);
}

TEST(Workload, TaskIdsGloballyUnique) {
  WorkloadConfig config;
  config.num_jobs = 20;
  WorkloadGenerator gen(config);
  IdAllocator ids;
  Rng rng(1);
  const auto jobs = gen.generate(ids, rng);
  std::set<TaskId> seen;
  for (const Job& j : jobs) {
    for (const Task& t : j.maps) EXPECT_TRUE(seen.insert(t.id).second);
    for (const Task& t : j.reduces) EXPECT_TRUE(seen.insert(t.id).second);
  }
}

TEST(Workload, CapsRespected) {
  WorkloadConfig config;
  config.max_maps_per_job = 4;
  config.max_reduces_per_job = 2;
  WorkloadGenerator gen(config);
  IdAllocator ids;
  const Job job = gen.make_job(profile("terasort"), 100.0, ids);
  EXPECT_EQ(job.maps.size(), 4u);
  EXPECT_EQ(job.reduces.size(), 2u);
}

TEST(Workload, AtLeastOneReduce) {
  WorkloadConfig config;
  config.reduce_ratio = 0.01;
  WorkloadGenerator gen(config);
  IdAllocator ids;
  const Job job = gen.make_job(profile("grep"), 2.0, ids);
  EXPECT_GE(job.reduces.size(), 1u);
}

TEST(Workload, OnlyClassFilter) {
  WorkloadConfig config;
  config.num_jobs = 50;
  config.only_class = JobClass::ShuffleHeavy;
  WorkloadGenerator gen(config);
  IdAllocator ids;
  Rng rng(2);
  for (const Job& j : gen.generate(ids, rng)) {
    EXPECT_EQ(j.cls, JobClass::ShuffleHeavy);
  }
}

TEST(Workload, FixedInputOverride) {
  WorkloadConfig config;
  config.num_jobs = 10;
  config.fixed_input_gb = 6.0;
  WorkloadGenerator gen(config);
  IdAllocator ids;
  Rng rng(3);
  for (const Job& j : gen.generate(ids, rng)) {
    EXPECT_DOUBLE_EQ(j.input_gb, 6.0);
  }
}

TEST(Workload, GenerateIsDeterministicPerSeed) {
  WorkloadConfig config;
  config.num_jobs = 10;
  WorkloadGenerator gen(config);
  IdAllocator ids1, ids2;
  Rng rng1(7), rng2(7);
  const auto a = gen.generate(ids1, rng1);
  const auto b = gen.generate(ids2, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].benchmark, b[i].benchmark);
    EXPECT_DOUBLE_EQ(a[i].input_gb, b[i].input_gb);
    EXPECT_EQ(a[i].maps.size(), b[i].maps.size());
  }
}

TEST(Workload, MixConvergesToTable1) {
  WorkloadConfig config;
  config.num_jobs = 4000;
  WorkloadGenerator gen(config);
  IdAllocator ids;
  Rng rng(4);
  std::map<std::string, int> counts;
  for (const Job& j : gen.generate(ids, rng)) ++counts[j.benchmark];
  for (const BenchmarkProfile& p : puma_profiles()) {
    const double realized = 100.0 * counts[std::string(p.name)] / 4000.0;
    EXPECT_NEAR(realized, p.mix_percent, 2.5) << p.name;
  }
}

TEST(Workload, ConfigValidation) {
  WorkloadConfig bad;
  bad.block_size_gb = 0.0;
  EXPECT_THROW(WorkloadGenerator{bad}, std::invalid_argument);
  bad = WorkloadConfig{};
  bad.reduce_ratio = 0.0;
  EXPECT_THROW(WorkloadGenerator{bad}, std::invalid_argument);
  bad = WorkloadConfig{};
  bad.max_maps_per_job = 0;
  EXPECT_THROW(WorkloadGenerator{bad}, std::invalid_argument);
  WorkloadGenerator gen;
  IdAllocator ids;
  EXPECT_THROW((void)gen.make_job(profile("grep"), 0.0, ids), std::invalid_argument);
}

TEST(Workload, JobClassNames) {
  EXPECT_EQ(job_class_name(JobClass::ShuffleHeavy), "shuffle-heavy");
  EXPECT_EQ(job_class_name(JobClass::ShuffleMedium), "shuffle-medium");
  EXPECT_EQ(job_class_name(JobClass::ShuffleLight), "shuffle-light");
}

}  // namespace
}  // namespace hit::mr
