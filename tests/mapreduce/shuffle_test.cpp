#include "mapreduce/shuffle.h"

#include <gtest/gtest.h>

#include <set>

#include "mapreduce/workload.h"

namespace hit::mr {
namespace {

Job make(std::size_t maps, std::size_t reduces, double shuffle_gb,
         IdAllocator& ids) {
  WorkloadConfig config;
  config.max_maps_per_job = maps;
  config.max_reduces_per_job = reduces;
  config.block_size_gb = 1.0;
  config.reduce_ratio = static_cast<double>(reduces) / static_cast<double>(maps);
  WorkloadGenerator gen(config);
  return gen.make_job(profile("terasort"), shuffle_gb, ids);  // selectivity 1
}

TEST(Shuffle, AllPairsPresent) {
  IdAllocator ids;
  const Job job = make(4, 2, 4.0, ids);
  const auto flows = build_shuffle_flows(job, ids);
  EXPECT_EQ(flows.size(), 8u);
  std::set<std::pair<TaskId, TaskId>> pairs;
  for (const auto& f : flows) {
    pairs.emplace(f.src_task, f.dst_task);
    EXPECT_EQ(f.job, job.id);
  }
  EXPECT_EQ(pairs.size(), 8u);
}

TEST(Shuffle, SizesSumToJobShuffle) {
  IdAllocator ids;
  const Job job = make(5, 3, 10.0, ids);
  const auto flows = build_shuffle_flows(job, ids);
  EXPECT_NEAR(net::total_size_gb(flows), job.shuffle_gb, 1e-9);
}

TEST(Shuffle, UniformPartitionsEqualSizes) {
  IdAllocator ids;
  const Job job = make(4, 4, 8.0, ids);
  const auto flows = build_shuffle_flows(job, ids);
  for (const auto& f : flows) {
    EXPECT_NEAR(f.size_gb, 8.0 / 16.0, 1e-9);
  }
}

TEST(Shuffle, SkewConcentratesOnFirstPartition) {
  IdAllocator ids;
  const Job job = make(2, 4, 8.0, ids);
  ShuffleConfig config;
  config.partition_skew = 1.5;
  const auto flows = build_shuffle_flows(job, ids, config);
  // Flows to reduce 0 strictly bigger than flows to reduce 3.
  double first = 0.0, last = 0.0;
  for (const auto& f : flows) {
    if (f.dst_task == job.reduces[0].id) first += f.size_gb;
    if (f.dst_task == job.reduces[3].id) last += f.size_gb;
  }
  EXPECT_GT(first, 2.0 * last);
  EXPECT_NEAR(net::total_size_gb(flows), 8.0, 1e-9);
}

TEST(Shuffle, RateFollowsWindow) {
  IdAllocator ids;
  const Job job = make(2, 2, 4.0, ids);
  ShuffleConfig config;
  config.rate_window = 2.0;
  const auto flows = build_shuffle_flows(job, ids, config);
  for (const auto& f : flows) {
    EXPECT_NEAR(f.rate, f.size_gb / 2.0, 1e-12);
  }
  ShuffleConfig bad;
  bad.rate_window = 0.0;
  EXPECT_THROW((void)build_shuffle_flows(job, ids, bad), std::invalid_argument);
}

TEST(Shuffle, EmptyForNoShuffleJob) {
  IdAllocator ids;
  Job job;
  job.id = ids.next_job();
  job.shuffle_gb = 0.0;
  EXPECT_TRUE(build_shuffle_flows(job, ids).empty());
}

TEST(Shuffle, MultiJobConcatenatesWithUniqueIds) {
  IdAllocator ids;
  const Job j1 = make(2, 2, 2.0, ids);
  const Job j2 = make(3, 2, 3.0, ids);
  const auto flows = build_shuffle_flows(std::vector<Job>{j1, j2}, ids);
  EXPECT_EQ(flows.size(), 4u + 6u);
  std::set<FlowId> seen;
  for (const auto& f : flows) EXPECT_TRUE(seen.insert(f.id).second);
}

}  // namespace
}  // namespace hit::mr
