// End-to-end coflow scheduling through the simulators: CCT is recorded for
// every run (fair sharing included), enabled runs are deterministic, and
// every ordering discipline completes the workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "coflow/coflow.h"
#include "core/hit_scheduler.h"
#include "sched/capacity_scheduler.h"
#include "sim/engine.h"
#include "sim/online.h"
#include "test_helpers.h"

namespace hit::sim {
namespace {

std::vector<mr::Job> make_jobs(mr::IdAllocator& ids, std::size_t n,
                               double input_gb) {
  mr::WorkloadConfig config;
  config.max_maps_per_job = 4;
  config.max_reduces_per_job = 2;
  config.block_size_gb = input_gb / 4.0;
  config.reduce_ratio = 0.5;
  const mr::WorkloadGenerator gen(config);
  std::vector<mr::Job> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(gen.make_job(mr::profile("terasort"), input_gb, ids));
  }
  return jobs;
}

class CoflowSimTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();
  sched::CapacityScheduler capacity_;
};

TEST_F(CoflowSimTest, CoflowsRecordedEvenWhenDisabled) {
  mr::IdAllocator ids;
  const auto jobs = make_jobs(ids, 3, 8.0);
  const ClusterSimulator sim(world_->cluster);  // default: coflow off
  Rng rng(11);
  const SimResult result = sim.run(capacity_, jobs, ids, rng);

  // One coflow per job wave, grouped post-hoc from the flow timings.
  ASSERT_EQ(result.coflows.size(), jobs.size());
  for (const CoflowTiming& c : result.coflows) {
    EXPECT_GT(c.width, 0u);
    EXPECT_GT(c.total_gb, 0.0);
    EXPECT_GE(c.duration(), 0.0);
    double release = std::numeric_limits<double>::infinity();
    double finish = 0.0;
    for (const FlowTiming& f : result.flows) {
      if (f.job != c.job) continue;
      release = std::min(release, f.release);
      finish = std::max(finish, f.finish);
    }
    EXPECT_DOUBLE_EQ(c.release, release);
    EXPECT_DOUBLE_EQ(c.finish, finish);
  }
  EXPECT_GT(result.average_coflow_cct(), 0.0);
  EXPECT_GE(result.p95_coflow_cct(), 0.0);
}

TEST_F(CoflowSimTest, GroupCoflowsIsDeterministicAndComplete) {
  std::vector<FlowTiming> flows;
  auto add = [&](unsigned id, unsigned job, double rel, double fin, double gb) {
    FlowTiming f;
    f.id = FlowId(id);
    f.job = JobId(job);
    f.release = rel;
    f.finish = fin;
    f.size_gb = gb;
    flows.push_back(f);
  };
  add(1, 20, 4.0, 9.0, 1.0);
  add(2, 10, 1.0, 3.0, 2.0);
  add(3, 20, 2.0, 7.0, 3.0);

  const auto coflows = group_coflows(flows);
  ASSERT_EQ(coflows.size(), 2u);  // ids by first appearance in flow order
  EXPECT_EQ(coflows[0].job, JobId(20));
  EXPECT_EQ(coflows[0].width, 2u);
  EXPECT_DOUBLE_EQ(coflows[0].release, 2.0);
  EXPECT_DOUBLE_EQ(coflows[0].finish, 9.0);
  EXPECT_DOUBLE_EQ(coflows[0].total_gb, 4.0);
  EXPECT_EQ(coflows[1].job, JobId(10));
  EXPECT_DOUBLE_EQ(coflows[1].duration(), 2.0);
  EXPECT_TRUE(group_coflows({}).empty());
}

TEST_F(CoflowSimTest, EveryOrderCompletesTheWorkload) {
  for (coflow::OrderPolicy order :
       {coflow::OrderPolicy::Fifo, coflow::OrderPolicy::Sebf,
        coflow::OrderPolicy::Priority}) {
    mr::IdAllocator ids;
    const auto jobs = make_jobs(ids, 3, 8.0);
    SimConfig config;
    config.coflow.enabled = true;
    config.coflow.order = order;
    const ClusterSimulator sim(world_->cluster, config);
    Rng rng(12);
    const SimResult result = sim.run(capacity_, jobs, ids, rng);

    ASSERT_EQ(result.jobs.size(), jobs.size())
        << coflow::order_policy_name(order);
    for (const JobResult& j : result.jobs) EXPECT_GT(j.completion_time, 0.0);
    EXPECT_EQ(result.coflows.size(), jobs.size());
    for (const FlowTiming& f : result.flows) EXPECT_LE(f.release, f.finish + 1e-9);
  }
}

TEST_F(CoflowSimTest, EnabledBatchRunIsDeterministic) {
  auto run_once = [&] {
    mr::IdAllocator ids;
    const auto jobs = make_jobs(ids, 3, 8.0);
    SimConfig config;
    config.coflow.enabled = true;
    config.coflow.order = coflow::OrderPolicy::Sebf;
    const ClusterSimulator sim(world_->cluster, config);
    Rng rng(13);
    return sim.run(capacity_, jobs, ids, rng);
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].id, b.flows[i].id);
    EXPECT_DOUBLE_EQ(a.flows[i].release, b.flows[i].release);
    EXPECT_DOUBLE_EQ(a.flows[i].finish, b.flows[i].finish);
  }
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.coflows[i].release, b.coflows[i].release);
    EXPECT_DOUBLE_EQ(a.coflows[i].finish, b.coflows[i].finish);
  }
}

TEST_F(CoflowSimTest, HitSchedulerRoutesCoflowOrdered) {
  // The scheduler-side integration: coflow-ordered policy optimization must
  // produce a complete, valid run (the routing order changes, the set of
  // routed flows must not).
  mr::IdAllocator ids;
  const auto jobs = make_jobs(ids, 2, 8.0);
  core::HitConfig hconfig;
  hconfig.coflow.enabled = true;
  hconfig.coflow.order = coflow::OrderPolicy::Sebf;
  core::HitScheduler hit(hconfig);
  SimConfig config;
  config.coflow = hconfig.coflow;
  const ClusterSimulator sim(world_->cluster, config);
  Rng rng(14);
  const SimResult result = sim.run(hit, jobs, ids, rng);
  ASSERT_EQ(result.jobs.size(), jobs.size());
  for (const JobResult& j : result.jobs) EXPECT_GT(j.completion_time, 0.0);
}

TEST_F(CoflowSimTest, OnlineRunExportsCctStats) {
  mr::IdAllocator ids;
  const auto jobs = make_jobs(ids, 3, 8.0);
  OnlineConfig config;
  config.arrival_rate = 0.5;
  config.sim.coflow.enabled = true;
  config.sim.coflow.order = coflow::OrderPolicy::Sebf;
  const OnlineSimulator sim(world_->cluster, config);
  Rng rng(15);
  const OnlineResult result = sim.run(capacity_, jobs, ids, rng);

  ASSERT_EQ(result.jobs.size(), jobs.size());
  ASSERT_FALSE(result.coflows.empty());
  EXPECT_GT(result.avg_coflow_cct, 0.0);
  EXPECT_GT(result.p95_coflow_cct, 0.0);
  for (const CoflowTiming& c : result.coflows) EXPECT_GE(c.duration(), 0.0);
}

TEST_F(CoflowSimTest, OnlineEnabledRunIsDeterministic) {
  auto run_once = [&] {
    mr::IdAllocator ids;
    const auto jobs = make_jobs(ids, 3, 8.0);
    OnlineConfig config;
    config.arrival_rate = 0.5;
    config.sim.coflow.enabled = true;
    config.sim.coflow.order = coflow::OrderPolicy::Fifo;
    const OnlineSimulator sim(world_->cluster, config);
    Rng rng(16);
    return sim.run(capacity_, jobs, ids, rng);
  };
  const OnlineResult a = run_once();
  const OnlineResult b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.avg_coflow_cct, b.avg_coflow_cct);
  EXPECT_DOUBLE_EQ(a.p95_coflow_cct, b.p95_coflow_cct);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].finish, b.flows[i].finish);
  }
}

}  // namespace
}  // namespace hit::sim
