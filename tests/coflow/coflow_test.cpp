// CoflowRegistry lifecycle: pending -> active -> done driven by per-flow
// release/finish events, with min/max stamping so out-of-order events (the
// batch simulator resolves local flows before the fluid loop starts) record
// the same CCT as in-order ones.
#include "coflow/coflow.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hit::coflow {
namespace {

TEST(CoflowRegistryTest, OpenAggregatesFlowSizes) {
  CoflowRegistry reg;
  const CoflowId c = reg.open(JobId(7), /*priority=*/2, /*deadline=*/30.0);
  reg.add_flow(c, FlowId(1), 4.0);
  reg.add_flow(c, FlowId(2), 1.5);
  reg.add_flow(c, FlowId(3), 2.5);

  const Coflow& cf = reg.get(c);
  EXPECT_EQ(cf.job, JobId(7));
  EXPECT_EQ(cf.priority, 2);
  EXPECT_DOUBLE_EQ(cf.deadline, 30.0);
  EXPECT_EQ(cf.width(), 3u);
  EXPECT_DOUBLE_EQ(cf.total_gb, 8.0);
  EXPECT_DOUBLE_EQ(cf.max_flow_gb, 4.0);
  EXPECT_EQ(cf.state, CoflowState::Pending);
  EXPECT_TRUE(reg.contains(FlowId(2)));
  EXPECT_EQ(reg.coflow_of(FlowId(2)), c);
  EXPECT_FALSE(reg.coflow_of(FlowId(99)).valid());
}

TEST(CoflowRegistryTest, FlowBelongsToExactlyOneCoflow) {
  CoflowRegistry reg;
  const CoflowId a = reg.open(JobId(1), 1);
  const CoflowId b = reg.open(JobId(2), 1);
  reg.add_flow(a, FlowId(1), 1.0);
  EXPECT_THROW(reg.add_flow(b, FlowId(1), 1.0), std::invalid_argument);
  EXPECT_THROW(reg.add_flow(CoflowId(42), FlowId(2), 1.0), std::invalid_argument);
}

TEST(CoflowRegistryTest, LifecycleTransitions) {
  CoflowRegistry reg;
  const CoflowId c = reg.open(JobId(1), 1);
  reg.add_flow(c, FlowId(1), 1.0);
  reg.add_flow(c, FlowId(2), 2.0);
  EXPECT_EQ(reg.get(c).state, CoflowState::Pending);
  EXPECT_TRUE(reg.active().empty());

  reg.flow_released(FlowId(1), 3.0);
  EXPECT_EQ(reg.get(c).state, CoflowState::Active);
  EXPECT_EQ(reg.active(), std::vector<CoflowId>{c});

  reg.flow_finished(FlowId(1), 5.0);
  EXPECT_EQ(reg.get(c).state, CoflowState::Active);  // one flow outstanding
  reg.flow_released(FlowId(2), 4.0);
  reg.flow_finished(FlowId(2), 9.0);
  EXPECT_EQ(reg.get(c).state, CoflowState::Done);
  // CCT = last byte landed - first flow transferable.
  EXPECT_DOUBLE_EQ(reg.get(c).completion_time(), 6.0);
  EXPECT_TRUE(reg.active().empty());
}

TEST(CoflowRegistryTest, OutOfOrderStampsRecordMinReleaseMaxFinish) {
  CoflowRegistry reg;
  const CoflowId c = reg.open(JobId(1), 1);
  reg.add_flow(c, FlowId(1), 1.0);
  reg.add_flow(c, FlowId(2), 1.0);
  // The simulator stamps local flows (released == finished) before the fluid
  // loop releases the rest: later calls may carry earlier times.
  reg.flow_released(FlowId(2), 8.0);
  reg.flow_released(FlowId(1), 2.0);
  reg.flow_finished(FlowId(1), 2.0);
  reg.flow_finished(FlowId(2), 6.0);
  EXPECT_DOUBLE_EQ(reg.get(c).released, 2.0);
  EXPECT_DOUBLE_EQ(reg.get(c).finished, 6.0);
  EXPECT_EQ(reg.get(c).state, CoflowState::Done);
}

TEST(CoflowRegistryTest, FinishPastDoneThrows) {
  CoflowRegistry reg;
  const CoflowId c = reg.open(JobId(1), 1);
  reg.add_flow(c, FlowId(1), 1.0);
  reg.flow_released(FlowId(1), 0.0);
  reg.flow_finished(FlowId(1), 1.0);
  EXPECT_THROW(reg.flow_finished(FlowId(1), 2.0), std::logic_error);
  EXPECT_THROW(reg.flow_released(FlowId(9), 0.0), std::invalid_argument);
  EXPECT_THROW((void)reg.get(CoflowId(5)), std::invalid_argument);
}

TEST(CoflowRegistryTest, ResetReturnsToPendingForRestart) {
  CoflowRegistry reg;
  const CoflowId c = reg.open(JobId(1), 1);
  reg.add_flow(c, FlowId(1), 1.0);
  reg.flow_released(FlowId(1), 1.0);
  reg.flow_finished(FlowId(1), 2.0);
  ASSERT_EQ(reg.get(c).state, CoflowState::Done);

  // Online-simulator restart: the job re-releases every flow.
  reg.reset(c);
  EXPECT_EQ(reg.get(c).state, CoflowState::Pending);
  EXPECT_EQ(reg.get(c).flows_done, 0u);
  reg.flow_released(FlowId(1), 10.0);
  reg.flow_finished(FlowId(1), 14.0);
  EXPECT_EQ(reg.get(c).state, CoflowState::Done);
  EXPECT_DOUBLE_EQ(reg.get(c).completion_time(), 4.0);
}

TEST(CoflowRegistryTest, ActiveListsInIdOrder) {
  CoflowRegistry reg;
  const CoflowId a = reg.open(JobId(1), 1);
  const CoflowId b = reg.open(JobId(2), 1);
  const CoflowId c = reg.open(JobId(3), 1);
  reg.add_flow(a, FlowId(1), 1.0);
  reg.add_flow(b, FlowId(2), 1.0);
  reg.add_flow(c, FlowId(3), 1.0);
  // Activate out of id order; `active()` is id-sorted regardless.
  reg.flow_released(FlowId(3), 1.0);
  reg.flow_released(FlowId(1), 2.0);
  reg.flow_released(FlowId(2), 3.0);
  EXPECT_EQ(reg.active(), (std::vector<CoflowId>{a, b, c}));
}

TEST(CoflowRegistryTest, StatsOverDoneCoflows) {
  CoflowRegistry reg;
  EXPECT_EQ(reg.stats().completed, 0u);
  for (unsigned i = 0; i < 3; ++i) {
    const CoflowId c = reg.open(JobId(i), 1);
    reg.add_flow(c, FlowId(i), 1.0);
    reg.flow_released(FlowId(i), 0.0);
    reg.flow_finished(FlowId(i), static_cast<double>(i + 1));  // CCTs 1, 2, 3
  }
  const CoflowId open = reg.open(JobId(9), 1);  // never releases: excluded
  reg.add_flow(open, FlowId(9), 1.0);

  const CoflowStats s = reg.stats();
  EXPECT_EQ(s.completed, 3u);
  EXPECT_DOUBLE_EQ(s.avg_cct, 2.0);
  // stats::percentile interpolates: rank 0.95*(3-1) = 1.9 between 2 and 3.
  EXPECT_DOUBLE_EQ(s.p95_cct, 2.9);
}

TEST(CoflowConfigTest, PolicyNamesRoundTrip) {
  for (OrderPolicy p :
       {OrderPolicy::Fifo, OrderPolicy::Sebf, OrderPolicy::Priority}) {
    const auto parsed = parse_order_policy(order_policy_name(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(parse_order_policy("varys").has_value());
  EXPECT_FALSE(CoflowConfig{}.enabled);  // off by default
}

}  // namespace
}  // namespace hit::coflow
