// MADD rate allocation: the head-of-line coflow's flows finish together at
// the minimum rates that drain its bottleneck, residuals spill to later
// coflows, leftovers are backfilled, and no resource is ever over-committed.
#include "coflow/rate_allocator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "topology/builders.h"

namespace hit::coflow {
namespace {

/// No link or switch along any demand's path may carry more than its
/// (scaled) capacity — the feasibility invariant of every allocation.
void expect_feasible(const topo::Topology& topo,
                     const std::vector<net::FlowDemand>& demands,
                     const std::vector<double>& rates, double scale = 1.0) {
  std::map<std::pair<NodeId, NodeId>, double> link_load;
  std::map<NodeId, double> switch_load;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const topo::Path& p = demands[i].path;
    for (std::size_t e = 0; e + 1 < p.size(); ++e) {
      link_load[std::minmax(p[e], p[e + 1])] += rates[i];
    }
    for (NodeId n : p) {
      if (topo.is_switch(n)) switch_load[n] += rates[i];
    }
  }
  for (const auto& [link, load] : link_load) {
    const auto cap = topo.graph().bandwidth(link.first, link.second);
    ASSERT_TRUE(cap.has_value());
    EXPECT_LE(load, *cap * scale + 1e-9);
  }
  for (const auto& [sw, load] : switch_load) {
    EXPECT_LE(load, topo.switch_capacity(sw) * scale + 1e-9);
  }
}

class MaddTest : public ::testing::Test {
 protected:
  // Case study tree: every link 16.0; access capacity 64, root 128.
  topo::Topology topo_ = topo::make_case_study_tree();

  net::FlowDemand demand(std::size_t src, std::size_t dst, double cap = 0.0) {
    const auto servers = topo_.servers();
    return net::FlowDemand{FlowId(next_id_++),
                           topo_.shortest_path(servers[src], servers[dst]), cap};
  }

  unsigned next_id_ = 0;
};

TEST_F(MaddTest, SingleFlowDrainsItsBottleneck) {
  const std::vector<net::FlowDemand> demands{demand(0, 3)};
  const auto rates = madd_allocate(topo_, demands, {4.0}, {{0}});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 16.0);  // its server link
  expect_feasible(topo_, demands, rates);
}

TEST_F(MaddTest, CoflowFlowsFinishTogether) {
  // Both flows leave server 0 (shared 16.0 link): Γ = (6+2)/16 = 0.5, so the
  // 6 GB flow gets 12 and the 2 GB flow 4 — both drain in exactly Γ.
  const std::vector<net::FlowDemand> demands{demand(0, 1), demand(0, 2)};
  const std::vector<double> remaining{6.0, 2.0};
  const auto rates = madd_allocate(topo_, demands, remaining, {{0, 1}});
  EXPECT_DOUBLE_EQ(rates[0], 12.0);
  EXPECT_DOUBLE_EQ(rates[1], 4.0);
  EXPECT_DOUBLE_EQ(remaining[0] / rates[0], remaining[1] / rates[1]);
  expect_feasible(topo_, demands, rates);
}

TEST_F(MaddTest, HeadOfLineCoflowStarvesContendersOnItsBottleneck) {
  // Two coflows out of the same server link: the head of line takes all 16;
  // the second sees zero residual (Γ = inf) and waits.
  const std::vector<net::FlowDemand> demands{demand(0, 1), demand(0, 2)};
  const auto rates = madd_allocate(topo_, demands, {8.0, 8.0}, {{0}, {1}});
  EXPECT_DOUBLE_EQ(rates[0], 16.0);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
  expect_feasible(topo_, demands, rates);
}

TEST_F(MaddTest, ResidualSpillsToLaterCoflows) {
  // The head coflow is rate-capped at 4: the 12 units it cannot use on the
  // shared server link serve the second coflow in the same round.
  const std::vector<net::FlowDemand> demands{demand(0, 1, /*cap=*/4.0),
                                             demand(0, 2)};
  const auto rates = madd_allocate(topo_, demands, {8.0, 6.0}, {{0}, {1}});
  EXPECT_DOUBLE_EQ(rates[0], 4.0);
  EXPECT_DOUBLE_EQ(rates[1], 12.0);
  expect_feasible(topo_, demands, rates);
}

TEST_F(MaddTest, BackfillKeepsAllocationWorkConserving) {
  // One coflow, disjoint paths: Γ is set by the 8 GB flow, which would leave
  // the 2 GB flow at 4.0 — but its own link is otherwise idle, so backfill
  // tops it up to the full 16.
  const std::vector<net::FlowDemand> demands{demand(0, 1), demand(2, 3)};
  const auto rates = madd_allocate(topo_, demands, {8.0, 2.0}, {{0, 1}});
  EXPECT_DOUBLE_EQ(rates[0], 16.0);
  EXPECT_DOUBLE_EQ(rates[1], 16.0);
  expect_feasible(topo_, demands, rates);
}

TEST_F(MaddTest, BandwidthScaleMultipliesEverything) {
  const std::vector<net::FlowDemand> demands{demand(0, 3)};
  const auto rates = madd_allocate(topo_, demands, {4.0}, {{0}}, 0.5);
  EXPECT_DOUBLE_EQ(rates[0], 8.0);
  expect_feasible(topo_, demands, rates, 0.5);
}

TEST_F(MaddTest, ZeroRemainingFlowsGetNoRate) {
  const std::vector<net::FlowDemand> demands{demand(0, 1), demand(0, 2)};
  const auto rates = madd_allocate(topo_, demands, {0.0, 4.0}, {{0, 1}});
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 16.0);
}

TEST_F(MaddTest, GroupsMustPartitionDemands) {
  const std::vector<net::FlowDemand> demands{demand(0, 1), demand(0, 2)};
  const std::vector<double> remaining{1.0, 1.0};
  // Missing, duplicated, and out-of-range indices all reject.
  EXPECT_THROW((void)madd_allocate(topo_, demands, remaining, {{0}}),
               std::invalid_argument);
  EXPECT_THROW((void)madd_allocate(topo_, demands, remaining, {{0, 0}, {1}}),
               std::invalid_argument);
  EXPECT_THROW((void)madd_allocate(topo_, demands, remaining, {{0, 1, 2}}),
               std::invalid_argument);
  EXPECT_THROW((void)madd_allocate(topo_, demands, {1.0}, {{0, 1}}),
               std::invalid_argument);
  EXPECT_TRUE(madd_allocate(topo_, {}, {}, {}).empty());
}

TEST_F(MaddTest, EffectiveBottleneckAggregatesSharedResources) {
  const std::vector<net::FlowDemand> demands{demand(0, 1), demand(0, 2)};
  const std::vector<double> remaining{6.0, 2.0};
  net::ResidualLedger ledger(topo_);
  for (const auto& d : demands) ledger.add_path(d.path);
  // Both flows cross server 0's 16.0 link: Γ = 8/16.
  EXPECT_DOUBLE_EQ(effective_bottleneck(ledger, demands, remaining, {0, 1}), 0.5);
  // Empty bytes → 0; saturated resource → +inf.
  EXPECT_DOUBLE_EQ(effective_bottleneck(ledger, demands, {0.0, 0.0}, {0, 1}), 0.0);
  ledger.charge(demands[0].path, 16.0);
  EXPECT_TRUE(std::isinf(effective_bottleneck(ledger, demands, remaining, {0})));
}

TEST_F(MaddTest, ManyCoflowsNeverOverCommitAnyResource) {
  // All-to-all shuffle over every server, split into three coflows with
  // mixed remaining sizes: the feasibility invariant must hold throughout.
  const std::size_t n = topo_.servers().size();
  std::vector<net::FlowDemand> demands;
  std::vector<double> remaining;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      demands.push_back(demand(i, j));
      remaining.push_back(0.5 + static_cast<double>((3 * i + 5 * j) % 7));
    }
  }
  std::vector<std::vector<std::size_t>> groups(3);
  for (std::size_t i = 0; i < demands.size(); ++i) groups[i % 3].push_back(i);

  const auto rates = madd_allocate(topo_, demands, remaining, groups);
  expect_feasible(topo_, demands, rates);
  // Head-of-line coflow: every member with bytes left makes progress.
  for (std::size_t i : groups[0]) {
    if (remaining[i] > 0.0) EXPECT_GT(rates[i], 0.0);
  }
  // Deterministic across calls.
  EXPECT_EQ(rates, madd_allocate(topo_, demands, remaining, groups));
}

}  // namespace
}  // namespace hit::coflow
