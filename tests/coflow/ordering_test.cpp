// Inter-coflow ordering policies: FIFO by release, SEBF by effective
// bottleneck, priority by job class — all deterministic with id tie-breaks.
#include "coflow/ordering.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "coflow/rate_allocator.h"
#include "network/bandwidth.h"
#include "topology/builders.h"

namespace hit::coflow {
namespace {

/// Registry with three single-flow coflows released at t = 2, 0, 1 and
/// priorities low, normal, high respectively.
class OrderingTest : public ::testing::Test {
 protected:
  OrderingTest() {
    a_ = reg_.open(JobId(1), /*priority=*/0);
    b_ = reg_.open(JobId(2), /*priority=*/1);
    c_ = reg_.open(JobId(3), /*priority=*/2);
    reg_.add_flow(a_, FlowId(1), 4.0);
    reg_.add_flow(b_, FlowId(2), 2.0);
    reg_.add_flow(c_, FlowId(3), 1.0);
    reg_.flow_released(FlowId(1), 2.0);
    reg_.flow_released(FlowId(2), 0.0);
    reg_.flow_released(FlowId(3), 1.0);
  }

  CoflowRegistry reg_;
  CoflowId a_, b_, c_;
  GammaFn no_gamma_;  // FIFO / priority never consult Γ
};

TEST_F(OrderingTest, FifoOrdersByFirstRelease) {
  FifoOrder fifo;
  EXPECT_EQ(fifo.policy(), OrderPolicy::Fifo);
  EXPECT_EQ(fifo.order(reg_, {a_, b_, c_}, no_gamma_),
            (std::vector<CoflowId>{b_, c_, a_}));
}

TEST_F(OrderingTest, FifoBreaksTiesById) {
  CoflowRegistry reg;
  const CoflowId x = reg.open(JobId(1), 1);
  const CoflowId y = reg.open(JobId(2), 1);
  reg.add_flow(x, FlowId(1), 1.0);
  reg.add_flow(y, FlowId(2), 1.0);
  reg.flow_released(FlowId(1), 5.0);
  reg.flow_released(FlowId(2), 5.0);
  FifoOrder fifo;
  EXPECT_EQ(fifo.order(reg, {y, x}, GammaFn{}),
            (std::vector<CoflowId>{x, y}));
}

TEST_F(OrderingTest, SebfOrdersByGammaAscending) {
  SebfOrder sebf;
  EXPECT_EQ(sebf.policy(), OrderPolicy::Sebf);
  // Hand-rolled Γ: c_ drains fastest, a_ slowest.
  const GammaFn gamma = [&](CoflowId id) {
    if (id == a_) return 9.0;
    if (id == b_) return 4.0;
    return 1.0;
  };
  EXPECT_EQ(sebf.order(reg_, {a_, b_, c_}, gamma),
            (std::vector<CoflowId>{c_, b_, a_}));
}

TEST_F(OrderingTest, SebfBreaksGammaTiesById) {
  SebfOrder sebf;
  const GammaFn equal = [](CoflowId) { return 3.0; };
  EXPECT_EQ(sebf.order(reg_, {c_, a_, b_}, equal),
            (std::vector<CoflowId>{a_, b_, c_}));
}

TEST_F(OrderingTest, SebfRequiresGammaFunction) {
  SebfOrder sebf;
  EXPECT_THROW((void)sebf.order(reg_, {a_}, no_gamma_), std::invalid_argument);
}

TEST_F(OrderingTest, PriorityOrdersHighFirstFifoWithin) {
  PriorityOrder prio;
  EXPECT_EQ(prio.policy(), OrderPolicy::Priority);
  EXPECT_EQ(prio.order(reg_, {a_, b_, c_}, no_gamma_),
            (std::vector<CoflowId>{c_, b_, a_}));

  // Same priority class: FIFO inside it.
  CoflowRegistry reg;
  const CoflowId x = reg.open(JobId(1), 1);
  const CoflowId y = reg.open(JobId(2), 1);
  reg.add_flow(x, FlowId(1), 1.0);
  reg.add_flow(y, FlowId(2), 1.0);
  reg.flow_released(FlowId(1), 7.0);
  reg.flow_released(FlowId(2), 3.0);
  EXPECT_EQ(prio.order(reg, {x, y}, GammaFn{}),
            (std::vector<CoflowId>{y, x}));
}

TEST_F(OrderingTest, FactoryProducesEachPolicy) {
  for (OrderPolicy p :
       {OrderPolicy::Fifo, OrderPolicy::Sebf, OrderPolicy::Priority}) {
    const auto scheduler = make_scheduler(p);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_EQ(scheduler->policy(), p);
  }
}

TEST_F(OrderingTest, SebfWithLedgerGammaPrefersSmallBottleneck) {
  // End-to-end SEBF against real residual capacities: two coflows out of the
  // same server link (capacity 16); the 2 GB one drains 4x faster than the
  // 8 GB one and must go head-of-line.
  const topo::Topology topo = topo::make_case_study_tree();
  const auto servers = topo.servers();

  CoflowRegistry reg;
  const CoflowId big = reg.open(JobId(1), 1);
  const CoflowId small = reg.open(JobId(2), 1);
  reg.add_flow(big, FlowId(1), 8.0);
  reg.add_flow(small, FlowId(2), 2.0);
  reg.flow_released(FlowId(1), 0.0);
  reg.flow_released(FlowId(2), 0.0);

  const std::vector<net::FlowDemand> demands{
      {FlowId(1), topo.shortest_path(servers[0], servers[1]), 0.0},
      {FlowId(2), topo.shortest_path(servers[0], servers[2]), 0.0},
  };
  const std::vector<double> remaining{8.0, 2.0};
  net::ResidualLedger ledger(topo);
  for (const net::FlowDemand& d : demands) ledger.add_path(d.path);
  const GammaFn gamma = [&](CoflowId id) {
    const std::vector<std::size_t> members{id == big ? std::size_t{0}
                                                     : std::size_t{1}};
    return effective_bottleneck(ledger, demands, remaining, members);
  };

  SebfOrder sebf;
  EXPECT_EQ(sebf.order(reg, {big, small}, gamma),
            (std::vector<CoflowId>{small, big}));
}

}  // namespace
}  // namespace hit::coflow
