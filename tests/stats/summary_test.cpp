#include "stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace hit::stats {
namespace {

TEST(RunningSummary, EmptyIsZero) {
  RunningSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningSummary, SingleValue) {
  RunningSummary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningSummary, KnownMoments) {
  RunningSummary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningSummary, MergeMatchesSequential) {
  Rng rng(1);
  RunningSummary all, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningSummary, MergeWithEmpty) {
  RunningSummary a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, Basics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Percentile, SingleSampleAndErrors) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(MeanOf, EmptyAndNonEmpty) {
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 6.0}), 3.0);
}

TEST(Cdf, AtAndQuantile) {
  const Cdf cdf({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(3.0), 0.6);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
}

TEST(Cdf, QuantileIsInverseOfAt) {
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(rng.uniform(0, 100));
  const Cdf cdf(samples);
  for (double q : {0.1, 0.3, 0.5, 0.8, 0.99}) {
    EXPECT_GE(cdf.at(cdf.quantile(q)), q - 1e-12);
  }
}

TEST(Cdf, SeriesIsMonotone) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) samples.push_back(rng.exponential(0.1));
  const Cdf cdf(samples);
  const auto series = cdf.series(20);
  ASSERT_EQ(series.size(), 20u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].first, series[i - 1].first);
    EXPECT_GT(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(Cdf, EmptyBehaviour) {
  const Cdf cdf(std::vector<double>{});
  EXPECT_EQ(cdf.at(1.0), 0.0);
  EXPECT_TRUE(cdf.series(5).empty());
  EXPECT_THROW((void)cdf.quantile(0.5), std::logic_error);
}

}  // namespace
}  // namespace hit::stats
