#include "stats/export.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace hit::stats {
namespace {

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"name", "value", "count"});
  csv.row({std::string("alpha"), 1.5, std::int64_t{3}});
  EXPECT_EQ(out.str(), "name,value,count\nalpha,1.5,3\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriter, EscapesSpecialFields) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, RowWidthEnforced) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  EXPECT_THROW(csv.row({std::string("only")}), std::invalid_argument);
  EXPECT_THROW(CsvWriter(out, {}), std::invalid_argument);
}

TEST(CsvWriter, NonFiniteDoublesBlank) {
  std::ostringstream out;
  CsvWriter csv(out, {"x"});
  csv.row({std::numeric_limits<double>::infinity()});
  EXPECT_EQ(out.str(), "x\n\n");
}

TEST(CsvWriter, AllNonFiniteFlavorsBlank) {
  // Regression: -inf and NaN must blank out like +inf, and a non-finite cell
  // must not swallow its column separators.
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b", "c"});
  csv.row({-std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::quiet_NaN(), 1.0});
  EXPECT_EQ(out.str(), "a,b,c\n,,1\n");
}

TEST(JsonLinesWriter, FlatRecords) {
  std::ostringstream out;
  JsonLinesWriter json(out);
  json.record({{"scheduler", std::string("Hit")},
               {"jct", 12.5},
               {"jobs", std::int64_t{10}}});
  EXPECT_EQ(out.str(), "{\"scheduler\":\"Hit\",\"jct\":12.5,\"jobs\":10}\n");
  EXPECT_EQ(json.records_written(), 1u);
}

TEST(JsonLinesWriter, EscapesStrings) {
  EXPECT_EQ(JsonLinesWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonLinesWriter::escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonLinesWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonLinesWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonLinesWriter, NonFiniteDoublesNull) {
  std::ostringstream out;
  JsonLinesWriter json(out);
  json.record({{"v", std::numeric_limits<double>::quiet_NaN()}});
  EXPECT_EQ(out.str(), "{\"v\":null}\n");
}

TEST(ParseCsvRow, SplitsPlainAndQuotedFields) {
  EXPECT_EQ(parse_csv_row("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(parse_csv_row("\"x,y\",2"),
            (std::vector<std::string>{"x,y", "2"}));
  EXPECT_EQ(parse_csv_row("\"he said \"\"hi\"\"\",ok"),
            (std::vector<std::string>{"he said \"hi\"", "ok"}));
  EXPECT_EQ(parse_csv_row(""), (std::vector<std::string>{""}));
  EXPECT_EQ(parse_csv_row("a,,b"),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(parse_csv_row("a,"), (std::vector<std::string>{"a", ""}));
}

TEST(ParseCsvRow, RoundTripsCsvWriterEscaping) {
  for (const std::string& field :
       {std::string("plain"), std::string("with,comma"),
        std::string("with \"quotes\""), std::string("both,\"of\",them"),
        std::string("")}) {
    const auto fields = parse_csv_row(CsvWriter::escape(field) + "," +
                                      CsvWriter::escape(field));
    ASSERT_EQ(fields.size(), 2u) << field;
    EXPECT_EQ(fields[0], field);
    EXPECT_EQ(fields[1], field);
  }
}

TEST(ParseCsvRow, UnterminatedQuoteThrows) {
  EXPECT_THROW((void)parse_csv_row("\"open,1"), std::invalid_argument);
}

TEST(JsonLinesWriter, InfinitiesAreNullNotBareTokens) {
  // Regression: printf-style "%g" would emit `inf` / `-inf`, which is not
  // JSON; both signs must serialize as null so every line stays parseable.
  std::ostringstream out;
  JsonLinesWriter json(out);
  json.record({{"hi", std::numeric_limits<double>::infinity()},
               {"lo", -std::numeric_limits<double>::infinity()},
               {"ok", 2.0}});
  EXPECT_EQ(out.str(), "{\"hi\":null,\"lo\":null,\"ok\":2}\n");
}

}  // namespace
}  // namespace hit::stats
