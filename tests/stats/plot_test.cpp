#include "stats/plot.h"

#include <gtest/gtest.h>

namespace hit::stats {
namespace {

TEST(AsciiChart, RendersSeriesMarkers) {
  AsciiChart chart(30, 8);
  chart.add_series("up", {{0.0, 0.0}, {1.0, 1.0}}, '*');
  const std::string out = chart.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("* = up"), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesCoexist) {
  AsciiChart chart(30, 8);
  chart.add_series("a", {{0.0, 0.0}, {1.0, 1.0}}, 'a');
  chart.add_series("b", {{0.0, 1.0}, {1.0, 0.0}}, 'b');
  const std::string out = chart.render();
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(AsciiChart, MonotoneCurveDescendsRows) {
  // An increasing series must place its max marker above its min marker.
  AsciiChart chart(20, 10);
  chart.add_series("cdf", {{0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}}, '#');
  const std::string out = chart.render();
  const std::size_t first = out.find('#');
  const std::size_t last = out.rfind('#');
  // Row of first occurrence (top of output) corresponds to the HIGHEST y.
  EXPECT_LT(first, last);
}

TEST(AsciiChart, AxisBoundsPrinted) {
  AsciiChart chart(20, 6);
  chart.add_series("s", {{2.0, 10.0}, {4.0, 30.0}}, 'x');
  const std::string out = chart.render();
  EXPECT_NE(out.find("30"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find("4"), std::string::npos);
}

TEST(AsciiChart, SinglePointAndDegenerateRanges) {
  AsciiChart chart(20, 6);
  chart.add_series("dot", {{1.0, 1.0}}, 'o');
  EXPECT_NE(chart.render().find('o'), std::string::npos);
}

TEST(AsciiChart, Validation) {
  EXPECT_THROW(AsciiChart(2, 2), std::invalid_argument);
  AsciiChart chart(20, 6);
  EXPECT_THROW(chart.add_series("empty", {}, 'e'), std::invalid_argument);
  EXPECT_EQ(AsciiChart(20, 6).render(), "(empty chart)\n");
}

}  // namespace
}  // namespace hit::stats
