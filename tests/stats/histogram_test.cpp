#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace hit::stats {
namespace {

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, Fractions) {
  Histogram h(0.0, 4.0, 2);
  EXPECT_EQ(h.fraction(0), 0.0);  // empty histogram
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  EXPECT_NEAR(h.fraction(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.fraction(1), 1.0 / 3.0, 1e-12);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.1);
  h.add(1.2);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hit::stats
