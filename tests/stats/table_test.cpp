#include "stats/table.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace hit::stats {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha "), std::string::npos);
  EXPECT_NE(out.find("| 22 "), std::string::npos);
  // header + separator + 2 rows
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ColumnsAlign) {
  Table t({"x", "y"});
  t.add_row({"longvalue", "1"});
  const std::string out = t.render();
  // Every line has the same length.
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, PctFormatting) {
  EXPECT_EQ(Table::pct(0.28), "28.0%");
  EXPECT_EQ(Table::pct(0.283, 0), "28%");
  EXPECT_EQ(Table::pct(-0.05), "-5.0%");
}

}  // namespace
}  // namespace hit::stats
