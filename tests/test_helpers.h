// Shared fixtures for the HitSched test suite: canned topologies, clusters
// and scheduling problems small enough to reason about by hand (and to feed
// the brute-force oracle).
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "mapreduce/job.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/workload.h"
#include "network/flow.h"
#include "sched/scheduler.h"
#include "topology/builders.h"
#include "util/rng.h"

namespace hit::test {

/// Topology + cluster that never move after construction (the cluster holds
/// a pointer into the topology).
struct World {
  topo::Topology topology;
  cluster::Cluster cluster;

  World(topo::Topology t, cluster::Resource per_server)
      : topology(std::move(t)), cluster(topology, per_server) {}
  World(const World&) = delete;
};

inline std::unique_ptr<World> tiny_tree_world(
    cluster::Resource per_server = cluster::Resource{2.0, 8.0}) {
  return std::make_unique<World>(topo::make_case_study_tree(), per_server);
}

inline std::unique_ptr<World> small_tree_world(
    cluster::Resource per_server = cluster::Resource{2.0, 8.0}) {
  topo::TreeConfig config;
  config.depth = 3;
  config.fanout = 2;
  config.redundancy = 2;
  config.hosts_per_access = 2;
  return std::make_unique<World>(topo::make_tree(config), per_server);
}

/// A hand-rolled two-job problem on the given world: each job has
/// `maps` map tasks and `reduces` reduce tasks with an all-to-all shuffle of
/// `shuffle_gb` per job.  Owns the jobs backing the Problem.
struct ProblemFixture {
  std::vector<mr::Job> jobs;
  mr::IdAllocator ids;
  sched::Problem problem;

  ProblemFixture(const World& world, std::size_t num_jobs, std::size_t maps,
                 std::size_t reduces, double shuffle_gb) {
    problem.topology = &world.topology;
    problem.cluster = &world.cluster;
    for (std::size_t j = 0; j < num_jobs; ++j) {
      mr::Job job;
      job.id = ids.next_job();
      job.benchmark = "synthetic";
      job.cls = mr::JobClass::ShuffleHeavy;
      job.input_gb = shuffle_gb;
      job.shuffle_gb = shuffle_gb;
      for (std::size_t m = 0; m < maps; ++m) {
        mr::Task t;
        t.id = ids.next_task();
        t.job = job.id;
        t.kind = cluster::TaskKind::Map;
        t.index = m;
        t.input_gb = shuffle_gb / static_cast<double>(maps);
        t.compute_seconds = 1.0;
        job.maps.push_back(t);
      }
      for (std::size_t r = 0; r < reduces; ++r) {
        mr::Task t;
        t.id = ids.next_task();
        t.job = job.id;
        t.kind = cluster::TaskKind::Reduce;
        t.index = r;
        t.input_gb = shuffle_gb / static_cast<double>(reduces);
        t.compute_seconds = 1.0;
        job.reduces.push_back(t);
      }
      jobs.push_back(std::move(job));
    }
    for (const mr::Job& job : jobs) {
      for (const mr::Task& t : job.maps) {
        problem.tasks.push_back(sched::TaskRef{
            t.id, t.job, t.kind, cluster::kDefaultContainerDemand, t.input_gb});
      }
      for (const mr::Task& t : job.reduces) {
        problem.tasks.push_back(sched::TaskRef{
            t.id, t.job, t.kind, cluster::kDefaultContainerDemand, t.input_gb});
      }
    }
    problem.flows = mr::build_shuffle_flows(jobs, ids);
  }
};

}  // namespace hit::test
