#include "campaign/spec.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace hit::campaign {
namespace {

CampaignSpec parse(const std::string& text) {
  std::istringstream in(text);
  return parse_spec(in);
}

TEST(Spec, ParsesBaseAxesTolerancesAndSlos) {
  const CampaignSpec spec = parse(
      "# comment\n"
      "name = demo\n"
      "mode = online\n"
      "jobs = 7\n"
      "bandwidth_scale = 0.1\n"
      "tenant_mix = 3:1\n"
      "matrix scheduler = hit, fair\n"
      "matrix seed = 1, 2, 3\n"
      "tolerance default = 0.1\n"
      "tolerance mean_jct_s = 0.02\n"
      "compare = mean_jct_s, makespan_s\n"
      "slo shed_rate <= 0.5\n"
      "slo jain_index >= 0.25\n");
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.base.mode, "online");
  EXPECT_EQ(spec.base.jobs, 7u);
  EXPECT_DOUBLE_EQ(spec.base.bandwidth_scale, 0.1);
  EXPECT_EQ(spec.base.tenant_mix, "3:1");

  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].first, "scheduler");
  EXPECT_EQ(spec.axes[0].second,
            (std::vector<std::string>{"hit", "fair"}));
  EXPECT_EQ(spec.axes[1].first, "seed");

  EXPECT_DOUBLE_EQ(spec.default_tolerance, 0.1);
  ASSERT_EQ(spec.tolerances.size(), 1u);
  EXPECT_EQ(spec.tolerances[0].first, "mean_jct_s");
  EXPECT_DOUBLE_EQ(spec.tolerances[0].second, 0.02);

  EXPECT_EQ(spec.compare_metrics,
            (std::vector<std::string>{"mean_jct_s", "makespan_s"}));

  ASSERT_EQ(spec.slos.size(), 2u);
  EXPECT_EQ(spec.slos[0].metric, "shed_rate");
  EXPECT_TRUE(spec.slos[0].leq);
  EXPECT_DOUBLE_EQ(spec.slos[0].bound, 0.5);
  EXPECT_EQ(spec.slos[1].metric, "jain_index");
  EXPECT_FALSE(spec.slos[1].leq);
}

TEST(Spec, MissingNameThrows) {
  EXPECT_THROW((void)parse("jobs = 3\n"), std::invalid_argument);
}

TEST(Spec, UnknownKeyThrowsWithLineNumber) {
  try {
    (void)parse("name = x\nno_such_knob = 1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos) << e.what();
  }
}

TEST(Spec, BadAxisValueRejectedAtParseTime) {
  // Matrix values are probed through CellConfig::set while parsing, so a
  // non-numeric seed fails before any simulation starts.
  EXPECT_THROW((void)parse("name = x\nmatrix seed = 1, banana\n"),
               std::invalid_argument);
}

TEST(Spec, DuplicateAxisThrows) {
  EXPECT_THROW(
      (void)parse("name = x\nmatrix seed = 1\nmatrix seed = 2\n"),
      std::invalid_argument);
}

TEST(Spec, ExpandIsLastAxisFastestOdometerOrder) {
  const CampaignSpec spec = parse(
      "name = grid\n"
      "matrix scheduler = hit, fair\n"
      "matrix seed = 1, 2, 3\n");
  const std::vector<Cell> cells = expand(spec);
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].id, "scheduler=hit/seed=1");
  EXPECT_EQ(cells[1].id, "scheduler=hit/seed=2");
  EXPECT_EQ(cells[2].id, "scheduler=hit/seed=3");
  EXPECT_EQ(cells[3].id, "scheduler=fair/seed=1");
  EXPECT_EQ(cells[5].id, "scheduler=fair/seed=3");
  EXPECT_EQ(cells[3].config.scheduler, "fair");
  EXPECT_EQ(cells[5].config.seed, 3u);
  // Axis labels ride along for the result JSON.
  ASSERT_EQ(cells[4].axes.size(), 2u);
  EXPECT_EQ(cells[4].axes[0],
            (std::pair<std::string, std::string>{"scheduler", "fair"}));
  EXPECT_EQ(cells[4].axes[1],
            (std::pair<std::string, std::string>{"seed", "2"}));
}

TEST(Spec, NoAxesYieldsSingleBaseCell) {
  const CampaignSpec spec = parse("name = solo\njobs = 2\n");
  const std::vector<Cell> cells = expand(spec);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].id, "base");
  EXPECT_EQ(cells[0].config.jobs, 2u);
}

TEST(CellConfig, SetRejectsUnknownKeyAndBadValues) {
  CellConfig config;
  EXPECT_THROW(config.set("nope", "1"), std::invalid_argument);
  EXPECT_THROW(config.set("jobs", "many"), std::invalid_argument);
  EXPECT_THROW(config.set("bandwidth_scale", "fast"), std::invalid_argument);
  config.set("scheduler", "fair");
  EXPECT_EQ(config.scheduler, "fair");
}

TEST(CellConfig, ItemsRoundTripThroughSet) {
  CellConfig config;
  config.set("mode", "online");
  config.set("seed", "9");
  config.set("gray_factor", "0.1:0.9");
  CellConfig rebuilt;
  for (const auto& [key, value] : config.items()) rebuilt.set(key, value);
  EXPECT_EQ(rebuilt.items(), config.items());
}

}  // namespace
}  // namespace hit::campaign
