#include "campaign/whatif.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "campaign/runner.h"
#include "campaign/spec.h"

namespace hit::campaign {
namespace {

CellRecord recorded_cell(const std::string& extra = "") {
  std::istringstream in(
      "name = whatif\n"
      "mode = batch\n"
      "jobs = 3\n"
      "bandwidth_scale = 0.05\n" +
      extra);
  const std::vector<Cell> cells = expand(parse_spec(in));
  return make_record("whatif", cells[0]);
}

TEST(WhatIf, BaselineReplayEqualsOriginalRun) {
  const CellRecord record = recorded_cell();
  const WhatIfReport report = run_whatif(record, {{"scheduler", "fair"}});
  // The baseline side replays the record exactly — same metrics the runner
  // would report for this cell.
  EXPECT_EQ(report.baseline_metrics, run_record(record));
  EXPECT_EQ(report.variant.config.scheduler, "fair");
  EXPECT_FALSE(report.faults_regenerated);
  EXPECT_FALSE(report.variant_metrics.empty());
}

TEST(WhatIf, ReplayIsDeterministic) {
  const CellRecord record = recorded_cell();
  const WhatIfReport a = run_whatif(record, {{"scheduler", "fair"}});
  const WhatIfReport b = run_whatif(record, {{"scheduler", "fair"}});
  EXPECT_EQ(a.baseline_metrics, b.baseline_metrics);
  EXPECT_EQ(a.variant_metrics, b.variant_metrics);
}

TEST(WhatIf, NonFaultOverrideKeepsRecordedFaultEvents) {
  const CellRecord record =
      recorded_cell("faults = 400\nfault_horizon = 2000\n");
  ASSERT_FALSE(record.faults.empty());
  const WhatIfReport report = run_whatif(record, {{"bandwidth_scale", "0.1"}});
  EXPECT_FALSE(report.faults_regenerated);
  ASSERT_EQ(report.variant.faults.size(), record.faults.size());
  EXPECT_EQ(report.variant.faults[0].time, record.faults[0].time);
}

TEST(WhatIf, FaultKnobOverrideRegeneratesThePlan) {
  const CellRecord record =
      recorded_cell("faults = 400\nfault_horizon = 2000\n");
  const WhatIfReport report = run_whatif(record, {{"faults", "800"}});
  EXPECT_TRUE(report.faults_regenerated);
  EXPECT_DOUBLE_EQ(report.variant.config.faults, 800.0);
  // A doubled MTBF draws a different (sparser) plan.
  EXPECT_NE(report.variant.faults.size(), record.faults.size());
}

TEST(WhatIf, EmptyOverridesAndRefusedKeysThrow) {
  const CellRecord record = recorded_cell();
  EXPECT_THROW((void)run_whatif(record, {}), std::invalid_argument);
  EXPECT_THROW((void)run_whatif(record, {{"topology", "vl2"}}),
               std::invalid_argument);
  EXPECT_THROW((void)run_whatif(record, {{"jobs", "5"}}),
               std::invalid_argument);
  EXPECT_THROW((void)run_whatif(record, {{"warp_drive", "on"}}),
               std::invalid_argument);
}

TEST(WhatIf, RenderListsOverridesAndPairedMetrics) {
  const CellRecord record = recorded_cell();
  const WhatIfReport report = run_whatif(record, {{"scheduler", "fair"}});
  const std::string text = render_whatif(report);
  EXPECT_NE(text.find("scheduler"), std::string::npos);
  EXPECT_NE(text.find("mean_jct_s"), std::string::npos);
  // obs.* diagnostics stay out of the table unless verbose.
  EXPECT_EQ(text.find("obs."), std::string::npos);
  const std::string verbose = render_whatif(report, /*verbose=*/true);
  EXPECT_NE(verbose.find("obs."), std::string::npos);
}

}  // namespace
}  // namespace hit::campaign
