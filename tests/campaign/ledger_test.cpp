#include "campaign/ledger.h"

#include <gtest/gtest.h>

#include <sstream>

#include "campaign/spec.h"

namespace hit::campaign {
namespace {

CellResult cell(std::string id,
                std::vector<std::pair<std::string, double>> metrics) {
  CellResult c;
  c.id = std::move(id);
  c.metrics = std::move(metrics);
  return c;
}

CampaignResult campaign(std::vector<CellResult> cells) {
  CampaignResult r;
  r.name = "test";
  r.cells = std::move(cells);
  return r;
}

TEST(Ledger, IdenticalCampaignsPass) {
  const CampaignResult a =
      campaign({cell("c1", {{"mean_jct_s", 100.0}, {"obs.sim.events", 5.0}})});
  const CompareReport report = compare_campaigns(a, a, {});
  EXPECT_TRUE(report.pass());
  // obs.* metrics are diagnostics, not regression surface, by default.
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].metric, "mean_jct_s");
}

TEST(Ledger, WithinToleranceIsPassBeyondIsFail) {
  const CampaignResult baseline = campaign({cell("c1", {{"m", 100.0}})});
  CompareOptions options;
  options.default_tolerance = 0.05;
  const CampaignResult close = campaign({cell("c1", {{"m", 104.9}})});
  EXPECT_TRUE(compare_campaigns(close, baseline, options).pass());
  const CampaignResult far = campaign({cell("c1", {{"m", 105.1}})});
  const CompareReport report = compare_campaigns(far, baseline, options);
  EXPECT_FALSE(report.pass());
  EXPECT_EQ(report.metric_violations(), 1u);
}

TEST(Ledger, PerMetricToleranceOverridesDefault) {
  const CampaignResult baseline =
      campaign({cell("c1", {{"loose", 100.0}, {"tight", 100.0}})});
  const CampaignResult fresh =
      campaign({cell("c1", {{"loose", 108.0}, {"tight", 108.0}})});
  CompareOptions options;
  options.default_tolerance = 0.01;
  options.tolerances = {{"loose", 0.10}};
  const CompareReport report = compare_campaigns(fresh, baseline, options);
  EXPECT_EQ(report.metric_violations(), 1u);
  for (const MetricRow& row : report.rows) {
    EXPECT_EQ(row.pass, row.metric == "loose") << row.metric;
  }
}

TEST(Ledger, AbsFloorForgivesNearZeroBaselines) {
  // 0 -> 1e-12 is noise, not a regression, under the absolute floor.
  const CampaignResult baseline = campaign({cell("c1", {{"m", 0.0}})});
  const CampaignResult fresh = campaign({cell("c1", {{"m", 1e-12}})});
  CompareOptions options;
  options.abs_floor = 1e-9;
  EXPECT_TRUE(compare_campaigns(fresh, baseline, options).pass());
  const CampaignResult big = campaign({cell("c1", {{"m", 1e-6}})});
  EXPECT_FALSE(compare_campaigns(big, baseline, options).pass());
}

TEST(Ledger, MissingCellOrMetricIsStructural) {
  const CampaignResult baseline =
      campaign({cell("c1", {{"m", 1.0}}), cell("c2", {{"m", 1.0}})});
  const CampaignResult fresh = campaign({cell("c1", {{"other", 1.0}})});
  const CompareReport report = compare_campaigns(fresh, baseline, {});
  EXPECT_FALSE(report.pass());
  EXPECT_FALSE(report.structural.empty());
}

TEST(Ledger, FailedFreshCellIsStructural) {
  CellResult failed = cell("c1", {});
  failed.ok = false;
  failed.error = "boom";
  const CampaignResult baseline = campaign({cell("c1", {{"m", 1.0}})});
  const CampaignResult fresh = campaign({failed});
  const CompareReport report = compare_campaigns(fresh, baseline, {});
  EXPECT_FALSE(report.pass());
  ASSERT_FALSE(report.structural.empty());
}

TEST(Ledger, SlosAssertOnFreshCells) {
  const CampaignResult r = campaign({cell("c1", {{"shed_rate", 0.6}})});
  CompareOptions options;
  options.slos = {{"shed_rate", /*leq=*/true, 0.5}};
  const CompareReport report = compare_campaigns(r, r, options);
  EXPECT_EQ(report.slo_violations(), 1u);
  EXPECT_FALSE(report.pass());
  // >= direction.
  options.slos = {{"shed_rate", /*leq=*/false, 0.5}};
  EXPECT_TRUE(compare_campaigns(r, r, options).pass());
}

TEST(Ledger, FromSpecLiftsTheContract) {
  std::istringstream in(
      "name = x\n"
      "tolerance default = 0.2\n"
      "tolerance m2 = 0.01\n"
      "compare = m1, m2\n"
      "slo m1 <= 3\n");
  const CompareOptions options = CompareOptions::from_spec(parse_spec(in));
  EXPECT_DOUBLE_EQ(options.default_tolerance, 0.2);
  ASSERT_EQ(options.tolerances.size(), 1u);
  EXPECT_EQ(options.tolerances[0].first, "m2");
  EXPECT_EQ(options.metrics, (std::vector<std::string>{"m1", "m2"}));
  ASSERT_EQ(options.slos.size(), 1u);
  EXPECT_EQ(options.slos[0].metric, "m1");
}

TEST(Ledger, RenderReportEndsWithVerdict) {
  const CampaignResult a = campaign({cell("c1", {{"m", 1.0}})});
  const std::string pass_text = render_report(compare_campaigns(a, a, {}));
  EXPECT_NE(pass_text.find("PASS"), std::string::npos);
  const CampaignResult b = campaign({cell("c1", {{"m", 2.0}})});
  const std::string fail_text =
      render_report(compare_campaigns(b, a, {}), /*verbose=*/true);
  EXPECT_NE(fail_text.find("FAIL"), std::string::npos);
  EXPECT_NE(fail_text.find("c1"), std::string::npos);
}

}  // namespace
}  // namespace hit::campaign
