#include "campaign/runner.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "campaign/json.h"
#include "campaign/record.h"
#include "campaign/spec.h"

namespace hit::campaign {
namespace {

CampaignSpec small_spec() {
  std::istringstream in(
      "name = unit\n"
      "mode = batch\n"
      "jobs = 3\n"
      "bandwidth_scale = 0.05\n"
      "matrix scheduler = hit, fair\n"
      "matrix seed = 1, 2\n");
  return parse_spec(in);
}

std::string run_to_json(const CampaignSpec& spec, std::size_t threads) {
  RunOptions options;
  options.threads = threads;
  const CampaignResult result = run_campaign(spec, options);
  std::ostringstream out;
  write_campaign_json(out, result);
  return out.str();
}

TEST(Runner, CampaignJsonIsByteIdenticalAcrossRuns) {
  const CampaignSpec spec = small_spec();
  EXPECT_EQ(run_to_json(spec, 2), run_to_json(spec, 2));
}

TEST(Runner, CampaignJsonIsByteIdenticalAcrossThreadCounts) {
  const CampaignSpec spec = small_spec();
  const std::string one = run_to_json(spec, 1);
  EXPECT_EQ(one, run_to_json(spec, 3));
}

TEST(Runner, CellsLandInGridOrderAndSucceed) {
  const CampaignResult result = run_campaign(small_spec());
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.cells[0].id, "scheduler=hit/seed=1");
  EXPECT_EQ(result.cells[3].id, "scheduler=fair/seed=2");
  for (const CellResult& cell : result.cells) {
    EXPECT_TRUE(cell.ok) << cell.id << ": " << cell.error;
    EXPECT_NE(cell.metric("mean_jct_s"), nullptr) << cell.id;
    EXPECT_NE(cell.metric("jobs_completed"), nullptr) << cell.id;
  }
  EXPECT_EQ(result.cell("scheduler=fair/seed=1"), &result.cells[2]);
  EXPECT_EQ(result.cell("nope"), nullptr);
}

TEST(Runner, RunRecordMatchesCampaignCellExactly) {
  // The campaign executes every cell through its record, so a record built
  // from the same cell must reproduce the campaign's numbers bit-for-bit.
  const CampaignSpec spec = small_spec();
  const CampaignResult result = run_campaign(spec);
  const std::vector<Cell> cells = expand(spec);
  const CellRecord record = make_record(spec.name, cells[1]);
  EXPECT_EQ(run_record(record), result.cells[1].metrics);
}

TEST(Runner, RecordRoundTripsThroughSaveAndLoad) {
  const std::vector<Cell> cells = expand(small_spec());
  const CellRecord record = make_record("unit", cells[0]);
  std::stringstream buffer;
  save_record(buffer, record);
  const CellRecord reloaded = load_record(buffer);
  EXPECT_EQ(reloaded.campaign, record.campaign);
  EXPECT_EQ(reloaded.cell, record.cell);
  EXPECT_EQ(reloaded.config.items(), record.config.items());
  ASSERT_EQ(reloaded.workload.size(), record.workload.size());
  // The reloaded record replays to the same metrics.
  EXPECT_EQ(run_record(reloaded), run_record(record));
}

TEST(Runner, FaultPlanIsDeterministicAndConfigDriven) {
  CellConfig config;
  config.set("faults", "500");
  config.set("fault_horizon", "2000");
  const topo::Topology topology = build_topology("tree");
  const auto a = generate_fault_events(config, topology);
  const auto b = generate_fault_events(config, topology);
  EXPECT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
  }
  config.set("faults", "0");
  EXPECT_TRUE(generate_fault_events(config, topology).empty());
}

TEST(Runner, BadConfigIsCapturedPerCellNotThrown) {
  std::istringstream in(
      "name = broken\n"
      "jobs = 2\n"
      "matrix scheduler = hit, no-such-scheduler\n");
  const CampaignResult result = run_campaign(parse_spec(in));
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_TRUE(result.cells[0].ok);
  EXPECT_FALSE(result.cells[1].ok);
  EXPECT_FALSE(result.cells[1].error.empty());
}

TEST(Runner, UnknownTopologyThrows) {
  EXPECT_THROW((void)build_topology("moebius"), std::invalid_argument);
}

TEST(Json, CampaignResultRoundTripsThroughJson) {
  const CampaignResult result = run_campaign(small_spec());
  std::ostringstream out;
  write_campaign_json(out, result);
  const CampaignResult reloaded = campaign_from_json(parse_json(out.str()));
  EXPECT_EQ(reloaded.name, result.name);
  EXPECT_EQ(reloaded.axis_names, result.axis_names);
  ASSERT_EQ(reloaded.cells.size(), result.cells.size());
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    EXPECT_EQ(reloaded.cells[i].id, result.cells[i].id);
    EXPECT_EQ(reloaded.cells[i].axes, result.cells[i].axes);
    EXPECT_EQ(reloaded.cells[i].ok, result.cells[i].ok);
    EXPECT_EQ(reloaded.cells[i].metrics, result.cells[i].metrics);
  }
  // And the reloaded result serializes back to the same bytes.
  std::ostringstream again;
  write_campaign_json(again, reloaded);
  EXPECT_EQ(again.str(), out.str());
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)parse_json("{\"a\": }"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("[1, 2"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{} trailing"), std::invalid_argument);
  const JsonValue v = parse_json("{\"a\": [1, true, \"x\\n\"]}");
  ASSERT_NE(v.find("a"), nullptr);
  ASSERT_EQ(v.find("a")->array.size(), 3u);
  EXPECT_EQ(v.find("a")->array[2].string, "x\n");
}

}  // namespace
}  // namespace hit::campaign
