// `hitcamp report` minimal mode: render_report turns a campaign result into
// a fixed-width metric table that stands alone in a CI log.
#include "campaign/report.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace hit::campaign {
namespace {

CampaignResult sample() {
  CampaignResult result;
  result.name = "demo";
  result.git_sha = "abc1234";
  CellResult a;
  a.id = "scheduler=hit/seed=1";
  a.metrics = {{"makespan_s", 123.456},
               {"wf_stretch", 1.25},
               {"obs.sim.flows", 42.0}};
  CellResult b;
  b.id = "scheduler=fair/seed=1";
  b.metrics = {{"makespan_s", 150.0}, {"wf_stretch", 0.0001}};
  result.cells = {a, b};
  return result;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(RenderReport, DefaultColumnsSkipObsMetricsAndKeepOrder) {
  const std::string text = render_report(sample());
  EXPECT_NE(text.find("campaign demo @ abc1234"), std::string::npos);
  EXPECT_NE(text.find("makespan_s"), std::string::npos);
  EXPECT_NE(text.find("wf_stretch"), std::string::npos);
  EXPECT_EQ(text.find("obs.sim.flows"), std::string::npos);
  // Header orders columns by first appearance.
  EXPECT_LT(text.find("makespan_s"), text.find("wf_stretch"));
  EXPECT_NE(text.find("2/2 cells ok"), std::string::npos);
}

TEST(RenderReport, ExplicitMetricsSelectAndOrderColumns) {
  const std::string text =
      render_report(sample(), {"wf_stretch", "makespan_s"});
  EXPECT_LT(text.find("wf_stretch"), text.find("makespan_s"));
  // A metric a cell lacks renders as "-", not a crash: ask for one that
  // exists nowhere.
  const std::string missing = render_report(sample(), {"no_such_metric"});
  EXPECT_NE(missing.find("no_such_metric"), std::string::npos);
  EXPECT_NE(missing.find(" -"), std::string::npos);
}

TEST(RenderReport, ColumnsAlignAcrossRows) {
  const std::string text =
      render_report(sample(), {"makespan_s", "wf_stretch"});
  const std::vector<std::string> lines = lines_of(text);
  // line 0 banner, 1 header, 2 rule, 3-4 rows, 5 summary.
  ASSERT_GE(lines.size(), 6u);
  const std::size_t col = lines[1].find("makespan_s");
  ASSERT_NE(col, std::string::npos);
  // Both value cells start in the metric's column (ids are padded).
  EXPECT_EQ(lines[3].find("123.5"), col);
  EXPECT_EQ(lines[4].find("150"), col);
  // The rule under the header starts at column zero and is dashes-only.
  EXPECT_EQ(lines[2].find('-'), 0u);
}

TEST(RenderReport, SmallValuesUseScientificNotation) {
  const std::string text = render_report(sample(), {"wf_stretch"});
  EXPECT_NE(text.find("1.000e-04"), std::string::npos);
}

TEST(RenderReport, ErrorRowsRenderTheCellError) {
  CampaignResult result = sample();
  CellResult bad;
  bad.id = "scheduler=hit/seed=2";
  bad.ok = false;
  bad.error = "job does not fit the cluster";
  result.cells.push_back(bad);
  const std::string text = render_report(result);
  EXPECT_NE(text.find("ERROR: job does not fit the cluster"),
            std::string::npos);
  EXPECT_NE(text.find("2/3 cells ok"), std::string::npos);
}

TEST(RenderReport, EmptyCampaignStillSummarizes) {
  CampaignResult result;
  result.name = "empty";
  const std::string text = render_report(result);
  EXPECT_NE(text.find("campaign empty"), std::string::npos);
  EXPECT_NE(text.find("0/0 cells ok"), std::string::npos);
}

}  // namespace
}  // namespace hit::campaign
