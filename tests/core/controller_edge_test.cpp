// Typed-error and edge-case coverage for NetworkController: the unplanned
// fail/recover path, parked-flow lifecycle, drain idempotency under hot
// pressure, and rebalance termination when no alternative helps.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/errors.h"
#include "network/routing.h"
#include "topology/builders.h"

namespace hit::core {
namespace {

class ControllerEdgeTest : public ::testing::Test {
 protected:
  // Same shape as controller_test: 4 single-host access positions, 2 cores.
  topo::TreeConfig tree_{2, 4, 2, 1, 16.0, 32.0};
  topo::Topology topo_ = topo::make_tree(tree_);
  NetworkController controller_{topo_, make_config()};

  static ControllerConfig make_config() {
    ControllerConfig c;
    c.hot_threshold = 0.5;
    return c;
  }

  net::Flow flow(unsigned id, double rate) {
    net::Flow f;
    f.id = FlowId(id);
    f.size_gb = rate;
    f.rate = rate;
    return f;
  }

  NodeId server(std::size_t i) { return topo_.servers()[i]; }

  /// The core switch that is not `core` (the fixture tree has exactly two).
  NodeId twin_core(NodeId core) {
    for (NodeId sw : topo_.switches()) {
      if (topo_.tier(sw) == topo::Tier::Core && sw != core) return sw;
    }
    return core;
  }

  net::Policy install(unsigned id, double rate, std::size_t src, std::size_t dst) {
    const net::Policy p =
        net::shortest_policy(topo_, server(src), server(dst), FlowId(id));
    controller_.install(flow(id, rate), p, server(src), server(dst));
    return p;
  }
};

TEST_F(ControllerEdgeTest, UnknownFlowIsTyped) {
  EXPECT_THROW(controller_.remove(FlowId(404)), UnknownFlow);
  EXPECT_THROW((void)controller_.policy_of(FlowId(404)), UnknownFlow);
  // UnknownFlow derives from out_of_range: pre-fault callers still catch it.
  EXPECT_THROW(controller_.remove(FlowId(404)), std::out_of_range);
}

TEST_F(ControllerEdgeTest, FailRejectsNonSwitchesAndIsIdempotent) {
  EXPECT_THROW(controller_.fail(server(0)), NotASwitch);
  EXPECT_THROW(controller_.recover(server(0)), NotASwitch);
  EXPECT_THROW(controller_.fail(server(0)), std::invalid_argument);  // base

  const NodeId sw = topo_.switches()[0];
  controller_.fail(sw);
  EXPECT_TRUE(controller_.failed(sw));
  EXPECT_EQ(controller_.fail(sw), 0u);  // duplicate fail: no-op
  EXPECT_GE(controller_.recover(sw), 0u);
  EXPECT_FALSE(controller_.failed(sw));
  EXPECT_EQ(controller_.recover(sw), 0u);  // duplicate recover: no-op
}

TEST_F(ControllerEdgeTest, InstallOntoFailedPathIsRejectedTyped) {
  const net::Policy p =
      net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  controller_.fail(p.list[1]);
  EXPECT_THROW(controller_.install(flow(1, 1.0), p, server(0), server(2)),
               PathUnavailable);
  EXPECT_EQ(controller_.installed_count(), 0u);
  EXPECT_NO_THROW(controller_.audit());
}

TEST_F(ControllerEdgeTest, FailReroutesCrossingFlowsOffTheSwitch) {
  const net::Policy p = install(1, 4.0, 0, 2);
  ASSERT_EQ(p.list.size(), 3u);
  const NodeId core = p.list[1];

  EXPECT_EQ(controller_.fail(core), 1u);
  const net::Policy& after = controller_.policy_of(FlowId(1));
  for (NodeId sw : after.list) EXPECT_NE(sw, core);
  EXPECT_EQ(controller_.parked_count(), 0u);
  EXPECT_NO_THROW(controller_.audit());
}

TEST_F(ControllerEdgeTest, ParkedFlowLifecycle) {
  const net::Policy p = install(1, 4.0, 0, 2);
  const NodeId access = p.list[0];  // the src access switch: no detour exists

  controller_.fail(access);
  ASSERT_EQ(controller_.parked_count(), 1u);
  EXPECT_EQ(controller_.parked().front(), FlowId(1));
  EXPECT_TRUE(controller_.installed(FlowId(1)));  // known, just not routed
  // Parked flows carry no load anywhere.
  for (NodeId w : topo_.switches()) {
    EXPECT_DOUBLE_EQ(controller_.load().load(w), 0.0);
  }
  EXPECT_NO_THROW(controller_.audit());

  EXPECT_EQ(controller_.recover(access), 1u);
  EXPECT_EQ(controller_.parked_count(), 0u);
  EXPECT_TRUE(controller_.policy_of(FlowId(1)).satisfied(topo_, server(0),
                                                         server(2)));
  EXPECT_NO_THROW(controller_.audit());

  // Removing a parked flow must not corrupt the ledger either.
  controller_.fail(access);
  ASSERT_EQ(controller_.parked_count(), 1u);
  controller_.remove(FlowId(1));
  EXPECT_EQ(controller_.installed_count(), 0u);
  EXPECT_NO_THROW(controller_.audit());
}

TEST_F(ControllerEdgeTest, BackoffAdmitsThrottledWhenCapacityIsTight) {
  // Saturate the twin core so a full-rate reroute cannot fit, but half rate
  // can: the backed-off re-admission should succeed at a throttled rate.
  const net::Policy p = install(1, 20.0, 0, 2);
  ASSERT_EQ(p.list.size(), 3u);
  const NodeId core = p.list[1];

  // Pin a second flow onto the twin core (both cores connect every access
  // switch, so the swapped policy stays satisfied).
  net::Policy q = net::shortest_policy(topo_, server(1), server(3), FlowId(2));
  q.list[1] = twin_core(core);
  controller_.install(flow(2, 56.0), q, server(1), server(3));  // cores hold 64

  // Now core (p's) fails; the only alternative core has 8 residual units.
  // 20 -> 10 -> 5 backs off into the gap on the third attempt.
  EXPECT_EQ(controller_.fail(core), 1u);
  EXPECT_EQ(controller_.parked_count(), 0u);
  EXPECT_NO_THROW(controller_.audit());
  EXPECT_LE(controller_.load().load(q.list[1]), 64.0 + 1e-9);
}

TEST_F(ControllerEdgeTest, DrainIsIdempotentUnderHotPressure) {
  const net::Policy p = install(1, 17.0, 0, 2);  // access hot at 0.5 x 32
  const NodeId access = p.list[0];
  ASSERT_GT(controller_.hot_switches().size(), 0u);

  controller_.drain(access);
  const double absorbed_once = controller_.load().load(access);
  controller_.drain(access);  // idempotent: no double absorption
  EXPECT_DOUBLE_EQ(controller_.load().load(access), absorbed_once);
  EXPECT_TRUE(controller_.draining(access));
  EXPECT_NO_THROW(controller_.audit());

  controller_.undrain(access);
  controller_.undrain(access);  // idempotent
  EXPECT_FALSE(controller_.draining(access));
  EXPECT_DOUBLE_EQ(controller_.load().load(access), 17.0);
  EXPECT_NO_THROW(controller_.audit());

  EXPECT_THROW(controller_.drain(server(0)), NotASwitch);
}

TEST_F(ControllerEdgeTest, RebalanceTerminatesWhenAllAlternativesSaturated) {
  // Both cores hot (35 > 0.5 x 64) and neither can absorb the other's flow
  // (residual 29 < 35): rebalance must terminate without thrashing and
  // leave the ledger intact.
  const net::Policy p = install(1, 35.0, 0, 2);
  net::Policy q = net::shortest_policy(topo_, server(1), server(3), FlowId(2));
  q.list[1] = twin_core(p.list[1]);
  controller_.install(flow(2, 35.0), q, server(1), server(3));
  ASSERT_GE(controller_.hot_switches().size(), 2u);  // at least both cores

  const double cost_before = controller_.total_cost();
  const std::size_t moved = controller_.rebalance();
  EXPECT_LE(controller_.total_cost(), cost_before + 1e-9);
  EXPECT_NO_THROW(controller_.audit());
  (void)moved;  // moves are allowed, oscillation is not: audit + cost bound
}

TEST_F(ControllerEdgeTest, ConfigValidation) {
  ControllerConfig c;
  c.max_reroute_attempts = 0;
  EXPECT_THROW((void)NetworkController(topo_, c), std::invalid_argument);
  c = ControllerConfig{};
  c.reroute_backoff = 0.0;
  EXPECT_THROW((void)NetworkController(topo_, c), std::invalid_argument);
  c.reroute_backoff = 1.5;
  EXPECT_THROW((void)NetworkController(topo_, c), std::invalid_argument);
}

}  // namespace
}  // namespace hit::core
