#include "core/controller.h"

#include <gtest/gtest.h>

#include "network/routing.h"
#include "topology/builders.h"

namespace hit::core {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  // Depth-2 tree, 4 access positions x 1 host, 2 core replicas (32-capacity
  // access switches, 64-capacity cores).  One server per access switch keeps
  // distinct flows' access legs disjoint, so only the cores are shared.
  topo::TreeConfig tree_{2, 4, 2, 1, 16.0, 32.0};
  topo::Topology topo_ = topo::make_tree(tree_);
  NetworkController controller_{topo_, make_config()};

  static ControllerConfig make_config() {
    ControllerConfig c;
    c.hot_threshold = 0.5;
    return c;
  }

  net::Flow flow(unsigned id, double rate) {
    net::Flow f;
    f.id = FlowId(id);
    f.size_gb = rate;
    f.rate = rate;
    return f;
  }

  NodeId server(std::size_t i) { return topo_.servers()[i]; }
};

TEST_F(ControllerTest, InstallChargesLoad) {
  const net::Policy p = net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  controller_.install(flow(1, 10.0), p, server(0), server(2));
  EXPECT_EQ(controller_.installed_count(), 1u);
  EXPECT_TRUE(controller_.installed(FlowId(1)));
  for (NodeId w : p.list) {
    EXPECT_DOUBLE_EQ(controller_.load().load(w), 10.0);
  }
  EXPECT_NO_THROW(controller_.audit());
}

TEST_F(ControllerTest, RemoveReleasesLoad) {
  const net::Policy p = net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  controller_.install(flow(1, 10.0), p, server(0), server(2));
  controller_.remove(FlowId(1));
  EXPECT_EQ(controller_.installed_count(), 0u);
  for (NodeId w : p.list) {
    EXPECT_DOUBLE_EQ(controller_.load().load(w), 0.0);
  }
  EXPECT_THROW(controller_.remove(FlowId(1)), std::out_of_range);
}

TEST_F(ControllerTest, RejectsBadInstalls) {
  const net::Policy p = net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  controller_.install(flow(1, 1.0), p, server(0), server(2));
  EXPECT_THROW(controller_.install(flow(1, 1.0), p, server(0), server(2)),
               std::invalid_argument);  // duplicate
  EXPECT_THROW(controller_.install(flow(2, 1.0), p, server(2), server(0)),
               std::invalid_argument);  // endpoints do not match policy
}

TEST_F(ControllerTest, DetectsHotSwitches) {
  const net::Policy p = net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  // Access capacity 32, threshold 0.5 -> 17 units makes it hot.
  controller_.install(flow(1, 17.0), p, server(0), server(2));
  const auto hot = controller_.hot_switches();
  EXPECT_EQ(hot.size(), 2u);  // both access switches (core capacity 64)
}

TEST_F(ControllerTest, RebalanceMovesFlowsOffHotCore) {
  // Two flows through the same core: 40 units on a 64-capacity core is hot
  // at threshold 0.5; one flow should migrate to the idle twin core.
  const net::Policy p = net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  const NodeId core = p.list[1];
  controller_.install(flow(1, 17.0), p, server(0), server(2));
  const net::Policy q = net::shortest_policy(topo_, server(1), server(3), FlowId(2));
  controller_.install(flow(2, 17.0), q, server(1), server(3));

  if (q.list[1] != core) GTEST_SKIP() << "flows did not share a core";
  ASSERT_DOUBLE_EQ(controller_.load().load(core), 34.0);  // hot: > 0.5 * 64

  const double before = controller_.total_cost();
  const std::size_t rerouted = controller_.rebalance();
  EXPECT_GE(rerouted, 1u);
  EXPECT_LE(controller_.load().load(core), 17.0 + 1e-9);
  EXPECT_LE(controller_.total_cost(), before + 1e-9);
  EXPECT_NO_THROW(controller_.audit());
}

TEST_F(ControllerTest, RebalanceNoopWhenCool) {
  const net::Policy p = net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  controller_.install(flow(1, 1.0), p, server(0), server(2));
  EXPECT_EQ(controller_.rebalance(), 0u);
}

TEST_F(ControllerTest, RebalanceCannotHelpSinglePathTopology) {
  // Case-study tree has no alternate routes: rebalance must not thrash.
  const topo::Topology single = topo::make_case_study_tree();
  ControllerConfig config;
  config.hot_threshold = 0.1;
  NetworkController controller(single, config);
  const NodeId a = single.servers()[0];
  const NodeId b = single.servers()[3];
  const net::Policy p = net::shortest_policy(single, a, b, FlowId(1));
  controller.install(flow(1, 30.0), p, a, b);
  EXPECT_EQ(controller.rebalance(), 0u);
  EXPECT_EQ(controller.policy_of(FlowId(1)).list, p.list);
}

TEST_F(ControllerTest, AuditCatchesTampering) {
  EXPECT_NO_THROW(controller_.audit());
  EXPECT_THROW((void)controller_.policy_of(FlowId(9)), std::out_of_range);
  EXPECT_THROW((void)NetworkController(topo_, ControllerConfig{{}, 0.0, 4}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hit::core
