#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "network/routing.h"
#include "test_helpers.h"

namespace hit::core {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  topo::Topology topo_ = topo::make_case_study_tree();
  NodeId s1_ = topo_.servers()[0];
  NodeId s2_ = topo_.servers()[1];
  NodeId s4_ = topo_.servers()[3];

  CostConfig pure() {
    CostConfig c;
    c.congestion_weight = 0.0;
    return c;
  }
};

TEST_F(CostModelTest, PolicyCostIsMetricTimesHops) {
  const CostModel cost(topo_, pure());
  const net::Policy near = net::shortest_policy(topo_, s1_, s2_, FlowId(0));
  const net::Policy far = net::shortest_policy(topo_, s1_, s4_, FlowId(1));
  EXPECT_DOUBLE_EQ(cost.policy_cost(near, 34.0), 34.0);   // 1 switch
  EXPECT_DOUBLE_EQ(cost.policy_cost(far, 34.0), 102.0);   // 3 switches
  EXPECT_DOUBLE_EQ(cost.policy_cost(net::Policy{}, 34.0), 0.0);
}

TEST_F(CostModelTest, CaseStudyArithmetic) {
  // The paper's §2.3 numbers: 34 GB over 3 hops + 10 GB over 1 hop = 112;
  // swapped placement = 34*1 + 10*3 = 64.
  const CostModel cost(topo_, pure());
  const net::Policy far = net::shortest_policy(topo_, s1_, s4_, FlowId(0));
  const net::Policy near = net::shortest_policy(topo_, s1_, s2_, FlowId(1));
  EXPECT_DOUBLE_EQ(cost.policy_cost(far, 34.0) + cost.policy_cost(near, 10.0), 112.0);
  EXPECT_DOUBLE_EQ(cost.policy_cost(near, 34.0) + cost.policy_cost(far, 10.0), 64.0);
}

TEST_F(CostModelTest, SegmentCostsSumToPolicyCost) {
  const CostModel cost(topo_, pure());
  const net::Policy far = net::shortest_policy(topo_, s1_, s4_, FlowId(0));
  // Eq. (2): src->w0, w0->w1, w1->w2, w2->dst.
  double sum = cost.segment_cost(s1_, far.list[0], 5.0);
  for (std::size_t i = 0; i + 1 < far.list.size(); ++i) {
    sum += cost.segment_cost(far.list[i], far.list[i + 1], 5.0);
  }
  sum += cost.segment_cost(far.list.back(), s4_, 5.0);
  EXPECT_DOUBLE_EQ(sum, cost.policy_cost(far, 5.0));
}

TEST_F(CostModelTest, CongestionRaisesSwitchCost) {
  net::LoadTracker load(topo_);
  CostConfig config;
  config.congestion_weight = 1.0;
  const CostModel cost(topo_, config, &load);
  const NodeId root = topo_.switches()[0];
  const double idle = cost.switch_cost(root);
  net::Policy root_only;
  root_only.list = {root};
  root_only.type = {topo::Tier::Core};
  load.assign(root_only, 64.0);  // 50% of the 128 root capacity
  EXPECT_DOUBLE_EQ(cost.switch_cost(root), idle * 1.5);
}

TEST_F(CostModelTest, SubstitutionUtilityEq5) {
  // Redundant-core tree: swapping the core for its idle twin under
  // congestion yields exactly the switch-cost difference.
  topo::TreeConfig tc{2, 2, 2, 1, 16.0, 32.0};
  const topo::Topology t = topo::make_tree(tc);
  net::LoadTracker load(t);
  CostConfig config;
  config.congestion_weight = 1.0;
  const CostModel cost(t, config, &load);

  const NodeId a = t.servers()[0];
  const NodeId b = t.servers()[1];
  net::Policy p = net::shortest_policy(t, a, b, FlowId(0));
  ASSERT_EQ(p.len(), 3u);
  const NodeId core = p.list[1];
  const auto cands = load.candidates(a, b, p, 1, 1.0);
  ASSERT_EQ(cands.size(), 1u);
  const NodeId twin = cands[0];

  // Load the current core only.
  net::Policy core_only;
  core_only.list = {core};
  core_only.type = {topo::Tier::Core};
  load.assign(core_only, 32.0);  // 50% of 64

  const double metric = 7.0;
  const double utility = cost.substitution_utility(p, a, b, 1, twin, metric);
  EXPECT_NEAR(utility, metric * (cost.switch_cost(core) - cost.switch_cost(twin)),
              1e-12);
  EXPECT_GT(utility, 0.0);
}

TEST_F(CostModelTest, SeparabilityEq6MultiSwitch) {
  // Utility of rescheduling two switches equals the sum of the single-switch
  // utilities (Eq. 6), for any loads.
  topo::TreeConfig tc{3, 2, 2, 2, 16.0, 32.0};
  const topo::Topology t = topo::make_tree(tc);
  net::LoadTracker load(t);
  CostConfig config;
  config.congestion_weight = 0.7;
  const CostModel cost(t, config, &load);

  const NodeId a = t.servers()[0];
  const NodeId b = t.servers()[7];  // cross-core: access agg core agg access
  net::Policy p = net::shortest_policy(t, a, b, FlowId(0));
  ASSERT_EQ(p.len(), 5u);

  // Load a couple of switches asymmetrically.
  net::Policy charged;
  charged.list = {p.list[1], p.list[2]};
  charged.type = {t.tier(p.list[1]), t.tier(p.list[2])};
  load.assign(charged, 20.0);

  const auto agg_cands = load.candidates(a, b, p, 1, 1.0);
  const auto core_cands = load.candidates(a, b, p, 2, 1.0);
  ASSERT_FALSE(agg_cands.empty());
  ASSERT_FALSE(core_cands.empty());
  const double metric = 3.0;

  const double u1 = cost.substitution_utility(p, a, b, 1, agg_cands[0], metric);
  const double u2 = cost.substitution_utility(p, a, b, 2, core_cands[0], metric);

  // Apply both and compare total policy cost difference.
  net::Policy q = p;
  q.list[1] = agg_cands[0];
  q.list[2] = core_cands[0];
  const double joint = cost.policy_cost(p, metric) - cost.policy_cost(q, metric);
  EXPECT_NEAR(joint, u1 + u2, 1e-9);
}

TEST_F(CostModelTest, EndSwitchUtilityEq7UsesEndpoints) {
  topo::TreeConfig tc{2, 2, 2, 2, 16.0, 32.0};
  const topo::Topology t = topo::make_tree(tc);
  net::LoadTracker load(t);
  const CostModel cost(t, CostConfig{}, &load);
  const NodeId a = t.servers()[0];
  const NodeId b = t.servers()[2];
  net::Policy p = net::shortest_policy(t, a, b, FlowId(0));
  // Position 0 is the end access switch; utility formula must not throw and
  // must be zero for substituting a switch with identical cost.
  EXPECT_THROW(
      (void)cost.substitution_utility(p, a, b, p.len(), p.list[0], 1.0),
      std::out_of_range);
  EXPECT_DOUBLE_EQ(cost.substitution_utility(p, a, b, 0, p.list[0], 1.0), 0.0);
}

TEST_F(CostModelTest, MetricSelection) {
  CostConfig by_size = pure();
  CostConfig by_rate = pure();
  by_rate.metric_is_size = false;
  const CostModel size_model(topo_, by_size);
  const CostModel rate_model(topo_, by_rate);
  net::Flow f;
  f.size_gb = 8.0;
  f.rate = 2.0;
  EXPECT_DOUBLE_EQ(size_model.metric(f), 8.0);
  EXPECT_DOUBLE_EQ(rate_model.metric(f), 2.0);
}

TEST_F(CostModelTest, ConfigValidation) {
  CostConfig bad;
  bad.unit_cost = 0.0;
  EXPECT_THROW((void)CostModel(topo_, bad), std::invalid_argument);
  bad = CostConfig{};
  bad.congestion_weight = -1.0;
  EXPECT_THROW((void)CostModel(topo_, bad), std::invalid_argument);
}

}  // namespace
}  // namespace hit::core
