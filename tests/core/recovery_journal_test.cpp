#include "core/recovery/journal.h"

#include <gtest/gtest.h>

#include "core/recovery/snapshot.h"

namespace hit::core::recovery {
namespace {

net::Flow make_flow(unsigned id, double rate) {
  net::Flow f;
  f.id = FlowId(id);
  f.size_gb = rate * 2.0;
  f.rate = rate;
  return f;
}

net::Policy make_policy(FlowId flow, std::initializer_list<unsigned> switches) {
  net::Policy p;
  p.flow = flow;
  for (unsigned s : switches) p.list.push_back(NodeId(s));
  return p;
}

TEST(ByteCodec, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-1234.5678e-9);
  w.f64(0.0);
  w.str("hello");
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), -1234.5678e-9);
  EXPECT_DOUBLE_EQ(r.f64(), 0.0);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(ByteCodec, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x04030201);
  const std::string& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(b[3]), 0x04);
}

TEST(ByteCodec, TruncationThrows) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(std::string_view(w.bytes()).substr(0, 2));
  EXPECT_THROW((void)r.u32(), std::runtime_error);
}

TEST(JournalRecordCodec, EveryKindRoundTrips) {
  std::vector<JournalRecord> records;
  {
    JournalRecord rec;
    rec.kind = RecordKind::Install;
    rec.flow = make_flow(7, 3.5);
    rec.policy = make_policy(FlowId(7), {100, 101, 102});
    rec.src = NodeId(1);
    rec.dst = NodeId(2);
    rec.value = 3.5;
    records.push_back(rec);
  }
  {
    JournalRecord rec;
    rec.kind = RecordKind::Reroute;
    rec.flow.id = FlowId(7);
    rec.policy = make_policy(FlowId(7), {100, 103});
    rec.value = 1.75;
    records.push_back(rec);
  }
  for (RecordKind kind : {RecordKind::Evict, RecordKind::Park,
                          RecordKind::Readmit}) {
    JournalRecord rec;
    rec.kind = kind;
    rec.flow.id = FlowId(7);
    records.push_back(rec);
  }
  for (RecordKind kind :
       {RecordKind::Fail, RecordKind::Recover, RecordKind::Quarantine,
        RecordKind::Probe, RecordKind::Reinstate, RecordKind::Drain,
        RecordKind::Undrain}) {
    JournalRecord rec;
    rec.kind = kind;
    rec.node = NodeId(42);
    rec.value = kind == RecordKind::Drain ? 12.5 : 1.0;
    records.push_back(rec);
  }
  {
    JournalRecord rec;
    rec.kind = RecordKind::AimdLimit;
    rec.value = 24.0;
    records.push_back(rec);
  }
  {
    JournalRecord rec;
    rec.kind = RecordKind::TenantQuota;
    rec.tenant = 3;
    rec.value = 0.75;
    records.push_back(rec);
  }

  for (const JournalRecord& rec : records) {
    ByteWriter w;
    rec.encode(w);
    ByteReader r(w.bytes());
    const JournalRecord back = JournalRecord::decode(r);
    EXPECT_TRUE(r.done()) << record_kind_name(rec.kind);
    EXPECT_EQ(back.kind, rec.kind);
    EXPECT_EQ(back.flow.id, rec.flow.id);
    EXPECT_DOUBLE_EQ(back.flow.rate, rec.flow.rate);
    EXPECT_EQ(back.policy.list, rec.policy.list);
    EXPECT_EQ(back.src, rec.src);
    EXPECT_EQ(back.dst, rec.dst);
    EXPECT_EQ(back.node, rec.node);
    EXPECT_DOUBLE_EQ(back.value, rec.value);
    EXPECT_EQ(back.tenant, rec.tenant);
    // Byte-stable: re-encoding the decoded record reproduces the bytes.
    ByteWriter w2;
    back.encode(w2);
    EXPECT_EQ(w2.bytes(), w.bytes()) << record_kind_name(rec.kind);
  }
}

TEST(StateJournal, EncodeDecodeRoundTripsAndTracksBytes) {
  StateJournal journal;
  EXPECT_TRUE(journal.empty());
  EXPECT_EQ(journal.bytes(), 12u);  // header only

  JournalRecord install;
  install.kind = RecordKind::Install;
  install.flow = make_flow(1, 2.0);
  install.policy = make_policy(FlowId(1), {10, 11});
  install.src = NodeId(5);
  install.dst = NodeId(6);
  install.value = 2.0;
  journal.append(install);

  JournalRecord fail;
  fail.kind = RecordKind::Fail;
  fail.node = NodeId(10);
  journal.append(fail);

  const std::string bytes = journal.encode();
  EXPECT_EQ(bytes.size(), journal.bytes());

  const StateJournal back = StateJournal::decode(bytes);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.records()[0].kind, RecordKind::Install);
  EXPECT_EQ(back.records()[1].kind, RecordKind::Fail);
  EXPECT_EQ(back.encode(), bytes);
}

TEST(StateJournal, DecodeRejectsCorruptHeaders) {
  StateJournal journal;
  std::string bytes = journal.encode();
  EXPECT_THROW(StateJournal::decode(bytes.substr(0, 6)), std::runtime_error);
  bytes[0] = 'X';  // break the magic
  EXPECT_THROW(StateJournal::decode(bytes), std::runtime_error);
}

TEST(ControllerStateCodec, CanonicalizeMakesEncodingOrderInsensitive) {
  ControllerState a;
  ControllerState b;
  FlowEntryState f1;
  f1.flow = make_flow(1, 1.0);
  f1.policy = make_policy(FlowId(1), {10});
  f1.charged_rate = 1.0;
  FlowEntryState f2;
  f2.flow = make_flow(2, 2.0);
  f2.policy = make_policy(FlowId(2), {11});
  f2.parked = true;

  a.flows = {f1, f2};
  b.flows = {f2, f1};
  a.failed = {NodeId(3), NodeId(1)};
  b.failed = {NodeId(1), NodeId(3)};
  a.quarantined = {{NodeId(9), 2u}, {NodeId(4), 0u}};
  b.quarantined = {{NodeId(4), 0u}, {NodeId(9), 2u}};
  a.draining = {{NodeId(7), 5.0}};
  b.draining = {{NodeId(7), 5.0}};

  a.canonicalize();
  b.canonicalize();
  EXPECT_EQ(a.encode(), b.encode());

  const std::string bytes = a.encode();
  ByteReader r(bytes);
  ControllerState back = ControllerState::decode(r);
  back.canonicalize();
  EXPECT_EQ(back.encode(), bytes);
}

TEST(SnapshotCodec, RoundTripsWithVersionedHeader) {
  Snapshot snap;
  snap.sim_time = 123.25;
  snap.journal_position = 17;
  FlowEntryState e;
  e.flow = make_flow(4, 0.5);
  e.policy = make_policy(FlowId(4), {20, 21});
  e.src = NodeId(1);
  e.dst = NodeId(2);
  e.charged_rate = 0.5;
  snap.controller.flows.push_back(e);
  snap.controller.failed.push_back(NodeId(20));
  snap.admission.has_aimd = true;
  snap.admission.aimd_limit = 12.0;
  snap.admission.tenant_quotas = {{0u, 1.0}, {1u, 0.5}};

  const std::string bytes = snap.encode();
  const Snapshot back = Snapshot::decode(bytes);
  EXPECT_DOUBLE_EQ(back.sim_time, snap.sim_time);
  EXPECT_EQ(back.journal_position, snap.journal_position);
  ASSERT_EQ(back.controller.flows.size(), 1u);
  EXPECT_EQ(back.controller.flows[0].flow.id, FlowId(4));
  EXPECT_TRUE(back.admission.has_aimd);
  EXPECT_DOUBLE_EQ(back.admission.aimd_limit, 12.0);
  EXPECT_EQ(back.encode(), bytes);

  std::string corrupt = bytes;
  corrupt[0] = 'X';
  EXPECT_THROW(Snapshot::decode(corrupt), std::runtime_error);
}

}  // namespace
}  // namespace hit::core::recovery
