// MKP solvers + the §4 reduction, executed.
#include "core/mkp.h"

#include <gtest/gtest.h>

#include "core/hit_scheduler.h"
#include "util/rng.h"

namespace hit::core {
namespace {

TEST(Mkp, ExactSolvesKnownInstance) {
  // Two knapsacks of capacity 10; items (profit, weight):
  // (60,5) (50,4) (40,6) (30,3).  Optimum packs everything except... check:
  // total weight 18 <= 20, and {5,4} + {6,3} fits -> profit 180.
  MkpInstance instance;
  instance.profit = {60, 50, 40, 30};
  instance.weight = {5, 4, 6, 3};
  instance.capacity = {10, 10};
  const MkpSolution solution = solve_mkp_exact(instance);
  EXPECT_DOUBLE_EQ(solution.total_profit, 180.0);
  EXPECT_TRUE(mkp_feasible(instance, solution));
}

TEST(Mkp, ExactLeavesItemsOutWhenForced) {
  MkpInstance instance;
  instance.profit = {10, 10, 1};
  instance.weight = {6, 6, 6};
  instance.capacity = {6, 6};  // only two items fit
  const MkpSolution solution = solve_mkp_exact(instance);
  EXPECT_DOUBLE_EQ(solution.total_profit, 20.0);
  EXPECT_EQ(solution.assignment[2], SIZE_MAX);
}

TEST(Mkp, GreedyIsFeasibleAndBoundedByExact) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    MkpInstance instance;
    const std::size_t n = 2 + rng.uniform_index(5);
    for (std::size_t j = 0; j < n; ++j) {
      instance.profit.push_back(rng.uniform(1.0, 20.0));
      instance.weight.push_back(rng.uniform(1.0, 8.0));
    }
    instance.capacity = {rng.uniform(5.0, 15.0), rng.uniform(5.0, 15.0)};

    const MkpSolution greedy = solve_mkp_greedy(instance);
    const MkpSolution exact = solve_mkp_exact(instance);
    EXPECT_TRUE(mkp_feasible(instance, greedy));
    EXPECT_TRUE(mkp_feasible(instance, exact));
    EXPECT_LE(greedy.total_profit, exact.total_profit + 1e-9);
  }
}

TEST(Mkp, Validation) {
  MkpInstance bad;
  bad.profit = {1.0};
  bad.weight = {1.0, 2.0};
  bad.capacity = {5.0};
  EXPECT_THROW((void)solve_mkp_exact(bad), std::invalid_argument);
  bad.weight = {0.0};
  EXPECT_THROW((void)solve_mkp_greedy(bad), std::invalid_argument);

  MkpInstance huge;
  for (int i = 0; i < 30; ++i) {
    huge.profit.push_back(1);
    huge.weight.push_back(1);
  }
  huge.capacity = {5, 5, 5};
  EXPECT_THROW((void)solve_mkp_exact(huge), std::invalid_argument);
}

TEST(MkpReductionTest, BuildsThePaperTopology) {
  MkpInstance instance;
  instance.profit = {3, 2};
  instance.weight = {4, 5};
  instance.capacity = {6, 6, 6};
  const auto reduction = reduce_mkp_to_taa(instance);
  EXPECT_EQ(reduction->knapsack_switches.size(), 3u);
  EXPECT_EQ(reduction->topology.servers().size(), 2u);
  EXPECT_EQ(reduction->topology.switches().size(), 5u);  // 2 access + 3 knapsack
  EXPECT_EQ(reduction->problem.flows.size(), 2u);
  // Every flow's only routes run through exactly one knapsack switch.
  const NodeId s1 = reduction->topology.servers()[0];
  const NodeId s2 = reduction->topology.servers()[1];
  for (const auto& path : reduction->topology.k_shortest_paths(s1, s2, 10)) {
    EXPECT_EQ(reduction->topology.switch_hops(path), 3u);
  }
}

TEST(MkpReductionTest, HitRoutingYieldsFeasiblePacking) {
  // All items fit across knapsacks: Hit's capacity-aware routing must find a
  // feasible item->knapsack packing worth the full profit.
  MkpInstance instance;
  instance.profit = {5, 4, 3, 2};
  instance.weight = {4, 4, 3, 3};
  instance.capacity = {8, 7};

  const auto reduction = reduce_mkp_to_taa(instance);
  HitScheduler hit;
  Rng rng(2);
  const sched::Assignment a = hit.schedule(reduction->problem, rng);

  const MkpSolution mapped = taa_solution_to_mkp(*reduction, instance, a);
  EXPECT_TRUE(mkp_feasible(instance, mapped));
  const MkpSolution exact = solve_mkp_exact(instance);
  EXPECT_DOUBLE_EQ(mapped.total_profit, exact.total_profit);  // all packed
}

TEST(MkpReductionTest, SwitchCapacitiesMirrorKnapsacks) {
  MkpInstance instance;
  instance.profit = {1, 1};
  instance.weight = {2, 3};
  instance.capacity = {4.5, 9.25};
  const auto reduction = reduce_mkp_to_taa(instance);
  EXPECT_DOUBLE_EQ(
      reduction->topology.switch_capacity(reduction->knapsack_switches[0]), 4.5);
  EXPECT_DOUBLE_EQ(
      reduction->topology.switch_capacity(reduction->knapsack_switches[1]), 9.25);
}

}  // namespace
}  // namespace hit::core
