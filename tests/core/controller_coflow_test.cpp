// Coflow-aware overload control: shed_pressure can park a victim's whole job
// wave, and readmit_parked restores parked flows job-by-job so one wave's
// flows come back together instead of interleaved with other jobs'.
#include "core/controller.h"

#include <gtest/gtest.h>

#include "network/routing.h"
#include "topology/builders.h"

namespace hit::core {
namespace {

class ControllerCoflowTest : public ::testing::Test {
 protected:
  // Depth-2 tree, 4 access positions x 1 host, 2 cores (access capacity 32):
  // flows out of server 0 all share its access switch.
  topo::TreeConfig tree_{2, 4, 2, 1, 16.0, 32.0};
  topo::Topology topo_ = topo::make_tree(tree_);

  static net::Flow flow(unsigned id, unsigned job, double rate,
                        std::uint8_t priority = 1) {
    net::Flow f;
    f.id = FlowId(id);
    f.job = JobId(job);
    f.size_gb = rate;
    f.rate = rate;
    f.priority = priority;
    return f;
  }

  void install(NetworkController& controller, const net::Flow& f,
               std::size_t src, std::size_t dst) {
    const NodeId a = topo_.servers()[src];
    const NodeId b = topo_.servers()[dst];
    controller.install(f, net::shortest_policy(topo_, a, b, f.id), a, b);
  }
};

TEST_F(ControllerCoflowTest, CoflowAwareShedParksTheWholeJobWave) {
  ControllerConfig config;
  config.hot_threshold = 0.5;
  config.coflow_aware = true;
  NetworkController controller(topo_, config);

  install(controller, flow(1, /*job=*/1, 6.0), 0, 1);
  install(controller, flow(2, /*job=*/2, 6.0, /*priority=*/2), 0, 2);
  install(controller, flow(3, /*job=*/1, 6.0), 0, 3);
  // Access switch of server 0 carries 18/32 > 0.5: hot.  The victim is flow
  // 1 (lowest priority, lowest id); coflow-aware shedding takes its whole
  // job — flow 3 gains the wave nothing by staying.
  EXPECT_EQ(controller.shed_pressure(), 2u);
  EXPECT_EQ(controller.parked(), (std::vector<FlowId>{FlowId(1), FlowId(3)}));
  EXPECT_TRUE(controller.installed(FlowId(2)));
  EXPECT_NO_THROW(controller.audit());
}

TEST_F(ControllerCoflowTest, DefaultShedStillParksSingleFlows) {
  ControllerConfig config;
  config.hot_threshold = 0.5;
  NetworkController controller(topo_, config);

  install(controller, flow(1, /*job=*/1, 6.0), 0, 1);
  install(controller, flow(2, /*job=*/2, 6.0, /*priority=*/2), 0, 2);
  install(controller, flow(3, /*job=*/1, 6.0), 0, 3);
  // 18/32 hot; parking flow 1 alone already cools the switch to 12/32.
  EXPECT_EQ(controller.shed_pressure(), 1u);
  EXPECT_EQ(controller.parked(), std::vector<FlowId>{FlowId(1)});
  EXPECT_NO_THROW(controller.audit());
}

TEST_F(ControllerCoflowTest, ReadmitKeepsJobWavesTogether) {
  // Regression: parked flows of the same job must be readmitted
  // contiguously, not interleaved with other jobs' flows — a wave that gets
  // half its flows back is no further along than one that got none.
  ControllerConfig config;
  config.hot_threshold = 0.5;
  config.max_reroute_attempts = 1;  // no backoff: readmit is all-or-nothing
  NetworkController controller(topo_, config);

  install(controller, flow(1, /*job=*/1, 6.0), 0, 1);
  install(controller, flow(2, /*job=*/2, 6.0), 0, 2);
  install(controller, flow(3, /*job=*/1, 6.0), 0, 3);
  install(controller, flow(4, /*job=*/3, 14.0, /*priority=*/2), 0, 2);
  // 32/32 hot; sheds flows 1, 2, 3 (equal priority and rate, id order)
  // until the survivor leaves 14/32.
  ASSERT_EQ(controller.shed_pressure(), 3u);
  ASSERT_EQ(controller.parked(),
            (std::vector<FlowId>{FlowId(1), FlowId(2), FlowId(3)}));

  // New load arrives while they wait: only 13 units of headroom remain —
  // room for two of the three parked flows.
  install(controller, flow(5, /*job=*/4, 5.0, /*priority=*/2), 0, 3);

  // Job 1 ranks first (its earliest waiting flow is id 1), so BOTH its
  // flows readmit and job 2's flow waits — not flow 1 + flow 2.
  EXPECT_EQ(controller.readmit_parked(), 2u);
  EXPECT_EQ(controller.parked(), std::vector<FlowId>{FlowId(2)});
  EXPECT_TRUE(controller.installed(FlowId(1)));
  EXPECT_TRUE(controller.installed(FlowId(3)));
  EXPECT_NO_THROW(controller.audit());
}

TEST_F(ControllerCoflowTest, ReadmitStillServesHigherPriorityJobsFirst) {
  // Priority outranks job grouping: the low-priority job waits even though
  // its flow id falls between the normal job's pair.
  ControllerConfig config;
  config.hot_threshold = 0.5;
  config.max_reroute_attempts = 1;
  NetworkController controller(topo_, config);

  install(controller, flow(1, /*job=*/1, 6.0), 0, 1);
  install(controller, flow(2, /*job=*/2, 6.0, /*priority=*/0), 0, 2);
  install(controller, flow(3, /*job=*/1, 6.0), 0, 3);
  install(controller, flow(4, /*job=*/3, 14.0, /*priority=*/2), 0, 2);
  // 32/32 hot: the low-priority flow 2 sheds first, then 1 and 3.
  ASSERT_EQ(controller.shed_pressure(), 3u);
  ASSERT_EQ(controller.parked(),
            (std::vector<FlowId>{FlowId(1), FlowId(2), FlowId(3)}));

  install(controller, flow(5, /*job=*/4, 5.0, /*priority=*/2), 0, 3);
  // 13 units of headroom: job 1 (normal) outranks job 2 (low) regardless of
  // flow-id order, so its pair readmits and the low-priority flow waits.
  EXPECT_EQ(controller.readmit_parked(), 2u);
  EXPECT_EQ(controller.parked(), std::vector<FlowId>{FlowId(2)});
  EXPECT_TRUE(controller.installed(FlowId(1)));
  EXPECT_TRUE(controller.installed(FlowId(3)));
  EXPECT_NO_THROW(controller.audit());
}

}  // namespace
}  // namespace hit::core
