// Algorithm 2 properties: completeness, capacity, and — the paper's §5.2.3
// theorem — stability (no blocking pairs), checked directly over seeded
// random preference matrices (parameterized sweep).
#include "core/stable_matching.h"

#include <gtest/gtest.h>

#include "core/policy_optimizer.h"
#include "test_helpers.h"

namespace hit::core {
namespace {

PreferenceMatrix random_prefs(const sched::Problem& problem, Rng& rng) {
  std::vector<TaskId> ids;
  for (const auto& t : problem.tasks) ids.push_back(t.id);
  PreferenceMatrix prefs(problem.cluster->size(), ids);
  for (const auto& t : problem.tasks) {
    for (const auto& s : problem.cluster->servers()) {
      prefs.add(s.id, t.id, rng.uniform(0.0, 100.0));
    }
  }
  return prefs;
}

TEST(StableMatcher, MatchesEveryTask) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 4, 2, 4.0);
  Rng rng(1);
  const auto prefs = random_prefs(fixture.problem, rng);
  const auto matching = StableMatcher().match(fixture.problem, prefs);
  EXPECT_EQ(matching.size(), fixture.problem.tasks.size());
}

TEST(StableMatcher, RespectsCapacity) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 4, 2, 4.0);
  Rng rng(2);
  const auto prefs = random_prefs(fixture.problem, rng);
  const auto matching = StableMatcher().match(fixture.problem, prefs);
  sched::UsageLedger ledger(fixture.problem);
  for (const auto& t : fixture.problem.tasks) {
    EXPECT_NO_THROW(ledger.place(matching.at(t.id), t.demand));
  }
}

TEST(StableMatcher, RespectsBaseUsage) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 4, 2, 4.0);
  // Server 0 completely busy: nothing may land there.
  fixture.problem.base_usage.assign(world->cluster.size(), cluster::Resource{});
  fixture.problem.base_usage[0] = cluster::Resource{2.0, 8.0};
  Rng rng(3);
  const auto prefs = random_prefs(fixture.problem, rng);
  const auto matching = StableMatcher().match(fixture.problem, prefs);
  for (const auto& [task, server] : matching) {
    EXPECT_NE(server, ServerId(0));
  }
}

TEST(StableMatcher, ThrowsWhenInfeasible) {
  auto world = test::tiny_tree_world();  // 8 slots
  test::ProblemFixture fixture(*world, 3, 2, 2, 4.0);  // 12 tasks
  Rng rng(4);
  const auto prefs = random_prefs(fixture.problem, rng);
  EXPECT_THROW((void)StableMatcher().match(fixture.problem, prefs),
               std::runtime_error);
}

TEST(StableMatcher, EveryoneGetsTopChoiceWhenNoConflict) {
  auto world = test::small_tree_world();  // 8 servers
  test::ProblemFixture fixture(*world, 1, 4, 4, 4.0);  // 8 tasks
  std::vector<TaskId> ids;
  for (const auto& t : fixture.problem.tasks) ids.push_back(t.id);
  PreferenceMatrix prefs(world->cluster.size(), ids);
  // Task i strongly prefers server i; grades elsewhere zero.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    prefs.add(ServerId(static_cast<ServerId::value_type>(i)), ids[i], 10.0);
  }
  const auto matching = StableMatcher().match(fixture.problem, prefs);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(matching.at(ids[i]), ServerId(static_cast<ServerId::value_type>(i)));
  }
}

TEST(StableMatcher, EvictsLowerGradedOnConflict) {
  auto world = test::tiny_tree_world();
  test::ProblemFixture fixture(*world, 1, 2, 1, 4.0);  // 3 tasks, 4 servers x2
  std::vector<TaskId> ids;
  for (const auto& t : fixture.problem.tasks) ids.push_back(t.id);
  ASSERT_EQ(ids.size(), 3u);
  PreferenceMatrix prefs(world->cluster.size(), ids);
  // All three want server 0 (2 slots); server 0 grades task 2 lowest, and
  // task 2's second choice is server 1.
  prefs.add(ServerId(0), ids[0], 30.0);
  prefs.add(ServerId(0), ids[1], 20.0);
  prefs.add(ServerId(0), ids[2], 10.0);
  prefs.add(ServerId(1), ids[2], 5.0);
  const auto matching = StableMatcher().match(fixture.problem, prefs);
  EXPECT_EQ(matching.at(ids[0]), ServerId(0));
  EXPECT_EQ(matching.at(ids[1]), ServerId(0));
  EXPECT_EQ(matching.at(ids[2]), ServerId(1));
}

// ---------------------------------------------------------------------------
// Property sweep: stability over random instances (§5.2.3 theorem).
// ---------------------------------------------------------------------------

class StabilitySweep : public ::testing::TestWithParam<int> {};

TEST_P(StabilitySweep, NoBlockingPairs) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 3, 2, 4.0);  // 10 tasks, 16 slots
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto prefs = random_prefs(fixture.problem, rng);
  const auto matching = StableMatcher().match(fixture.problem, prefs);
  EXPECT_TRUE(StableMatcher::is_stable(fixture.problem, prefs, matching))
      << "blocking pair under seed " << GetParam();
}

TEST_P(StabilitySweep, AlgorithmOnePreferencesAreStableToo) {
  // Same property, but with the real preference matrices Algorithm 1 emits.
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 3, 2, 8.0);
  const PolicyOptimizer optimizer(world->topology);
  const auto prefs = optimizer.build_preferences(fixture.problem);
  const auto matching = StableMatcher().match(fixture.problem, prefs);
  EXPECT_TRUE(StableMatcher::is_stable(fixture.problem, prefs, matching));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StabilitySweep, ::testing::Range(0, 25));

TEST(StableMatcher, IsStableDetectsViolation) {
  auto world = test::tiny_tree_world();
  test::ProblemFixture fixture(*world, 1, 1, 1, 4.0);  // 2 tasks
  std::vector<TaskId> ids;
  for (const auto& t : fixture.problem.tasks) ids.push_back(t.id);
  PreferenceMatrix prefs(world->cluster.size(), ids);
  prefs.add(ServerId(0), ids[0], 10.0);
  prefs.add(ServerId(0), ids[1], 10.0);
  // Hand-build a matching that ignores both tasks' clear preference for the
  // (empty) server 0.
  std::unordered_map<TaskId, ServerId> bad{{ids[0], ServerId(1)},
                                           {ids[1], ServerId(2)}};
  EXPECT_FALSE(StableMatcher::is_stable(fixture.problem, prefs, bad));
}

}  // namespace
}  // namespace hit::core
