#include "core/policy_optimizer.h"

#include <gtest/gtest.h>

#include "network/routing.h"
#include "test_helpers.h"

namespace hit::core {
namespace {

class PolicyOptimizerTest : public ::testing::Test {
 protected:
  // Depth-2 tree with 3 core replicas, 2 access positions x 2 hosts.
  topo::TreeConfig config_{2, 2, 3, 2, 16.0, 32.0};
  topo::Topology topo_ = topo::make_tree(config_);
  PolicyOptimizer optimizer_{topo_};
  net::LoadTracker load_{topo_};

  NodeId server(std::size_t i) { return topo_.servers()[i]; }
};

TEST_F(PolicyOptimizerTest, FindsShortestRouteWhenIdle) {
  const NodeId srcs[] = {server(0)};
  const NodeId dsts[] = {server(2)};
  const auto route = optimizer_.optimal_route(srcs, dsts, FlowId(0), 1.0, 1.0, load_);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->policy.len(), 3u);
  EXPECT_TRUE(route->policy.satisfied(topo_, server(0), server(2)));
  EXPECT_GT(route->cost, 0.0);
}

TEST_F(PolicyOptimizerTest, PrefersLocalWhenAllowed) {
  const NodeId both[] = {server(0), server(1)};
  const auto route = optimizer_.optimal_route(both, both, FlowId(0), 1.0, 1.0, load_);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->src, route->dst);
  EXPECT_EQ(route->cost, 0.0);
  EXPECT_EQ(route->policy.len(), 0u);

  const auto network = optimizer_.optimal_route(both, both, FlowId(0), 1.0, 1.0,
                                                load_, /*allow_local=*/false);
  ASSERT_TRUE(network.has_value());
  EXPECT_NE(network->src, network->dst);
  EXPECT_GE(network->policy.len(), 1u);
}

TEST_F(PolicyOptimizerTest, RoutesAroundSaturatedCore) {
  const net::Policy shortest = net::shortest_policy(topo_, server(0), server(2), FlowId(0));
  const NodeId hot_core = shortest.list[1];
  net::Policy core_only;
  core_only.list = {hot_core};
  core_only.type = {topo::Tier::Core};
  load_.assign(core_only, topo_.switch_capacity(hot_core));

  const NodeId srcs[] = {server(0)};
  const NodeId dsts[] = {server(2)};
  const auto route = optimizer_.optimal_route(srcs, dsts, FlowId(1), 1.0, 1.0, load_);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->policy.len(), 3u);  // same length via a twin core
  EXPECT_NE(route->policy.list[1], hot_core);
}

TEST_F(PolicyOptimizerTest, NulloptWhenEverythingSaturated) {
  for (NodeId w : topo_.switches()) {
    net::Policy p;
    p.list = {w};
    p.type = {topo_.tier(w)};
    load_.assign(p, topo_.switch_capacity(w));
  }
  const NodeId srcs[] = {server(0)};
  const NodeId dsts[] = {server(2)};
  EXPECT_FALSE(
      optimizer_.optimal_route(srcs, dsts, FlowId(0), 1.0, 1.0, load_).has_value());
  EXPECT_FALSE(optimizer_
                   .optimal_route(std::span<const NodeId>{}, dsts, FlowId(0), 1.0,
                                  1.0, load_)
                   .has_value());
}

TEST_F(PolicyOptimizerTest, CongestionSteersTowardIdleCore) {
  // Half-load the shortest route's core: with congestion-aware costs the
  // optimizer should pick an idle twin even though lengths tie.
  const net::Policy shortest = net::shortest_policy(topo_, server(0), server(2), FlowId(0));
  const NodeId hot_core = shortest.list[1];
  net::Policy core_only;
  core_only.list = {hot_core};
  core_only.type = {topo::Tier::Core};
  load_.assign(core_only, topo_.switch_capacity(hot_core) / 2.0);

  const NodeId srcs[] = {server(0)};
  const NodeId dsts[] = {server(2)};
  const auto route = optimizer_.optimal_route(srcs, dsts, FlowId(1), 1.0, 1.0, load_);
  ASSERT_TRUE(route.has_value());
  EXPECT_NE(route->policy.list[1], hot_core);
}

TEST_F(PolicyOptimizerTest, ImprovePolicyGainsOnCongestedSwitch) {
  net::Policy p = net::shortest_policy(topo_, server(0), server(2), FlowId(0));
  const NodeId core = p.list[1];
  net::Policy core_only;
  core_only.list = {core};
  core_only.type = {topo::Tier::Core};
  load_.assign(core_only, 30.0);

  const double gained =
      optimizer_.improve_policy(p, server(0), server(2), 1.0, 5.0, load_);
  EXPECT_GT(gained, 0.0);
  EXPECT_NE(p.list[1], core);
  EXPECT_TRUE(p.satisfied(topo_, server(0), server(2)));
  // Second pass: nothing left to gain.
  EXPECT_DOUBLE_EQ(
      optimizer_.improve_policy(p, server(0), server(2), 1.0, 5.0, load_), 0.0);
}

TEST_F(PolicyOptimizerTest, DeterministicTieBreak) {
  const NodeId srcs[] = {server(0)};
  const NodeId dsts[] = {server(2)};
  const auto r1 = optimizer_.optimal_route(srcs, dsts, FlowId(0), 1.0, 1.0, load_);
  const auto r2 = optimizer_.optimal_route(srcs, dsts, FlowId(0), 1.0, 1.0, load_);
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(r1->policy.list, r2->policy.list);
}

TEST_F(PolicyOptimizerTest, ZeroMetricStillRoutes) {
  const NodeId srcs[] = {server(0)};
  const NodeId dsts[] = {server(2)};
  const auto route = optimizer_.optimal_route(srcs, dsts, FlowId(0), 1.0, 0.0, load_);
  ASSERT_TRUE(route.has_value());
  EXPECT_TRUE(route->policy.satisfied(topo_, server(0), server(2)));
  EXPECT_DOUBLE_EQ(route->cost, 0.0);
}

// --- build_preferences -----------------------------------------------------

TEST(BuildPreferences, GradesFavorCoLocation) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 1, 1, 8.0);  // one map, one reduce
  const PolicyOptimizer optimizer(world->topology);
  const auto prefs = optimizer.build_preferences(fixture.problem);
  const TaskId map = fixture.problem.tasks[0].id;
  const TaskId reduce = fixture.problem.tasks[1].id;
  // Both tasks' top-ranked server must coincide (they co-locate).
  EXPECT_EQ(prefs.ranked_servers(map)[0], prefs.ranked_servers(reduce)[0]);
}

TEST(BuildPreferences, GradesDecayWithDistance) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 1, 1, 8.0);
  const PolicyOptimizer optimizer(world->topology);
  const auto prefs = optimizer.build_preferences(fixture.problem);
  const TaskId map = fixture.problem.tasks[0].id;
  const ServerId anchor = prefs.ranked_servers(map)[0];
  sched::HopMatrix hops(fixture.problem);
  for (const auto& s : world->cluster.servers()) {
    if (s.id == anchor) continue;
    EXPECT_LT(prefs.grade(s.id, map), prefs.grade(anchor, map));
    // Grade is monotone in hop distance from the anchor.
  }
}

TEST(BuildPreferences, FixedEndpointsAnchorGrading) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 1, 1, 8.0);
  // Fix the map on server 5; only the reduce remains open.
  const TaskId map = fixture.problem.tasks[0].id;
  const TaskId reduce = fixture.problem.tasks[1].id;
  fixture.problem.fixed[map] = ServerId(5);
  fixture.problem.base_usage.assign(world->cluster.size(), cluster::Resource{});
  fixture.problem.base_usage[5] = cluster::kDefaultContainerDemand;
  fixture.problem.tasks.erase(fixture.problem.tasks.begin());

  const PolicyOptimizer optimizer(world->topology);
  const auto prefs = optimizer.build_preferences(fixture.problem);
  EXPECT_EQ(prefs.ranked_servers(reduce)[0], ServerId(5));  // co-locate
}

TEST(BuildPreferences, InvalidProblemThrows) {
  const PolicyOptimizer optimizer(topo::make_case_study_tree());
  sched::Problem empty;
  EXPECT_THROW((void)optimizer.build_preferences(empty), std::invalid_argument);
}

}  // namespace
}  // namespace hit::core
