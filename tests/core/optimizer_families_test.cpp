// PolicyOptimizer behaviour across all four network families: congestion
// avoidance, feasibility filtering and Eq. (5) utility identities must hold
// on every substrate, not just the tree.
#include <gtest/gtest.h>

#include <functional>

#include "core/policy_optimizer.h"
#include "network/routing.h"
#include "topology/builders.h"
#include "util/rng.h"

namespace hit::core {
namespace {

struct FamilyCase {
  std::string name;
  std::function<topo::Topology()> build;
};

class OptimizerFamilies : public ::testing::TestWithParam<FamilyCase> {
 protected:
  static std::pair<NodeId, NodeId> far_pair(const topo::Topology& t) {
    return {t.servers().front(), t.servers().back()};
  }
};

TEST_P(OptimizerFamilies, OptimalRouteIsShortestWhenIdle) {
  const topo::Topology t = GetParam().build();
  const auto [a, b] = far_pair(t);
  net::LoadTracker load(t);
  const PolicyOptimizer optimizer(t);
  const NodeId srcs[] = {a};
  const NodeId dsts[] = {b};
  const auto route = optimizer.optimal_route(srcs, dsts, FlowId(0), 1.0, 1.0, load);
  ASSERT_TRUE(route.has_value());
  const net::Policy shortest = net::shortest_policy(t, a, b, FlowId(0));
  EXPECT_EQ(route->policy.len(), shortest.len());
  EXPECT_TRUE(route->policy.satisfied(t, a, b));
}

TEST_P(OptimizerFamilies, RoutesAroundSaturation) {
  const topo::Topology t = GetParam().build();
  const auto [a, b] = far_pair(t);
  net::LoadTracker load(t);
  const PolicyOptimizer optimizer(t);

  // Saturate every switch of the shortest route except the end access
  // switches (which may be unavoidable).
  const net::Policy shortest = net::shortest_policy(t, a, b, FlowId(0));
  for (std::size_t i = 1; i + 1 < shortest.list.size(); ++i) {
    net::Policy one;
    one.list = {shortest.list[i]};
    one.type = {t.tier(shortest.list[i])};
    load.assign(one, t.switch_capacity(shortest.list[i]));
  }

  const NodeId srcs[] = {a};
  const NodeId dsts[] = {b};
  const auto route = optimizer.optimal_route(srcs, dsts, FlowId(1), 1.0, 1.0, load);
  if (!route) GTEST_SKIP() << "family has no alternate route for this pair";
  for (std::size_t i = 1; i + 1 < shortest.list.size(); ++i) {
    EXPECT_EQ(std::count(route->policy.list.begin(), route->policy.list.end(),
                         shortest.list[i]),
              0)
        << "route still uses saturated " << t.info(shortest.list[i]).name;
  }
  EXPECT_TRUE(route->policy.satisfied(t, a, b));
}

TEST_P(OptimizerFamilies, SubstitutionUtilityMatchesCostDelta) {
  // Eq. (5) identity under random loads: utility of swapping position i
  // equals the policy-cost difference, on whatever family.
  const topo::Topology t = GetParam().build();
  const auto [a, b] = far_pair(t);
  net::LoadTracker load(t);
  Rng rng(7);
  // Random background load on every switch (within capacity).
  for (NodeId w : t.switches()) {
    net::Policy one;
    one.list = {w};
    one.type = {t.tier(w)};
    load.assign(one, rng.uniform(0.0, t.switch_capacity(w) * 0.5));
  }

  CostConfig config;
  config.congestion_weight = 0.9;
  const CostModel cost(t, config, &load);
  net::Policy p = net::shortest_policy(t, a, b, FlowId(0));

  bool found = false;
  for (std::size_t i = 0; i < p.list.size() && !found; ++i) {
    for (NodeId w_hat : load.candidates(a, b, p, i, 0.0)) {
      const double utility = cost.substitution_utility(p, a, b, i, w_hat, 3.0);
      net::Policy q = p;
      q.list[i] = w_hat;
      const double delta = cost.policy_cost(p, 3.0) - cost.policy_cost(q, 3.0);
      EXPECT_NEAR(utility, delta, 1e-9);
      found = true;
      break;
    }
  }
  if (!found) GTEST_SKIP() << "no substitution candidates on this pair";
}

INSTANTIATE_TEST_SUITE_P(
    Families, OptimizerFamilies,
    ::testing::Values(
        FamilyCase{"Tree",
                   [] { return topo::make_tree(topo::TreeConfig{3, 2, 2, 2}); }},
        FamilyCase{"FatTree", [] { return topo::make_fat_tree(topo::FatTreeConfig{4}); }},
        FamilyCase{"Vl2",
                   [] { return topo::make_vl2(topo::Vl2Config{3, 4, 6, 2}); }},
        FamilyCase{"BCube", [] { return topo::make_bcube(topo::BCubeConfig{4, 1}); }}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) { return info.param.name; });

}  // namespace
}  // namespace hit::core
