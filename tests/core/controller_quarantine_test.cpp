// Gray-failure quarantine lifecycle on the NetworkController: soft
// evacuation of crossing flows, the probe streak, and reinstatement.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "network/routing.h"
#include "topology/builders.h"

namespace hit::core {
namespace {

bool crosses(const net::Policy& policy, NodeId sw) {
  for (NodeId w : policy.list) {
    if (w == sw) return true;
  }
  return false;
}

class ControllerQuarantineTest : public ::testing::Test {
 protected:
  // Depth-2 tree, 4 access positions x 1 host, 2 core replicas: every
  // cross-rack flow has exactly two equal-hop routes, one per core, so a
  // quarantined core always has a clean same-length detour.
  topo::TreeConfig tree_{2, 4, 2, 1, 16.0, 32.0};
  topo::Topology topo_ = topo::make_tree(tree_);
  NetworkController controller_{topo_, {}};

  net::Flow flow(unsigned id, double rate) {
    net::Flow f;
    f.id = FlowId(id);
    f.size_gb = rate;
    f.rate = rate;
    return f;
  }

  NodeId server(std::size_t i) { return topo_.servers()[i]; }
};

TEST_F(ControllerQuarantineTest, SoftEvacuatesCrossingFlows) {
  const net::Policy p =
      net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  const NodeId core = p.list[1];
  controller_.install(flow(1, 10.0), p, server(0), server(2));

  EXPECT_EQ(controller_.quarantine(core), 1u);
  EXPECT_TRUE(controller_.quarantined(core));
  // The flow moved to the twin core and stays fully installed (no park).
  EXPECT_FALSE(crosses(controller_.policy_of(FlowId(1)), core));
  EXPECT_EQ(controller_.parked_count(), 0u);
  EXPECT_DOUBLE_EQ(controller_.load().load(core), 0.0);
  EXPECT_NO_THROW(controller_.audit());
}

TEST_F(ControllerQuarantineTest, QuarantineIsIdempotent) {
  const NodeId core = topo_.switches()[0];
  EXPECT_EQ(controller_.quarantine(core), 0u);  // nothing installed yet
  EXPECT_EQ(controller_.quarantine(core), 0u);  // second call: no-op
  EXPECT_EQ(controller_.quarantined_switches().size(), 1u);
}

TEST_F(ControllerQuarantineTest, RejectsNonSwitch) {
  EXPECT_THROW(controller_.quarantine(server(0)), NotASwitch);
}

TEST_F(ControllerQuarantineTest, OnlyRouteStaysPutUnderQuarantine) {
  // Case-study tree has a single route per pair: the suspect stays in use
  // because every alternative is worse — soft avoidance, not exclusion.
  const topo::Topology single = topo::make_case_study_tree();
  NetworkController controller(single, {});
  const NodeId a = single.servers()[0];
  const NodeId b = single.servers()[3];
  const net::Policy p = net::shortest_policy(single, a, b, FlowId(1));
  const NodeId root = p.list[1];
  controller.install(flow(1, 5.0), p, a, b);

  EXPECT_EQ(controller.quarantine(root), 0u);
  EXPECT_TRUE(crosses(controller.policy_of(FlowId(1)), root));
  EXPECT_EQ(controller.parked_count(), 0u);
  EXPECT_NO_THROW(controller.audit());
}

TEST_F(ControllerQuarantineTest, ProbeStreakGatesReinstatement) {
  const NodeId core = topo_.switches()[0];
  controller_.quarantine(core);

  // Default config wants 2 consecutive healthy probes.
  EXPECT_FALSE(controller_.probe(core, true));
  EXPECT_FALSE(controller_.probe(core, false));  // streak broken
  EXPECT_FALSE(controller_.probe(core, true));
  EXPECT_TRUE(controller_.probe(core, true));    // 2nd in a row: reinstated
  EXPECT_FALSE(controller_.quarantined(core));
  // Probing a non-quarantined switch is a no-op.
  EXPECT_FALSE(controller_.probe(core, true));
}

TEST_F(ControllerQuarantineTest, ReinstateLiftsPenaltyForNewRoutes) {
  const net::Policy p =
      net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  const NodeId core = p.list[1];
  controller_.install(flow(1, 10.0), p, server(0), server(2));
  controller_.quarantine(core);
  ASSERT_FALSE(crosses(controller_.policy_of(FlowId(1)), core));

  controller_.reinstate(core);
  EXPECT_FALSE(controller_.quarantined(core));
  controller_.reinstate(core);  // idempotent
  EXPECT_TRUE(controller_.quarantined_switches().empty());

  // With the penalty lifted and the twin core loaded, a fresh quarantine of
  // the twin moves the flow straight back through the reinstated core.
  const NodeId twin = controller_.policy_of(FlowId(1)).list[1];
  EXPECT_EQ(controller_.quarantine(twin), 1u);
  EXPECT_TRUE(crosses(controller_.policy_of(FlowId(1)), core));
  EXPECT_NO_THROW(controller_.audit());
}

TEST_F(ControllerQuarantineTest, QuarantinedSwitchesSorted) {
  const NodeId a = topo_.switches()[2];
  const NodeId b = topo_.switches()[1];
  controller_.quarantine(a);
  controller_.quarantine(b);
  const auto listed = controller_.quarantined_switches();
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_LT(listed[0], listed[1]);
}

}  // namespace
}  // namespace hit::core
