// Controller under sustained overload: shed_pressure parks low-priority
// flows first (ties: heaviest, then lowest id), readmit_parked restores them
// in priority order, and the rebalance circuit breaker opens after
// consecutive sweeps that leave a switch hot, short-circuits while open, and
// closes again once a probe sweep finds the network cool.
#include "core/controller.h"

#include <gtest/gtest.h>

#include "network/routing.h"
#include "topology/builders.h"

namespace hit::core {
namespace {

class ControllerOverloadTest : public ::testing::Test {
 protected:
  // Depth-2 tree, 4 access positions x 1 host, 2 cores (access capacity 32,
  // core 64).  One server per access switch: flows out of server 0 all share
  // its access leg, which is what we overload.
  topo::TreeConfig tree_{2, 4, 2, 1, 16.0, 32.0};
  topo::Topology topo_ = topo::make_tree(tree_);
  NetworkController controller_{topo_, make_config()};

  static ControllerConfig make_config() {
    ControllerConfig c;
    c.hot_threshold = 0.5;
    return c;
  }

  net::Flow flow(unsigned id, double rate, std::uint8_t priority = 1) {
    net::Flow f;
    f.id = FlowId(id);
    f.size_gb = rate;
    f.rate = rate;
    f.priority = priority;
    return f;
  }

  NodeId server(std::size_t i) { return topo_.servers()[i]; }

  void install(const net::Flow& f, std::size_t src, std::size_t dst) {
    const net::Policy p =
        net::shortest_policy(topo_, server(src), server(dst), f.id);
    controller_.install(f, p, server(src), server(dst));
  }
};

TEST_F(ControllerOverloadTest, ShedsLowestPriorityFirst) {
  install(flow(1, 10.0, /*priority=*/2), 0, 1);  // high: must survive
  install(flow(2, 10.0, /*priority=*/0), 0, 2);  // low: first victim
  install(flow(3, 10.0, /*priority=*/1), 0, 3);  // normal: second victim
  // Access switch of server 0 carries 30/32 > 0.5: hot.
  ASSERT_FALSE(controller_.hot_switches().empty());

  EXPECT_EQ(controller_.shed_pressure(), 2u);
  EXPECT_TRUE(controller_.hot_switches().empty());
  EXPECT_EQ(controller_.parked(), (std::vector<FlowId>{FlowId(2), FlowId(3)}));
  EXPECT_TRUE(controller_.installed(FlowId(1)));
  EXPECT_NO_THROW(controller_.audit());
  // Idempotent once cool.
  EXPECT_EQ(controller_.shed_pressure(), 0u);
}

TEST_F(ControllerOverloadTest, TiesBrokenByHeaviestCharge) {
  install(flow(1, 20.0), 0, 1);  // same priority, heavier: parked first
  install(flow(2, 12.0), 0, 2);
  EXPECT_EQ(controller_.shed_pressure(), 1u);
  EXPECT_EQ(controller_.parked(), std::vector<FlowId>{FlowId(1)});
  EXPECT_NO_THROW(controller_.audit());
}

TEST_F(ControllerOverloadTest, NoopWhenCool) {
  install(flow(1, 1.0), 0, 1);
  EXPECT_EQ(controller_.shed_pressure(), 0u);
  EXPECT_EQ(controller_.parked_count(), 0u);
}

TEST_F(ControllerOverloadTest, DrainingPressureIsNotShed) {
  // Draining absorbs the switch's headroom (it reads as loaded), but that
  // pressure belongs to rebalance/drain machinery, not overload shedding.
  install(flow(1, 1.0), 0, 1);
  controller_.drain(controller_.policy_of(FlowId(1)).list.front());
  EXPECT_EQ(controller_.shed_pressure(), 0u);
  EXPECT_TRUE(controller_.installed(FlowId(1)));
}

TEST_F(ControllerOverloadTest, ReadmitRestoresParkedFlows) {
  install(flow(1, 10.0, /*priority=*/2), 0, 1);
  install(flow(2, 10.0, /*priority=*/0), 0, 2);
  install(flow(3, 10.0, /*priority=*/1), 0, 3);
  ASSERT_EQ(controller_.shed_pressure(), 2u);

  controller_.remove(FlowId(1));  // free the access leg
  EXPECT_EQ(controller_.readmit_parked(), 2u);
  EXPECT_EQ(controller_.parked_count(), 0u);
  // Both re-admitted at their full rate on the (forced) access legs.
  const NodeId access = controller_.policy_of(FlowId(2)).list.front();
  EXPECT_DOUBLE_EQ(controller_.load().load(access), 20.0);
  EXPECT_NO_THROW(controller_.audit());
  EXPECT_EQ(controller_.readmit_parked(), 0u);  // nothing left to restore
}

TEST_F(ControllerOverloadTest, BreakerDisabledByDefault) {
  EXPECT_EQ(controller_.breaker().state(), BreakerState::Closed);
  EXPECT_EQ(controller_.breaker().stats().trips, 0u);
}

TEST(ControllerBreakerTest, RebalanceBreakerOpensShortCircuitsAndRecloses) {
  // Single-path topology: rebalance can never cool a hot switch, so every
  // sweep is a breaker failure.
  const topo::Topology topo = topo::make_case_study_tree();
  ControllerConfig config;
  config.hot_threshold = 0.1;
  config.breaker.enabled = true;
  config.breaker.failure_threshold = 1;
  config.breaker.open_span = 2;
  config.breaker.close_successes = 1;
  NetworkController controller(topo, config);

  const NodeId a = topo.servers()[0];
  const NodeId b = topo.servers()[3];
  net::Flow f;
  f.id = FlowId(1);
  f.size_gb = 30.0;
  f.rate = 30.0;
  controller.install(f, net::shortest_policy(topo, a, b, f.id), a, b);

  // Sweep 1 runs, cannot relieve the pressure, trips the breaker.
  EXPECT_EQ(controller.rebalance(), 0u);
  EXPECT_EQ(controller.breaker().state(), BreakerState::Open);
  EXPECT_EQ(controller.breaker().stats().trips, 1u);

  // While open: immediate short-circuits for open_span calls.
  (void)controller.rebalance();
  (void)controller.rebalance();
  EXPECT_EQ(controller.breaker().stats().short_circuits, 2u);

  // Next call is the half-open probe; still hot, so it re-opens.
  (void)controller.rebalance();
  EXPECT_EQ(controller.breaker().state(), BreakerState::Open);
  EXPECT_EQ(controller.breaker().stats().trips, 2u);

  // Remove the load; after the open span the probe sweep finds the network
  // cool and the breaker closes again.
  controller.remove(FlowId(1));
  (void)controller.rebalance();
  (void)controller.rebalance();
  (void)controller.rebalance();  // probe: success
  EXPECT_EQ(controller.breaker().state(), BreakerState::Closed);
  EXPECT_EQ(controller.breaker().stats().closes, 1u);
}

TEST(ControllerBreakerTest, HalfOpenReprobeNeverLosesParkedFlows) {
  // The parked population must survive a breaker that reopens while
  // readmission is being retried: flows stay installed (parked + active
  // always partitions installed_count) and are restored intact once the
  // pressure clears.  Case-study tree: access capacity 64, single paths, so
  // rebalance can never cool a hot switch and every sweep trips the breaker.
  const topo::Topology topo = topo::make_case_study_tree();
  ControllerConfig config;
  config.hot_threshold = 0.1;
  config.breaker.enabled = true;
  config.breaker.failure_threshold = 1;
  config.breaker.open_span = 2;
  config.breaker.close_successes = 1;
  NetworkController controller(topo, config);

  const auto flow = [](unsigned id, double rate, std::uint8_t priority) {
    net::Flow f;
    f.id = FlowId(id);
    f.size_gb = rate;
    f.rate = rate;
    f.priority = priority;
    return f;
  };
  const auto install = [&](const net::Flow& f, std::size_t src,
                           std::size_t dst) {
    const NodeId s = topo.servers()[src];
    const NodeId d = topo.servers()[dst];
    controller.install(f, net::shortest_policy(topo, s, d, f.id), s, d);
  };

  install(flow(1, 10.0, /*priority=*/0), 0, 1);
  install(flow(2, 10.0, /*priority=*/0), 0, 1);
  install(flow(3, 5.0, /*priority=*/2), 0, 3);
  ASSERT_EQ(controller.shed_pressure(), 2u);  // both low flows parked
  ASSERT_EQ(controller.parked(), (std::vector<FlowId>{FlowId(1), FlowId(2)}));

  // Saturate the shared access leg (63 of 64): even the backed-off rates of
  // the parked flows (10 -> 5 -> 2.5) no longer fit, and the single-path
  // rebalance failure opens the breaker.
  install(flow(4, 58.0, /*priority=*/2), 0, 1);
  EXPECT_EQ(controller.rebalance(), 0u);
  ASSERT_EQ(controller.breaker().state(), BreakerState::Open);

  // Readmission attempts while the breaker is open must fail cleanly.
  EXPECT_EQ(controller.readmit_parked(), 0u);
  EXPECT_EQ(controller.parked_count(), 2u);
  EXPECT_EQ(controller.installed_count(), 4u);
  EXPECT_NO_THROW(controller.audit());

  // Ride out the open span, then the half-open probe reopens (still hot) —
  // interleaved with another readmission attempt.  Nothing may be lost.
  (void)controller.rebalance();
  (void)controller.rebalance();  // short-circuits
  (void)controller.rebalance();  // half-open probe: still hot, reopens
  EXPECT_EQ(controller.breaker().state(), BreakerState::Open);
  EXPECT_GE(controller.breaker().stats().trips, 2u);
  EXPECT_EQ(controller.readmit_parked(), 0u);
  EXPECT_EQ(controller.parked(), (std::vector<FlowId>{FlowId(1), FlowId(2)}));
  EXPECT_EQ(controller.installed_count(), 4u);
  EXPECT_NO_THROW(controller.audit());

  // Pressure clears: both parked flows come back at full rate, none lost.
  controller.remove(FlowId(4));
  EXPECT_EQ(controller.readmit_parked(), 2u);
  EXPECT_EQ(controller.parked_count(), 0u);
  EXPECT_EQ(controller.installed_count(), 3u);
  EXPECT_TRUE(controller.installed(FlowId(1)));
  EXPECT_TRUE(controller.installed(FlowId(2)));
  EXPECT_NO_THROW(controller.audit());
}

class TenantShedTest : public ::testing::Test {
 protected:
  topo::TreeConfig tree_{2, 4, 2, 1, 16.0, 32.0};  // access capacity 32
  topo::Topology topo_ = topo::make_tree(tree_);

  static ControllerConfig tenant_config(double floor) {
    ControllerConfig c;
    c.hot_threshold = 0.5;  // access hot above 16
    c.tenant_aware_shed = true;
    c.tenant_floor = floor;
    return c;
  }

  net::Flow flow(unsigned id, double rate, std::uint8_t priority,
                 std::uint32_t tenant) {
    net::Flow f;
    f.id = FlowId(id);
    f.size_gb = rate;
    f.rate = rate;
    f.priority = priority;
    f.tenant = tenant;
    return f;
  }

  void install(NetworkController& c, const net::Flow& f, std::size_t src,
               std::size_t dst) {
    const net::Policy p = net::shortest_policy(topo_, topo_.servers()[src],
                                               topo_.servers()[dst], f.id);
    c.install(f, p, topo_.servers()[src], topo_.servers()[dst]);
  }
};

TEST_F(TenantShedTest, OverQuotaTenantIsCutBeforeLowerPriorityFlows) {
  // Tenant 1 holds 18 of 22 units (overuse 36x vs tenant 0's 8x under
  // uniform entitlements): the victim comes from tenant 1 even though
  // tenant 0's flow has strictly lower priority.
  NetworkController controller(topo_, tenant_config(/*floor=*/0.0));
  install(controller, flow(1, 4.0, /*priority=*/0, /*tenant=*/0), 0, 1);
  install(controller, flow(2, 10.0, /*priority=*/1, /*tenant=*/1), 0, 2);
  install(controller, flow(3, 8.0, /*priority=*/1, /*tenant=*/1), 0, 3);
  EXPECT_EQ(controller.shed_pressure(), 1u);
  EXPECT_EQ(controller.parked(), std::vector<FlowId>{FlowId(2)});
  EXPECT_TRUE(controller.installed(FlowId(1)));
  EXPECT_NO_THROW(controller.audit());
}

TEST_F(TenantShedTest, FloorProtectsSmallTenantsFromTheLegacyOrder) {
  // Tenant 1 sits below its protected floor (2 <= 0.3 x 0.5 x 32), so the
  // hog tenant is cut even though its flow outranks the small tenant's.
  NetworkController controller(topo_, tenant_config(/*floor=*/0.3));
  install(controller, flow(1, 30.0, /*priority=*/2, /*tenant=*/0), 0, 1);
  install(controller, flow(2, 2.0, /*priority=*/0, /*tenant=*/1), 0, 2);
  EXPECT_EQ(controller.shed_pressure(), 1u);
  EXPECT_EQ(controller.parked(), std::vector<FlowId>{FlowId(1)});
  EXPECT_TRUE(controller.installed(FlowId(2)));
  EXPECT_NO_THROW(controller.audit());
}

TEST_F(TenantShedTest, AllTenantsAtFloorFallsBackToLegacyVictimOrder) {
  // With floor = 1.0 every tenant is "protected" (rate <= entitlement x
  // total always holds at two equal tenants), so the legacy order applies:
  // the lowest-priority flow is parked regardless of tenant.
  NetworkController controller(topo_, tenant_config(/*floor=*/1.0));
  install(controller, flow(1, 10.0, /*priority=*/0, /*tenant=*/0), 0, 1);
  install(controller, flow(2, 10.0, /*priority=*/1, /*tenant=*/1), 0, 2);
  EXPECT_EQ(controller.shed_pressure(), 1u);
  EXPECT_EQ(controller.parked(), std::vector<FlowId>{FlowId(1)});
  EXPECT_NO_THROW(controller.audit());
}

TEST_F(TenantShedTest, WeightedEntitlementsShiftTheVictimTenant)  {
  // Same usage, but tenant 0 carries weight 3: its entitlement triples, its
  // overuse shrinks below tenant 1's, and the victim flips to tenant 1.
  ControllerConfig config = tenant_config(/*floor=*/0.0);
  config.tenant_weights = {3.0, 1.0};
  NetworkController controller(topo_, config);
  install(controller, flow(1, 12.0, /*priority=*/1, /*tenant=*/0), 0, 1);
  install(controller, flow(2, 10.0, /*priority=*/1, /*tenant=*/1), 0, 2);
  EXPECT_EQ(controller.shed_pressure(), 1u);
  // t0: 12 / 0.75 = 16; t1: 10 / 0.25 = 40 -> tenant 1 is the victim.
  EXPECT_EQ(controller.parked(), std::vector<FlowId>{FlowId(2)});
  EXPECT_NO_THROW(controller.audit());
}

}  // namespace
}  // namespace hit::core
