// Classic Gale-Shapley theory on the two proposer variants: both sides'
// algorithms produce stable matchings, and the proposing side gets its
// optimal stable outcome (containers weakly prefer the container-proposing
// result; servers the server-proposing one).
#include <gtest/gtest.h>

#include "core/stable_matching.h"
#include "test_helpers.h"

namespace hit::core {
namespace {

PreferenceMatrix random_prefs(const sched::Problem& problem, Rng& rng) {
  std::vector<TaskId> ids;
  for (const auto& t : problem.tasks) ids.push_back(t.id);
  PreferenceMatrix prefs(problem.cluster->size(), ids);
  for (const auto& t : problem.tasks) {
    for (const auto& s : problem.cluster->servers()) {
      prefs.add(s.id, t.id, rng.uniform(0.0, 100.0));
    }
  }
  return prefs;
}

class ProposerSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProposerSweep, BothVariantsProduceStableMatchings) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 3, 2, 4.0);
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto prefs = random_prefs(fixture.problem, rng);
  const StableMatcher matcher;

  const auto by_containers =
      matcher.match(fixture.problem, prefs, StableMatcher::Proposer::Containers);
  const auto by_servers =
      matcher.match(fixture.problem, prefs, StableMatcher::Proposer::Servers);

  EXPECT_EQ(by_containers.size(), fixture.problem.tasks.size());
  EXPECT_EQ(by_servers.size(), fixture.problem.tasks.size());
  EXPECT_TRUE(StableMatcher::is_stable(fixture.problem, prefs, by_containers));
  EXPECT_TRUE(StableMatcher::is_stable(fixture.problem, prefs, by_servers));
}

TEST_P(ProposerSweep, ContainerProposingIsContainerOptimal) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 3, 2, 4.0);
  Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  const auto prefs = random_prefs(fixture.problem, rng);
  const StableMatcher matcher;

  const auto by_containers =
      matcher.match(fixture.problem, prefs, StableMatcher::Proposer::Containers);
  const auto by_servers =
      matcher.match(fixture.problem, prefs, StableMatcher::Proposer::Servers);

  // Every container weakly prefers its container-proposing match.
  for (const auto& t : fixture.problem.tasks) {
    const double own = prefs.grade(by_containers.at(t.id), t.id);
    const double dual = prefs.grade(by_servers.at(t.id), t.id);
    EXPECT_GE(own, dual - 1e-12) << "task " << t.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProposerSweep, ::testing::Range(0, 15));

TEST(ProposerVariants, ServersProposingRespectsCapacity) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 4, 2, 4.0);
  Rng rng(7);
  const auto prefs = random_prefs(fixture.problem, rng);
  const auto matching = StableMatcher().match(fixture.problem, prefs,
                                              StableMatcher::Proposer::Servers);
  sched::UsageLedger ledger(fixture.problem);
  for (const auto& t : fixture.problem.tasks) {
    EXPECT_NO_THROW(ledger.place(matching.at(t.id), t.demand));
  }
}

}  // namespace
}  // namespace hit::core
