// Workflow-unit overload control: when flows carry a workflow tag, the
// coflow-aware shed parks the whole workflow (across its stage jobs) and
// readmit_parked restores a workflow's parked flows as one unit — downstream
// stages are gated on the victim stage either way.
#include "core/controller.h"

#include <gtest/gtest.h>

#include "network/routing.h"
#include "topology/builders.h"

namespace hit::core {
namespace {

class ControllerWorkflowTest : public ::testing::Test {
 protected:
  // Depth-2 tree, 4 access positions x 1 host, 2 cores (access capacity 32):
  // flows out of server 0 all share its access switch.
  topo::TreeConfig tree_{2, 4, 2, 1, 16.0, 32.0};
  topo::Topology topo_ = topo::make_tree(tree_);

  static net::Flow flow(unsigned id, unsigned job, unsigned workflow,
                        double rate, std::uint8_t priority = 1) {
    net::Flow f;
    f.id = FlowId(id);
    f.job = JobId(job);
    f.workflow = workflow;
    f.size_gb = rate;
    f.rate = rate;
    f.priority = priority;
    return f;
  }

  void install(NetworkController& controller, const net::Flow& f,
               std::size_t src, std::size_t dst) {
    const NodeId a = topo_.servers()[src];
    const NodeId b = topo_.servers()[dst];
    controller.install(f, net::shortest_policy(topo_, a, b, f.id), a, b);
  }
};

TEST_F(ControllerWorkflowTest, ShedParksEveryStageJobOfTheWorkflow) {
  ControllerConfig config;
  config.hot_threshold = 0.5;
  config.coflow_aware = true;
  NetworkController controller(topo_, config);

  // Stages of workflow 1 run under distinct JobIds — job grouping alone
  // would leave flow 3 behind.
  install(controller, flow(1, /*job=*/1, /*workflow=*/1, 6.0), 0, 1);
  install(controller, flow(2, /*job=*/2, /*workflow=*/0, 6.0, 2), 0, 2);
  install(controller, flow(3, /*job=*/3, /*workflow=*/1, 6.0), 0, 3);
  // Access switch of server 0 carries 18/32 > 0.5: hot.  The victim is
  // flow 1; the park unit is its whole workflow, not just job 1.
  EXPECT_EQ(controller.shed_pressure(), 2u);
  EXPECT_EQ(controller.parked(), (std::vector<FlowId>{FlowId(1), FlowId(3)}));
  EXPECT_TRUE(controller.installed(FlowId(2)));
  EXPECT_NO_THROW(controller.audit());
}

TEST_F(ControllerWorkflowTest, UntaggedVictimStillParksPerJob) {
  ControllerConfig config;
  config.hot_threshold = 0.5;
  config.coflow_aware = true;
  NetworkController controller(topo_, config);

  // The victim (flow 1) is standalone; the workflow-tagged flows of job 2
  // and job 3 must not ride along.
  install(controller, flow(1, /*job=*/1, /*workflow=*/0, 12.0), 0, 1);
  install(controller, flow(2, /*job=*/2, /*workflow=*/4, 3.0, 2), 0, 2);
  install(controller, flow(3, /*job=*/3, /*workflow=*/4, 3.0, 2), 0, 3);
  EXPECT_EQ(controller.shed_pressure(), 1u);
  EXPECT_EQ(controller.parked(), std::vector<FlowId>{FlowId(1)});
  EXPECT_TRUE(controller.installed(FlowId(2)));
  EXPECT_TRUE(controller.installed(FlowId(3)));
  EXPECT_NO_THROW(controller.audit());
}

TEST_F(ControllerWorkflowTest, ReadmitRestoresTheWorkflowAsOneUnit) {
  // Parked flows of workflow 7 span two stage jobs; they must come back
  // contiguously ahead of the standalone job even though the standalone
  // flow id falls between them.
  ControllerConfig config;
  config.hot_threshold = 0.5;
  config.coflow_aware = true;
  config.max_reroute_attempts = 1;  // no backoff: readmit is all-or-nothing
  NetworkController controller(topo_, config);

  install(controller, flow(1, /*job=*/1, /*workflow=*/7, 6.0), 0, 1);
  install(controller, flow(2, /*job=*/2, /*workflow=*/0, 6.0), 0, 2);
  install(controller, flow(3, /*job=*/3, /*workflow=*/7, 6.0), 0, 3);
  install(controller, flow(4, /*job=*/4, /*workflow=*/0, 14.0, 2), 0, 2);
  // 32/32 hot: flows 1 and 3 park as workflow 7, flow 2 as job 2.
  ASSERT_EQ(controller.shed_pressure(), 3u);
  ASSERT_EQ(controller.parked(),
            (std::vector<FlowId>{FlowId(1), FlowId(2), FlowId(3)}));

  // 13 units of headroom: room for two of the three parked flows.  The
  // workflow unit ranks first (earliest waiting flow id 1), so BOTH its
  // stage flows readmit and the standalone job waits.
  install(controller, flow(5, /*job=*/5, /*workflow=*/0, 5.0, 2), 0, 3);
  EXPECT_EQ(controller.readmit_parked(), 2u);
  EXPECT_EQ(controller.parked(), std::vector<FlowId>{FlowId(2)});
  EXPECT_TRUE(controller.installed(FlowId(1)));
  EXPECT_TRUE(controller.installed(FlowId(3)));
  EXPECT_NO_THROW(controller.audit());
}

TEST_F(ControllerWorkflowTest, WorkflowAndJobUnitSpacesNeverCollide) {
  // A workflow tagged 5 and a standalone job whose JobId is also 5 are
  // distinct readmit units — the composite key keeps the id spaces apart.
  ControllerConfig config;
  config.hot_threshold = 0.5;
  config.coflow_aware = true;
  config.max_reroute_attempts = 1;
  NetworkController controller(topo_, config);

  install(controller, flow(1, /*job=*/9, /*workflow=*/5, 9.0), 0, 1);
  install(controller, flow(2, /*job=*/5, /*workflow=*/0, 9.0), 0, 2);
  install(controller, flow(3, /*job=*/4, /*workflow=*/0, 14.0, 2), 0, 2);
  // 32/32 hot: flows 1 and 2 park — as two separate one-flow units.
  ASSERT_EQ(controller.shed_pressure(), 2u);
  ASSERT_EQ(controller.parked(),
            (std::vector<FlowId>{FlowId(1), FlowId(2)}));
  // Headroom 9 readmits exactly the first-ranked unit (flow 1); were the
  // units merged, readmit would be all-or-nothing over both flows.
  install(controller, flow(4, /*job=*/6, /*workflow=*/0, 9.0, 2), 0, 3);
  EXPECT_EQ(controller.readmit_parked(), 1u);
  EXPECT_EQ(controller.parked(), std::vector<FlowId>{FlowId(2)});
  EXPECT_NO_THROW(controller.audit());
}

}  // namespace
}  // namespace hit::core
