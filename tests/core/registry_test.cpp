#include "core/registry.h"

#include <gtest/gtest.h>

#include "sched/capacity_scheduler.h"
#include "sched/random_scheduler.h"
#include "test_helpers.h"

namespace hit::core {
namespace {

TEST(Registry, BuiltinsPresent) {
  auto& registry = SchedulerRegistry::instance();
  for (const char* name :
       {"capacity", "capacity-ecmp", "fair", "pna", "delay", "random", "hit",
        "hit-greedy", "hit-no-policy-opt", "hit-ls"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_NE(registry.create(name), nullptr) << name;
  }
}

TEST(Registry, NamesSorted) {
  const auto names = SchedulerRegistry::instance().names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_GE(names.size(), 10u);
}

TEST(Registry, UnknownNameListsKnown) {
  try {
    (void)SchedulerRegistry::instance().create("bogus");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("hit"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(Registry, CreatedSchedulersWork) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 3, 2, 6.0);
  auto scheduler = SchedulerRegistry::instance().create("hit");
  Rng rng(1);
  const sched::Assignment a = scheduler->schedule(fixture.problem, rng);
  EXPECT_NO_THROW(sched::validate_assignment(fixture.problem, a));
}

TEST(Registry, CustomRegistrationAndReplacement) {
  SchedulerRegistry registry;  // fresh, empty
  EXPECT_FALSE(registry.contains("mine"));
  int builds = 0;
  registry.register_factory("mine", [&builds] {
    ++builds;
    return std::make_unique<sched::RandomScheduler>();
  });
  EXPECT_TRUE(registry.contains("mine"));
  (void)registry.create("mine");
  EXPECT_EQ(builds, 1);
  // Replacement swaps the factory in place.
  registry.register_factory("mine",
                            [] { return std::make_unique<sched::CapacityScheduler>(); });
  EXPECT_EQ(registry.create("mine")->name(), "Capacity");
  EXPECT_THROW(registry.register_factory("", nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace hit::core
