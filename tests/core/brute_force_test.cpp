#include "core/brute_force.h"

#include <gtest/gtest.h>

#include "core/hit_scheduler.h"
#include "core/taa.h"
#include "sched/random_scheduler.h"
#include "test_helpers.h"

namespace hit::core {
namespace {

CostConfig pure() {
  CostConfig c;
  c.congestion_weight = 0.0;
  return c;
}

TEST(BruteForce, FindsCaseStudyOptimum) {
  auto world = test::tiny_tree_world();
  // M1, M2 fixed on S1; reduces open; flows 34 GB and 10 GB (the §2.3 setup).
  sched::Problem problem;
  problem.topology = &world->topology;
  problem.cluster = &world->cluster;
  problem.fixed[TaskId(100)] = ServerId(0);
  problem.fixed[TaskId(101)] = ServerId(0);
  problem.base_usage.assign(4, cluster::Resource{});
  problem.base_usage[0] = cluster::kDefaultContainerDemand * 2.0;
  problem.tasks = {
      sched::TaskRef{TaskId(0), JobId(0), cluster::TaskKind::Reduce,
                     cluster::kDefaultContainerDemand, 34.0},
      sched::TaskRef{TaskId(1), JobId(1), cluster::TaskKind::Reduce,
                     cluster::kDefaultContainerDemand, 10.0}};
  problem.flows = {net::Flow{FlowId(0), JobId(0), TaskId(100), TaskId(0), 34.0, 34.0},
                   net::Flow{FlowId(1), JobId(1), TaskId(101), TaskId(1), 10.0, 10.0}};

  const BruteForceSolver solver(pure());
  const auto result = solver.solve(problem);
  ASSERT_TRUE(result.has_value());
  // Optimal: both reduces on S2 behind S1's access switch = 44 GB*T, better
  // than the paper's hand-improved 64.
  EXPECT_DOUBLE_EQ(result->cost, 44.0);
  EXPECT_EQ(result->assignment.placement.at(TaskId(0)), ServerId(1));
  EXPECT_EQ(result->assignment.placement.at(TaskId(1)), ServerId(1));
  EXPECT_TRUE(taa_violations(problem, result->assignment).empty());
}

TEST(BruteForce, RefusesHugeInstances) {
  auto world = test::small_tree_world();                // 8 servers
  test::ProblemFixture fixture(*world, 3, 4, 4, 4.0);  // 24 tasks: 8^24 states
  const BruteForceSolver solver;
  EXPECT_THROW((void)solver.solve(fixture.problem), std::invalid_argument);
}

TEST(BruteForce, RespectsCapacity) {
  auto world = test::tiny_tree_world();
  test::ProblemFixture fixture(*world, 1, 2, 2, 4.0);
  // Block server 0 entirely.
  fixture.problem.base_usage.assign(4, cluster::Resource{});
  fixture.problem.base_usage[0] = cluster::Resource{2.0, 8.0};
  const BruteForceSolver solver(pure());
  const auto result = solver.solve(fixture.problem);
  ASSERT_TRUE(result.has_value());
  for (const auto& [task, server] : result->assignment.placement) {
    EXPECT_NE(server, ServerId(0));
  }
}

// Property sweep: Hit's heuristic lands within a constant factor of the
// exact optimum on oracle-sized instances (and never below it).
class OracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(OracleSweep, HitWithinFactorOfOptimal) {
  auto world = test::tiny_tree_world();
  test::ProblemFixture fixture(*world, 1, 3, 2, 6.0 + GetParam());

  const BruteForceSolver solver(pure());
  const auto optimal = solver.solve(fixture.problem);
  ASSERT_TRUE(optimal.has_value());

  HitScheduler hit;
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto heuristic = hit.schedule(fixture.problem, rng);
  const double hit_cost = taa_objective(fixture.problem, heuristic, pure());

  EXPECT_GE(hit_cost, optimal->cost - 1e-9);  // oracle really is a lower bound
  EXPECT_LE(hit_cost, std::max(optimal->cost * 2.0, optimal->cost + 8.0))
      << "Hit strayed too far from optimal";
}

TEST_P(OracleSweep, HitBeatsRandomOnAverageInstance) {
  auto world = test::tiny_tree_world();
  test::ProblemFixture fixture(*world, 1, 3, 2, 10.0 + GetParam());

  HitScheduler hit;
  sched::RandomScheduler random_sched;
  Rng rng_hit(1);
  const double hit_cost =
      taa_objective(fixture.problem, hit.schedule(fixture.problem, rng_hit), pure());
  double random_total = 0.0;
  for (int i = 0; i < 10; ++i) {
    Rng rng(static_cast<std::uint64_t>(100 + i));
    random_total += taa_objective(fixture.problem,
                                  random_sched.schedule(fixture.problem, rng), pure());
  }
  EXPECT_LE(hit_cost, random_total / 10.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OracleSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace hit::core
