// HealthMonitor: EWMA throughput-vs-expected scores with max-fold
// localization (a degraded element slows every crossing flow; a healthy one
// usually carries at least one near-nominal flow).
#include "core/health_monitor.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace hit::core {
namespace {

using Key = HealthMonitor::Key;

class HealthMonitorTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();

  NodeId server(std::size_t i) { return world_->topology.servers()[i]; }
  NodeId sw(std::size_t i) { return world_->topology.switches()[i]; }

  HealthConfig fast_config() {
    HealthConfig c;
    c.ewma_alpha = 1.0;  // score == last sample: deterministic thresholds
    c.suspect_ratio = 0.75;
    c.min_samples = 4;
    return c;
  }

  /// One round: the "slow" path reports `slow_ratio`, a disjoint healthy
  /// path reports 1.0.
  void round(HealthMonitor& monitor, double slow_ratio) {
    monitor.begin_sample();
    monitor.note_path({server(0), sw(0), server(1)}, slow_ratio);
    monitor.note_path({server(2), sw(1), server(3)}, 1.0);
    const auto newly = monitor.end_sample();
    (void)newly;
  }
};

TEST_F(HealthMonitorTest, ValidatesConfig) {
  HealthConfig bad = fast_config();
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(HealthMonitor(world_->topology, bad), std::invalid_argument);
  bad = fast_config();
  bad.suspect_ratio = 1.0;
  EXPECT_THROW(HealthMonitor(world_->topology, bad), std::invalid_argument);
  bad = fast_config();
  bad.z_threshold = -1.0;
  EXPECT_THROW(HealthMonitor(world_->topology, bad), std::invalid_argument);
}

TEST_F(HealthMonitorTest, CleanFlowsNeverFlag) {
  HealthMonitor monitor(world_->topology, fast_config());
  for (int i = 0; i < 20; ++i) round(monitor, 1.0);
  EXPECT_TRUE(monitor.suspects().empty());
  EXPECT_DOUBLE_EQ(monitor.score(net::CapacityMap::switch_key(sw(0))), 1.0);
}

TEST_F(HealthMonitorTest, UnknownElementScoresOptimistic) {
  HealthMonitor monitor(world_->topology, fast_config());
  EXPECT_DOUBLE_EQ(monitor.score(net::CapacityMap::switch_key(sw(3))), 1.0);
  EXPECT_FALSE(monitor.is_suspect(net::CapacityMap::switch_key(sw(3))));
}

TEST_F(HealthMonitorTest, FlagsAfterMinSamplesOnly) {
  HealthMonitor monitor(world_->topology, fast_config());
  const Key slow_key = net::CapacityMap::switch_key(sw(0));
  for (int i = 0; i < 3; ++i) {
    round(monitor, 0.3);
    EXPECT_FALSE(monitor.is_suspect(slow_key)) << "round " << i;
  }
  monitor.begin_sample();
  monitor.note_path({server(0), sw(0), server(1)}, 0.3);
  const auto newly = monitor.end_sample();
  EXPECT_TRUE(monitor.is_suspect(slow_key));
  // Newly-flagged keys cover the whole slow path (links + switch), sorted.
  EXPECT_FALSE(newly.empty());
  EXPECT_TRUE(std::is_sorted(newly.begin(), newly.end()));
  EXPECT_NE(std::find(newly.begin(), newly.end(), slow_key), newly.end());
  // The healthy path's switch stays clean.
  EXPECT_FALSE(monitor.is_suspect(net::CapacityMap::switch_key(sw(1))));
}

TEST_F(HealthMonitorTest, MaxFoldShieldsSharedElements) {
  HealthMonitor monitor(world_->topology, fast_config());
  const Key shared = net::CapacityMap::switch_key(sw(0));
  for (int i = 0; i < 10; ++i) {
    monitor.begin_sample();
    // Two flows through the same switch: one crawling, one at speed.  The
    // switch keeps the best ratio, so it is not the culprit.
    monitor.note_path({server(0), sw(0), server(1)}, 0.2);
    monitor.note_path({server(2), sw(0), server(3)}, 1.0);
    (void)monitor.end_sample();
  }
  EXPECT_FALSE(monitor.is_suspect(shared));
  // The crawling flow's private links do flag.
  EXPECT_TRUE(monitor.is_suspect(
      net::CapacityMap::link_key(server(0), sw(0))));
}

TEST_F(HealthMonitorTest, SuspectIsStickyUntilReset) {
  HealthMonitor monitor(world_->topology, fast_config());
  const Key slow_key = net::CapacityMap::switch_key(sw(0));
  for (int i = 0; i < 4; ++i) round(monitor, 0.3);
  ASSERT_TRUE(monitor.is_suspect(slow_key));
  // Recovery in the samples does not unflag — reinstatement is the
  // quarantine loop's decision.
  for (int i = 0; i < 8; ++i) round(monitor, 1.0);
  EXPECT_TRUE(monitor.is_suspect(slow_key));
  monitor.reset(slow_key);
  EXPECT_FALSE(monitor.is_suspect(slow_key));
  EXPECT_DOUBLE_EQ(monitor.score(slow_key), 1.0);
  // After reset the element needs min_samples fresh rounds to flag again.
  for (int i = 0; i < 3; ++i) round(monitor, 0.3);
  EXPECT_FALSE(monitor.is_suspect(slow_key));
  round(monitor, 0.3);
  EXPECT_TRUE(monitor.is_suspect(slow_key));
}

TEST_F(HealthMonitorTest, ZTestRequiresOutlier) {
  HealthConfig config = fast_config();
  config.z_threshold = 1.0;
  HealthMonitor monitor(world_->topology, config);
  // Every tracked element is equally slow: below the absolute threshold but
  // no outlier versus the population, so the z-test suppresses the flag.
  for (int i = 0; i < 10; ++i) {
    monitor.begin_sample();
    monitor.note_path({server(0), sw(0), server(1)}, 0.5);
    monitor.note_path({server(2), sw(1), server(3)}, 0.5);
    (void)monitor.end_sample();
  }
  EXPECT_TRUE(monitor.suspects().empty());
}

TEST_F(HealthMonitorTest, KeyHelpersRoundTrip) {
  const Key swk = net::CapacityMap::switch_key(sw(2));
  EXPECT_TRUE(HealthMonitor::key_is_switch(swk));
  EXPECT_EQ(HealthMonitor::key_node(swk), sw(2));
  const Key lk = net::CapacityMap::link_key(server(0), sw(0));
  EXPECT_FALSE(HealthMonitor::key_is_switch(lk));
}

TEST_F(HealthMonitorTest, SamplingOutsideRoundThrows) {
  HealthMonitor monitor(world_->topology, fast_config());
  EXPECT_THROW(monitor.note_path({server(0), sw(0), server(1)}, 1.0),
               std::logic_error);
  EXPECT_THROW((void)monitor.end_sample(), std::logic_error);
}

}  // namespace
}  // namespace hit::core
