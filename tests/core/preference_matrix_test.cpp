#include "core/preference_matrix.h"

#include <gtest/gtest.h>

namespace hit::core {
namespace {

TEST(PreferenceMatrix, StartsAtZero) {
  PreferenceMatrix m(3, {TaskId(10), TaskId(11)});
  EXPECT_EQ(m.num_servers(), 3u);
  EXPECT_EQ(m.tasks().size(), 2u);
  EXPECT_DOUBLE_EQ(m.grade(ServerId(0), TaskId(10)), 0.0);
}

TEST(PreferenceMatrix, AccumulatesGrades) {
  PreferenceMatrix m(2, {TaskId(1)});
  m.add(ServerId(0), TaskId(1), 3.0);
  m.add(ServerId(0), TaskId(1), 2.0);
  EXPECT_DOUBLE_EQ(m.grade(ServerId(0), TaskId(1)), 5.0);
  EXPECT_DOUBLE_EQ(m.grade(ServerId(1), TaskId(1)), 0.0);
}

TEST(PreferenceMatrix, RankedServersDescendingWithIdTieBreak) {
  PreferenceMatrix m(4, {TaskId(1)});
  m.add(ServerId(2), TaskId(1), 5.0);
  m.add(ServerId(0), TaskId(1), 1.0);
  m.add(ServerId(3), TaskId(1), 1.0);  // tie with server 0
  const auto ranked = m.ranked_servers(TaskId(1));
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0], ServerId(2));
  EXPECT_EQ(ranked[1], ServerId(0));  // tie broken by id
  EXPECT_EQ(ranked[2], ServerId(3));
  EXPECT_EQ(ranked[3], ServerId(1));
}

TEST(PreferenceMatrix, RankedTasksDescending) {
  PreferenceMatrix m(1, {TaskId(1), TaskId(2), TaskId(3)});
  m.add(ServerId(0), TaskId(2), 9.0);
  m.add(ServerId(0), TaskId(3), 4.0);
  const auto ranked = m.ranked_tasks(ServerId(0));
  EXPECT_EQ(ranked[0], TaskId(2));
  EXPECT_EQ(ranked[1], TaskId(3));
  EXPECT_EQ(ranked[2], TaskId(1));
}

TEST(PreferenceMatrix, ErrorsOnUnknownIds) {
  PreferenceMatrix m(2, {TaskId(1)});
  EXPECT_THROW((void)m.grade(ServerId(5), TaskId(1)), std::out_of_range);
  EXPECT_THROW((void)m.grade(ServerId(0), TaskId(9)), std::out_of_range);
  EXPECT_THROW(m.add(ServerId(5), TaskId(1), 1.0), std::out_of_range);
  EXPECT_THROW((void)m.ranked_servers(TaskId(9)), std::out_of_range);
  EXPECT_THROW((void)m.ranked_tasks(ServerId(5)), std::out_of_range);
}

TEST(PreferenceMatrix, RejectsDuplicatesAndEmpty) {
  EXPECT_THROW(PreferenceMatrix(0, {TaskId(1)}), std::invalid_argument);
  EXPECT_THROW(PreferenceMatrix(2, {TaskId(1), TaskId(1)}), std::invalid_argument);
}

}  // namespace
}  // namespace hit::core
