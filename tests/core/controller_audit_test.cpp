// Typed controller audit (DESIGN.md §15): audit_violations() returns one
// entry per inconsistency, and in particular a *parked* flow that still
// carries load in the ledger is a ParkedCharged violation — the silent pass
// the old boolean audit allowed.
#include "core/controller.h"

#include <gtest/gtest.h>

#include "core/recovery/snapshot.h"
#include "network/routing.h"
#include "topology/builders.h"

namespace hit::core {
namespace {

class ControllerAuditTest : public ::testing::Test {
 protected:
  topo::TreeConfig tree_{2, 4, 2, 1, 16.0, 32.0};
  topo::Topology topo_ = topo::make_tree(tree_);
  NetworkController controller_{topo_};

  net::Flow flow(unsigned id, double rate) {
    net::Flow f;
    f.id = FlowId(id);
    f.size_gb = rate;
    f.rate = rate;
    return f;
  }

  NodeId server(std::size_t i) { return topo_.servers()[i]; }

  recovery::FlowEntryState entry(unsigned id, std::size_t from, std::size_t to,
                                 double rate) {
    recovery::FlowEntryState e;
    e.flow = flow(id, rate);
    e.policy = net::shortest_policy(topo_, server(from), server(to), FlowId(id));
    e.src = server(from);
    e.dst = server(to);
    e.charged_rate = rate;
    return e;
  }
};

TEST_F(ControllerAuditTest, CleanControllerHasNoViolations) {
  const net::Policy p =
      net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  controller_.install(flow(1, 3.0), p, server(0), server(2));
  EXPECT_TRUE(controller_.audit_violations().empty());
  EXPECT_NO_THROW(controller_.audit());
}

TEST_F(ControllerAuditTest, ParkedFlowWithChargeIsAViolationNotAPass) {
  // The live API never produces this (park always uncharges); a corrupt
  // snapshot can.  The old boolean audit skipped parked entries entirely.
  recovery::ControllerState state;
  recovery::FlowEntryState leaked = entry(1, 0, 2, 2.5);
  leaked.parked = true;  // parked but still carrying charged_rate = 2.5
  state.flows.push_back(leaked);
  state.canonicalize();
  controller_.restore_state(state);

  const auto violations = controller_.audit_violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, AuditViolationKind::ParkedCharged);
  EXPECT_EQ(violations[0].flow, FlowId(1));
  EXPECT_DOUBLE_EQ(violations[0].delta, 2.5);
  EXPECT_THROW(controller_.audit(), std::logic_error);
  try {
    controller_.audit();
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("parked-charged"), std::string::npos);
  }
}

TEST_F(ControllerAuditTest, ActivePolicyAcrossFailedSwitchIsDeadPolicy) {
  recovery::ControllerState state;
  const recovery::FlowEntryState e = entry(1, 0, 2, 1.0);
  const NodeId core = e.policy.list[1];
  state.flows.push_back(e);
  state.failed.push_back(core);  // failed *after* the policy was installed
  state.canonicalize();
  controller_.restore_state(state);

  const auto violations = controller_.audit_violations();
  bool saw_dead = false;
  for (const AuditViolation& v : violations) {
    if (v.kind == AuditViolationKind::DeadPolicy) {
      saw_dead = true;
      EXPECT_EQ(v.flow, FlowId(1));
      EXPECT_EQ(v.node, core);
    }
  }
  EXPECT_TRUE(saw_dead);
}

TEST_F(ControllerAuditTest, MismatchedEndpointsAreUnsatisfiedPolicy) {
  recovery::ControllerState state;
  recovery::FlowEntryState e = entry(1, 0, 2, 1.0);
  e.dst = server(3);  // policy routes to server 2, entry claims server 3
  state.flows.push_back(e);
  state.canonicalize();
  controller_.restore_state(state);

  const auto violations = controller_.audit_violations();
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, AuditViolationKind::UnsatisfiedPolicy);
  EXPECT_EQ(violations[0].flow, FlowId(1));
}

TEST_F(ControllerAuditTest, ViolationKindNamesAreStable) {
  EXPECT_STREQ(audit_violation_kind_name(AuditViolationKind::UnsatisfiedPolicy),
               "unsatisfied-policy");
  EXPECT_STREQ(audit_violation_kind_name(AuditViolationKind::DeadPolicy),
               "dead-policy");
  EXPECT_STREQ(audit_violation_kind_name(AuditViolationKind::ParkedCharged),
               "parked-charged");
  EXPECT_STREQ(audit_violation_kind_name(AuditViolationKind::LoadMismatch),
               "load-mismatch");
}

}  // namespace
}  // namespace hit::core
