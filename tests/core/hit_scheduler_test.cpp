#include "core/hit_scheduler.h"

#include <gtest/gtest.h>

#include "core/taa.h"
#include "sched/capacity_scheduler.h"
#include "test_helpers.h"

namespace hit::core {
namespace {

CostConfig pure() {
  CostConfig c;
  c.congestion_weight = 0.0;
  return c;
}

TEST(HitScheduler, ReproducesCaseStudyImprovement) {
  // §2.3: maps on S1; reduces to place; Hit must beat the paper's observed
  // 112 GB*T placement (it finds the 44 GB*T optimum).
  auto world = test::tiny_tree_world();
  sched::Problem problem;
  problem.topology = &world->topology;
  problem.cluster = &world->cluster;
  problem.fixed[TaskId(100)] = ServerId(0);
  problem.fixed[TaskId(101)] = ServerId(0);
  problem.base_usage.assign(4, cluster::Resource{});
  problem.base_usage[0] = cluster::kDefaultContainerDemand * 2.0;
  problem.tasks = {
      sched::TaskRef{TaskId(0), JobId(0), cluster::TaskKind::Reduce,
                     cluster::kDefaultContainerDemand, 34.0},
      sched::TaskRef{TaskId(1), JobId(1), cluster::TaskKind::Reduce,
                     cluster::kDefaultContainerDemand, 10.0}};
  problem.flows = {net::Flow{FlowId(0), JobId(0), TaskId(100), TaskId(0), 34.0, 34.0},
                   net::Flow{FlowId(1), JobId(1), TaskId(101), TaskId(1), 10.0, 10.0}};

  HitScheduler hit;
  Rng rng(1);
  const auto a = hit.schedule(problem, rng);
  EXPECT_DOUBLE_EQ(taa_objective(problem, a, pure()), 44.0);
}

TEST(HitScheduler, InitialWaveCoLocatesJobTraffic) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 3, 2, 12.0);
  HitScheduler hit;
  sched::CapacityScheduler capacity;
  Rng rng1(2), rng2(2);
  const double hit_cost =
      taa_objective(fixture.problem, hit.schedule(fixture.problem, rng1), pure());
  const double cap_cost = taa_objective(fixture.problem,
                                        capacity.schedule(fixture.problem, rng2),
                                        pure());
  EXPECT_LT(hit_cost, cap_cost);
}

TEST(HitScheduler, SubsequentWaveDetection) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 2, 2, 8.0);

  // Fix reduces; leave only maps open: §5.3.2 greedy path.
  std::vector<sched::TaskRef> open;
  fixture.problem.base_usage.assign(world->cluster.size(), cluster::Resource{});
  for (const auto& t : fixture.problem.tasks) {
    if (t.kind == cluster::TaskKind::Reduce) {
      fixture.problem.fixed[t.id] = ServerId(6);
      fixture.problem.base_usage[6] += t.demand;
    } else {
      open.push_back(t);
    }
  }
  // Both reduces on server 6 is over its 2-slot capacity with two entries?
  // No: two reduces, two slots — exactly full.
  fixture.problem.tasks = open;

  HitScheduler hit;
  Rng rng(3);
  const auto a = hit.schedule(fixture.problem, rng);
  EXPECT_NO_THROW(sched::validate_assignment(fixture.problem, a));
  // Greedy pulls the maps next to the fixed reduces: server 7 shares the
  // access switch with server 6 and must host them.
  for (const auto& t : fixture.problem.tasks) {
    EXPECT_EQ(a.placement.at(t.id), ServerId(7));
  }
}

TEST(HitScheduler, SubsequentWaveOrdersByShuffleOutput) {
  // Two maps with very different outputs compete for one near slot: the
  // heavy map must win it.
  auto world = test::tiny_tree_world();
  sched::Problem problem;
  problem.topology = &world->topology;
  problem.cluster = &world->cluster;
  problem.fixed[TaskId(50)] = ServerId(0);  // reduce on S1
  problem.base_usage.assign(4, cluster::Resource{});
  problem.base_usage[0] = cluster::kDefaultContainerDemand;  // the reduce
  // One slot left on S1 (0 hops to the reduce)... and S2 has two (1 hop).
  problem.base_usage[1] = cluster::Resource{};
  problem.tasks = {
      sched::TaskRef{TaskId(0), JobId(0), cluster::TaskKind::Map,
                     cluster::kDefaultContainerDemand, 1.0},
      sched::TaskRef{TaskId(1), JobId(0), cluster::TaskKind::Map,
                     cluster::kDefaultContainerDemand, 1.0}};
  problem.flows = {
      net::Flow{FlowId(0), JobId(0), TaskId(0), TaskId(50), 2.0, 2.0},   // light
      net::Flow{FlowId(1), JobId(0), TaskId(1), TaskId(50), 30.0, 30.0}  // heavy
  };

  HitScheduler hit;
  Rng rng(4);
  const auto a = hit.schedule(problem, rng);
  // Heavy map takes the co-located slot on S1 (0 switch hops).
  EXPECT_EQ(a.placement.at(TaskId(1)), ServerId(0));
  EXPECT_EQ(a.placement.at(TaskId(0)), ServerId(1));
}

TEST(HitScheduler, PoliciesRespectSwitchCapacity) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 3, 2, 12.0);
  HitScheduler hit;
  Rng rng(5);
  const auto a = hit.schedule(fixture.problem, rng);
  EXPECT_TRUE(taa_violations(fixture.problem, a).empty());
}

TEST(HitScheduler, AblationKnobsChangeBehaviour) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 4, 2, 10.0);

  HitConfig no_opt;
  no_opt.optimize_policies = false;
  HitScheduler full, shortest_only(no_opt);
  Rng rng1(6), rng2(6);
  const auto a_full = full.schedule(fixture.problem, rng1);
  const auto a_short = shortest_only.schedule(fixture.problem, rng2);
  // Same placement policy-independent: the knob only changes routing.
  EXPECT_EQ(a_full.placement, a_short.placement);
  EXPECT_NO_THROW(sched::validate_assignment(fixture.problem, a_short));
}

TEST(HitScheduler, NameAndConfigRoundTrip) {
  HitConfig config;
  config.route_choices = 9;
  HitScheduler hit(config);
  EXPECT_EQ(hit.name(), "Hit");
  EXPECT_EQ(hit.config().route_choices, 9u);
}

TEST(HitScheduler, InvalidProblemThrows) {
  HitScheduler hit;
  sched::Problem empty;
  Rng rng(7);
  EXPECT_THROW((void)hit.schedule(empty, rng), std::invalid_argument);
}

}  // namespace
}  // namespace hit::core
