// Property sweep for Algorithm 2: over a randomized seed sweep of preference
// matrices (and both proposer variants), every finished matching is complete,
// capacity-feasible, and stable — no (container, server) blocking pair.
// Budget-capped runs additionally must stay capacity-feasible at any
// truncation point and report `complete` honestly.
#include <gtest/gtest.h>

#include "core/stable_matching.h"
#include "test_helpers.h"

namespace hit::core {
namespace {

PreferenceMatrix random_prefs(const sched::Problem& problem, Rng& rng) {
  std::vector<TaskId> ids;
  for (const auto& t : problem.tasks) ids.push_back(t.id);
  PreferenceMatrix prefs(problem.cluster->size(), ids);
  for (const auto& t : problem.tasks) {
    for (const auto& s : problem.cluster->servers()) {
      prefs.add(s.id, t.id, rng.uniform(0.0, 100.0));
    }
  }
  return prefs;
}

void expect_capacity_feasible(
    const sched::Problem& problem,
    const std::unordered_map<TaskId, ServerId>& matching) {
  std::unordered_map<TaskId, const sched::TaskRef*> ref_of;
  for (const sched::TaskRef& t : problem.tasks) ref_of.emplace(t.id, &t);
  sched::UsageLedger ledger(problem);
  for (const auto& [task, server] : matching) {
    ASSERT_TRUE(ledger.can_host(server, ref_of.at(task)->demand))
        << "capacity violated at server " << server.value();
    ledger.place(server, ref_of.at(task)->demand);
  }
}

class StableMatchingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StableMatchingSweep, NoBlockingPairsEitherProposer) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 4, 2, 4.0);
  Rng rng(GetParam());
  const PreferenceMatrix prefs = random_prefs(fixture.problem, rng);
  const StableMatcher matcher;
  for (const auto proposer :
       {StableMatcher::Proposer::Containers, StableMatcher::Proposer::Servers}) {
    const auto matching = matcher.match(fixture.problem, prefs, proposer);
    EXPECT_EQ(matching.size(), fixture.problem.tasks.size());
    expect_capacity_feasible(fixture.problem, matching);
    EXPECT_TRUE(StableMatcher::is_stable(fixture.problem, prefs, matching))
        << "blocking pair under seed " << GetParam();
  }
}

TEST_P(StableMatchingSweep, BudgetedRunsStayFeasibleAtEveryCap) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 4, 2, 4.0);
  Rng rng(GetParam());
  const PreferenceMatrix prefs = random_prefs(fixture.problem, rng);
  const StableMatcher matcher;

  // Unlimited run to learn how many proposals a full run needs.
  const auto full = matcher.match_budgeted(fixture.problem, prefs, 0);
  ASSERT_TRUE(full.complete);
  ASSERT_GT(full.proposals, 0u);
  EXPECT_TRUE(StableMatcher::is_stable(fixture.problem, prefs, full.placement));

  // Truncate at a spread of caps: always capacity-feasible, proposals within
  // the cap, and `complete` honest about coverage.
  for (const std::uint64_t cap :
       {std::uint64_t{1}, full.proposals / 2, full.proposals}) {
    if (cap == 0) continue;
    const auto result =
        matcher.match_budgeted(fixture.problem, prefs, static_cast<std::size_t>(cap));
    EXPECT_LE(result.proposals, cap);
    expect_capacity_feasible(fixture.problem, result.placement);
    EXPECT_EQ(result.complete,
              result.placement.size() == fixture.problem.tasks.size());
    EXPECT_LE(result.placement.size(), fixture.problem.tasks.size());
  }

  // A cap at the full run's own proposal count reproduces the full matching.
  const auto exact = matcher.match_budgeted(
      fixture.problem, prefs, static_cast<std::size_t>(full.proposals));
  EXPECT_TRUE(exact.complete);
  EXPECT_EQ(exact.placement, full.placement);
}

TEST_P(StableMatchingSweep, ServersProposingBudgetedFeasible) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 4, 2, 4.0);
  Rng rng(GetParam() ^ 0x5EED);
  const PreferenceMatrix prefs = random_prefs(fixture.problem, rng);
  const StableMatcher matcher;
  const auto full = matcher.match_budgeted(fixture.problem, prefs, 0,
                                           StableMatcher::Proposer::Servers);
  ASSERT_TRUE(full.complete);
  for (const std::uint64_t cap : {std::uint64_t{2}, full.proposals / 2}) {
    if (cap == 0) continue;
    const auto result =
        matcher.match_budgeted(fixture.problem, prefs,
                               static_cast<std::size_t>(cap),
                               StableMatcher::Proposer::Servers);
    EXPECT_LE(result.proposals, cap);
    expect_capacity_feasible(fixture.problem, result.placement);
    EXPECT_EQ(result.complete,
              result.placement.size() == fixture.problem.tasks.size());
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, StableMatchingSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u, 144u, 233u));

TEST(StableMatchingBudgeted, GenuineInfeasibilityStillThrows) {
  auto world = test::tiny_tree_world();            // 8 slots
  test::ProblemFixture fixture(*world, 3, 2, 2, 4.0);  // 12 tasks
  Rng rng(4);
  const PreferenceMatrix prefs = random_prefs(fixture.problem, rng);
  // Even with a budget, running out of servers (not proposals) throws.
  EXPECT_THROW((void)StableMatcher().match_budgeted(fixture.problem, prefs, 0),
               std::runtime_error);
}

}  // namespace
}  // namespace hit::core
