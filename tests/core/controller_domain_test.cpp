// Failure-domain awareness in the control plane (DESIGN.md §17): a flow
// whose endpoint is stranded behind a fully-failed domain is a DeadDomain
// audit violation, reconcile parks it as a journaled repair, and install
// reports unreachable endpoints as the typed EndpointsPartitioned error
// instead of a silent park.
#include "core/controller.h"

#include <gtest/gtest.h>

#include "core/errors.h"
#include "core/recovery/recovery.h"
#include "network/routing.h"
#include "topology/builders.h"

namespace hit::core {
namespace {

class ControllerDomainTest : public ::testing::Test {
 protected:
  // Depth-2 tree, 4 racks x 1 host, 2 core replicas: every cross-rack pair
  // has a two-core choice, so one core failure always leaves a detour.
  topo::TreeConfig tree_{2, 4, 2, 1, 16.0, 32.0};
  topo::Topology topo_ = topo::make_tree(tree_);
  NetworkController controller_{topo_};

  net::Flow flow(unsigned id, double rate) {
    net::Flow f;
    f.id = FlowId(id);
    f.size_gb = rate;
    f.rate = rate;
    return f;
  }

  NodeId server(std::size_t i) { return topo_.servers()[i]; }

  std::vector<NodeId> cores() {
    std::vector<NodeId> out;
    for (NodeId sw : topo_.switches()) {
      if (topo_.tier(sw) != topo::Tier::Access) out.push_back(sw);
    }
    return out;
  }
};

TEST_F(ControllerDomainTest, StrandedEndpointIsADeadDomainViolation) {
  // Declare a synthetic domain binding server 0's fate to core 0 alone.
  // Failing that core strands the server even though the flow's rerouted
  // path (via core 1) looks perfectly alive — exactly the divergence the
  // plain DeadPolicy scan cannot see.
  const std::vector<NodeId> core = cores();
  ASSERT_GE(core.size(), 2u);
  controller_.set_domains(
      {DomainMembers{{core[0]}, {server(0)}}});

  const net::Policy p =
      net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  controller_.install(flow(1, 2.0), p, server(0), server(2));
  EXPECT_TRUE(controller_.audit_violations().empty());

  controller_.fail(core[0]);  // evacuates the flow onto the other core
  const auto violations = controller_.audit_violations();
  bool saw_dead_domain = false;
  for (const AuditViolation& v : violations) {
    EXPECT_NE(v.kind, AuditViolationKind::DeadPolicy)
        << "the rerouted policy must not cross the failed core";
    if (v.kind == AuditViolationKind::DeadDomain) {
      saw_dead_domain = true;
      EXPECT_EQ(v.flow, FlowId(1));
      EXPECT_EQ(v.node, server(0));
    }
  }
  EXPECT_TRUE(saw_dead_domain);
  EXPECT_STREQ(audit_violation_kind_name(AuditViolationKind::DeadDomain),
               "dead-domain");
}

TEST_F(ControllerDomainTest, ReconcileParksDeadDomainFlowsAsARepair) {
  const std::vector<NodeId> core = cores();
  ASSERT_GE(core.size(), 2u);
  controller_.set_domains({DomainMembers{{core[0]}, {server(0)}}});
  const net::Policy p =
      net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  controller_.install(flow(1, 2.0), p, server(0), server(2));
  controller_.fail(core[0]);

  recovery::LiveView live;
  live.failed_switches = {core[0]};
  const recovery::ReconcileReport report =
      recovery::reconcile(controller_, live);

  bool saw_dead_domain = false;
  for (const recovery::Divergence& d : report.divergences) {
    if (d.kind == recovery::DivergenceKind::DeadDomain) {
      saw_dead_domain = true;
      EXPECT_EQ(d.flow, FlowId(1));
      EXPECT_TRUE(d.repaired);
    }
  }
  EXPECT_TRUE(saw_dead_domain);
  EXPECT_GE(report.repairs, 1u);
  EXPECT_EQ(report.unreconciled, 0u);
  // The park drained the ledger: a second audit is clean, and a second
  // reconcile finds nothing left to repair (the park is idempotent).
  EXPECT_TRUE(controller_.audit_violations().empty());
  const recovery::ReconcileReport again =
      recovery::reconcile(controller_, live);
  for (const recovery::Divergence& d : again.divergences) {
    EXPECT_NE(d.kind, recovery::DivergenceKind::DeadDomain);
  }
}

TEST_F(ControllerDomainTest, ParkSurvivesExportRestore) {
  const std::vector<NodeId> core = cores();
  controller_.set_domains({DomainMembers{{core[0]}, {server(0)}}});
  const net::Policy p =
      net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  controller_.install(flow(1, 2.0), p, server(0), server(2));
  controller_.fail(core[0]);
  ASSERT_TRUE(controller_.park(FlowId(1)));
  EXPECT_FALSE(controller_.park(FlowId(1)));  // idempotent
  EXPECT_THROW(controller_.park(FlowId(99)), UnknownFlow);

  // A restarted controller restored from the snapshot still knows the flow
  // is parked and uncharged — the journaled park is a durable repair.
  NetworkController restarted(topo_);
  restarted.restore_state(controller_.export_state());
  EXPECT_TRUE(restarted.audit_violations().empty());
  EXPECT_EQ(restarted.parked_count(), 1u);
  ASSERT_EQ(restarted.parked().size(), 1u);
  EXPECT_EQ(restarted.parked()[0], FlowId(1));
}

TEST_F(ControllerDomainTest, InstallReportsPartitionAsTypedError) {
  // Kill every non-access switch: cross-rack pairs are unreachable and the
  // controller must say so with the typed subclass (callers park and
  // re-place instead of retrying the route).
  for (NodeId sw : cores()) controller_.fail(sw);
  const net::Policy p =
      net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  EXPECT_THROW(controller_.install(flow(1, 2.0), p, server(0), server(2)),
               EndpointsPartitioned);
  try {
    controller_.install(flow(2, 2.0), p, server(0), server(2));
  } catch (const PathUnavailable& e) {
    // EndpointsPartitioned derives from PathUnavailable: existing catch
    // sites keep working, new ones can distinguish the partition cause.
    EXPECT_NE(std::string(e.what()).find("partition"), std::string::npos);
  }
}

}  // namespace
}  // namespace hit::core
