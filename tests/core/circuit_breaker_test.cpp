// Circuit breaker state machine: Closed -> Open on consecutive failures,
// Open -> HalfOpen after the open span, HalfOpen -> Closed on probe
// successes / straight back to Open on a probe failure.  Everything is
// call-counted, so a fixed seed replays bit-identically.
#include "core/circuit_breaker.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace hit::core {
namespace {

BreakerConfig small_breaker(std::uint64_t seed = 0) {
  BreakerConfig config;
  config.enabled = true;
  config.failure_threshold = 2;
  config.open_span = 3;
  config.close_successes = 2;
  config.seed = seed;
  return config;
}

TEST(CircuitBreaker, DisabledAlwaysAllows) {
  CircuitBreaker breaker;  // default config: disabled
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(breaker.allow());
    breaker.record_failure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_EQ(breaker.stats().trips, 0u);
}

TEST(CircuitBreaker, EnabledValidatesThresholds) {
  BreakerConfig config = small_breaker();
  config.failure_threshold = 0;
  EXPECT_THROW(CircuitBreaker{config}, std::invalid_argument);
  config = small_breaker();
  config.close_successes = 0;
  EXPECT_THROW(CircuitBreaker{config}, std::invalid_argument);
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailures) {
  CircuitBreaker breaker(small_breaker());
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);  // 1 < threshold
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_EQ(breaker.stats().trips, 1u);
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  CircuitBreaker breaker(small_breaker());
  breaker.record_failure();
  breaker.record_success();  // streak broken
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
}

TEST(CircuitBreaker, OpenServesFallbackThenProbes) {
  CircuitBreaker breaker(small_breaker());
  breaker.record_failure();
  breaker.record_failure();
  ASSERT_EQ(breaker.state(), BreakerState::Open);
  // open_span = 3 short circuits, then a half-open probe is admitted.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.stats().short_circuits, 3u);
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
  EXPECT_EQ(breaker.stats().probes, 1u);
}

TEST(CircuitBreaker, HalfOpenClosesAfterEnoughSuccesses) {
  CircuitBreaker breaker(small_breaker());
  breaker.record_failure();
  breaker.record_failure();
  for (int i = 0; i < 3; ++i) (void)breaker.allow();
  ASSERT_TRUE(breaker.allow());  // probe 1
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);  // needs 2
  ASSERT_TRUE(breaker.allow());  // probe 2
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_EQ(breaker.stats().closes, 1u);
}

TEST(CircuitBreaker, HalfOpenFailureReopens) {
  CircuitBreaker breaker(small_breaker());
  breaker.record_failure();
  breaker.record_failure();
  for (int i = 0; i < 3; ++i) (void)breaker.allow();
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_EQ(breaker.stats().trips, 2u);
}

TEST(CircuitBreaker, SeededJitterIsDeterministic) {
  // Same seed -> identical allow() trace; the jitter never shrinks the span.
  const auto trace = [](std::uint64_t seed) {
    CircuitBreaker breaker(small_breaker(seed));
    std::vector<bool> out;
    for (int i = 0; i < 40; ++i) {
      const bool ok = breaker.allow();
      out.push_back(ok);
      if (ok) breaker.record_failure();
    }
    return out;
  };
  EXPECT_EQ(trace(7), trace(7));
  // Unjittered span is exact: after a trip, exactly 3 denials.
  CircuitBreaker plain(small_breaker(0));
  plain.record_failure();
  plain.record_failure();
  int denials = 0;
  while (!plain.allow()) ++denials;
  EXPECT_EQ(denials, 3);
}

TEST(CircuitBreaker, ResetClosesButKeepsStats) {
  CircuitBreaker breaker(small_breaker());
  breaker.record_failure();
  breaker.record_failure();
  ASSERT_EQ(breaker.state(), BreakerState::Open);
  breaker.reset();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.stats().trips, 1u);  // history survives
}

TEST(CircuitBreaker, StateNames) {
  EXPECT_STREQ(breaker_state_name(BreakerState::Closed), "closed");
  EXPECT_STREQ(breaker_state_name(BreakerState::HalfOpen), "half-open");
  EXPECT_STREQ(breaker_state_name(BreakerState::Open), "open");
}

}  // namespace
}  // namespace hit::core
