#include "core/local_search.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/brute_force.h"
#include "core/taa.h"
#include "sched/capacity_scheduler.h"
#include "sched/random_scheduler.h"
#include "test_helpers.h"

namespace hit::core {
namespace {

LocalSearchConfig pure_config() {
  LocalSearchConfig c;
  c.cost.congestion_weight = 0.0;
  return c;
}

TEST(LocalSearch, NeverWorsensSeed) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 3, 2, 8.0);
  sched::RandomScheduler random_sched;
  Rng rng(1);
  const sched::Assignment seed = random_sched.schedule(fixture.problem, rng);
  CostConfig pure;
  pure.congestion_weight = 0.0;
  const double seed_cost = taa_objective(fixture.problem, seed, pure);

  const LocalSearchSolver solver(pure_config());
  const auto result = solver.refine(fixture.problem, seed);
  EXPECT_LE(result.cost, seed_cost + 1e-9);
  EXPECT_NO_THROW(sched::validate_assignment(fixture.problem, result.assignment));
}

TEST(LocalSearch, ImprovesBadSeedSubstantially) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 3, 2, 10.0);
  // Pathological seed: tasks spread maximally (capacity-style placement of a
  // shuffle-heavy job across racks).
  sched::CapacityScheduler capacity;
  Rng rng(2);
  const sched::Assignment seed = capacity.schedule(fixture.problem, rng);
  CostConfig pure;
  pure.congestion_weight = 0.0;
  const double seed_cost = taa_objective(fixture.problem, seed, pure);

  const LocalSearchSolver solver(pure_config());
  const auto result = solver.refine(fixture.problem, seed);
  EXPECT_LT(result.cost, seed_cost * 0.8);
  EXPECT_GT(result.moves, 0u);
}

TEST(LocalSearch, ReachesOracleOnTinyInstances) {
  auto world = test::tiny_tree_world();
  test::ProblemFixture fixture(*world, 1, 2, 2, 6.0);

  const BruteForceSolver oracle(pure_config().cost);
  const auto optimal = oracle.solve(fixture.problem);
  ASSERT_TRUE(optimal.has_value());

  // Hill climbing stalls in local optima; random restarts (standard
  // practice) close the gap on this 4-server instance.
  sched::RandomScheduler random_sched;
  const LocalSearchSolver solver(pure_config());
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t seed_id = 0; seed_id < 4; ++seed_id) {
    Rng rng(seed_id);
    const sched::Assignment seed = random_sched.schedule(fixture.problem, rng);
    best = std::min(best, solver.refine(fixture.problem, seed).cost);
  }
  EXPECT_LE(best, optimal->cost * 1.5 + 1e-9);
  EXPECT_GE(best, optimal->cost - 1e-9);
}

TEST(LocalSearch, HitSeedLeavesLittleOnTheTable) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 3, 2, 8.0);
  HitScheduler hit;
  Rng rng(4);
  const sched::Assignment seed = hit.schedule(fixture.problem, rng);
  CostConfig pure;
  pure.congestion_weight = 0.0;
  const double hit_cost = taa_objective(fixture.problem, seed, pure);

  const LocalSearchSolver solver(pure_config());
  const auto result = solver.refine(fixture.problem, seed);
  EXPECT_LE(result.cost, hit_cost + 1e-9);
  // Stable matching should already be within ~30% of its local optimum.
  EXPECT_GE(result.cost, hit_cost * 0.7 - 1e-9);
}

TEST(LocalSearchScheduler, ActsAsScheduler) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 3, 2, 6.0);
  HitLocalSearchScheduler scheduler;
  Rng rng(5);
  const sched::Assignment a = scheduler.schedule(fixture.problem, rng);
  EXPECT_NO_THROW(sched::validate_assignment(fixture.problem, a));
  EXPECT_EQ(scheduler.name(), "Hit+LocalSearch");
}

TEST(LocalSearch, RejectsIncompleteSeed) {
  auto world = test::tiny_tree_world();
  test::ProblemFixture fixture(*world, 1, 1, 1, 4.0);
  const LocalSearchSolver solver(pure_config());
  sched::Assignment empty;
  EXPECT_THROW((void)solver.refine(fixture.problem, empty), std::exception);
}

}  // namespace
}  // namespace hit::core
