// Eq. (3) constraint verification + objective.
#include "core/taa.h"

#include <gtest/gtest.h>

#include "core/hit_scheduler.h"
#include "sched/capacity_scheduler.h"
#include "test_helpers.h"

namespace hit::core {
namespace {

class TaaTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::tiny_tree_world();
  test::ProblemFixture fixture_{*world_, 1, 2, 2, 8.0};

  sched::Assignment spread() {
    sched::Assignment a;
    std::size_t i = 0;
    for (const auto& t : fixture_.problem.tasks) {
      a.placement[t.id] = ServerId(static_cast<ServerId::value_type>(i++ % 4));
    }
    sched::attach_shortest_policies(fixture_.problem, a);
    return a;
  }
};

TEST_F(TaaTest, FeasibleAssignmentHasNoViolations) {
  EXPECT_TRUE(taa_violations(fixture_.problem, spread()).empty());
}

TEST_F(TaaTest, DetectsUnplacedTask) {
  sched::Assignment a = spread();
  a.placement.erase(fixture_.problem.tasks[0].id);
  const auto v = taa_violations(fixture_.problem, a);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("unplaced"), std::string::npos);
}

TEST_F(TaaTest, DetectsServerOverCapacity) {
  sched::Assignment a;
  for (const auto& t : fixture_.problem.tasks) {
    a.placement[t.id] = ServerId(0);
  }
  sched::attach_shortest_policies(fixture_.problem, a);
  bool found = false;
  for (const auto& v : taa_violations(fixture_.problem, a)) {
    if (v.find("server capacity") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TaaTest, DetectsSwitchOverCapacity) {
  // Inflate flow rates so the access switches overflow.
  for (auto& f : fixture_.problem.flows) f.rate = 100.0;
  bool found = false;
  for (const auto& v : taa_violations(fixture_.problem, spread())) {
    if (v.find("switch over capacity") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TaaTest, DetectsMissingPolicy) {
  sched::Assignment a = spread();
  a.policies.clear();
  bool found = false;
  for (const auto& v : taa_violations(fixture_.problem, a)) {
    if (v.find("without policy") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TaaTest, DetectsUnsatisfiedPolicy) {
  sched::Assignment a = spread();
  // Corrupt one cross-rack policy's first switch type.
  for (auto& [id, policy] : a.policies) {
    if (!policy.type.empty()) {
      policy.type[0] = topo::Tier::Core;
      break;
    }
  }
  bool found = false;
  for (const auto& v : taa_violations(fixture_.problem, a)) {
    if (v.find("unsatisfied policy") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TaaTest, ObjectiveMatchesHandComputation) {
  // Place everything by hand: maps on S1, reduces on S2 (near) and S4 (far).
  const auto& tasks = fixture_.problem.tasks;
  sched::Assignment a;
  a.placement[tasks[0].id] = ServerId(0);  // map 1
  a.placement[tasks[1].id] = ServerId(0);  // map 2
  a.placement[tasks[2].id] = ServerId(1);  // reduce near: 1 hop
  a.placement[tasks[3].id] = ServerId(3);  // reduce far: 3 hops
  sched::attach_shortest_policies(fixture_.problem, a);
  CostConfig pure;
  pure.congestion_weight = 0.0;
  // 8 GB shuffle, 2x2 flows of 2 GB: per map, 2 GB to each reduce.
  // cost = 2 maps * (2 GB * 1 hop + 2 GB * 3 hops) = 16 GB*T.
  EXPECT_DOUBLE_EQ(taa_objective(fixture_.problem, a, pure), 16.0);
}

TEST_F(TaaTest, SchedulersPassTaaChecks) {
  sched::CapacityScheduler capacity;
  HitScheduler hit;
  for (sched::Scheduler* s : {static_cast<sched::Scheduler*>(&capacity),
                              static_cast<sched::Scheduler*>(&hit)}) {
    Rng rng(7);
    const auto a = s->schedule(fixture_.problem, rng);
    EXPECT_TRUE(taa_violations(fixture_.problem, a).empty()) << s->name();
  }
}

}  // namespace
}  // namespace hit::core
