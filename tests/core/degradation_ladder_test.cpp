// Degradation ladder: with the ladder disabled (default) or enabled with no
// budgets, the Hit scheduler's output is unchanged; budget exhaustion steps
// down to preference-only placement; an open breaker skips straight to
// locality-greedy; when every greedy tier is packed into a corner, the
// random rung can still find a feasible placement.
#include <gtest/gtest.h>

#include "core/hit_scheduler.h"
#include "test_helpers.h"

namespace hit::core {
namespace {

HitConfig laddered(std::size_t route_budget = 0, std::size_t proposal_budget = 0) {
  HitConfig config;
  config.ladder.enabled = true;
  config.ladder.route_budget = route_budget;
  config.ladder.proposal_budget = proposal_budget;
  return config;
}

TEST(DegradationLadder, DisabledByDefaultAndInertWithoutBudgets) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 4, 2, 4.0);
  Rng rng_a(7), rng_b(7);

  HitScheduler plain;
  EXPECT_FALSE(plain.config().ladder.enabled);
  const auto base = plain.schedule(fixture.problem, rng_a);

  HitScheduler unlimited(laddered());  // enabled, but no caps and no breaker
  const auto same = unlimited.schedule(fixture.problem, rng_b);

  EXPECT_EQ(base.placement, same.placement);
  ASSERT_EQ(base.policies.size(), same.policies.size());
  for (const auto& [flow, policy] : base.policies) {
    ASSERT_TRUE(same.policies.count(flow) > 0);
    EXPECT_EQ(policy.list, same.policies.at(flow).list);
  }
  EXPECT_EQ(unlimited.last_tier(), LadderTier::Full);
  EXPECT_EQ(unlimited.ladder_stats().served[0], 1u);
  EXPECT_EQ(unlimited.ladder_stats().budget_exhaustions, 0u);
}

TEST(DegradationLadder, RouteBudgetExhaustionServesPreferenceOnly) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 4, 2, 4.0);
  Rng rng(7);
  HitScheduler scheduler(laddered(/*route_budget=*/1));
  const auto assignment = scheduler.schedule(fixture.problem, rng);
  sched::validate_assignment(fixture.problem, assignment);
  EXPECT_EQ(scheduler.last_tier(), LadderTier::PreferenceOnly);
  EXPECT_EQ(scheduler.ladder_stats().served[1], 1u);
  EXPECT_GE(scheduler.ladder_stats().budget_exhaustions, 1u);
}

TEST(DegradationLadder, ProposalBudgetExhaustionCompletesGreedily) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 4, 2, 4.0);
  Rng rng(7);
  HitScheduler scheduler(laddered(/*route_budget=*/0, /*proposal_budget=*/1));
  const auto assignment = scheduler.schedule(fixture.problem, rng);
  sched::validate_assignment(fixture.problem, assignment);
  // One proposal cannot place 12 tasks: the wave degrades but still covers
  // every task via the grade-greedy completion.
  EXPECT_EQ(scheduler.last_tier(), LadderTier::PreferenceOnly);
  EXPECT_EQ(assignment.placement.size(), fixture.problem.tasks.size());
}

TEST(DegradationLadder, OpenBreakerSkipsToLocalityGreedy) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 4, 2, 4.0);
  HitConfig config = laddered(/*route_budget=*/1);
  config.ladder.breaker.enabled = true;
  config.ladder.breaker.failure_threshold = 1;  // trip on the first blowout
  config.ladder.breaker.open_span = 4;
  HitScheduler scheduler(config);

  Rng rng(7);
  // Wave 1: budget blowout -> PreferenceOnly, breaker trips.
  (void)scheduler.schedule(fixture.problem, rng);
  EXPECT_EQ(scheduler.last_tier(), LadderTier::PreferenceOnly);
  EXPECT_EQ(scheduler.breaker_state(), BreakerState::Open);

  // Wave 2: breaker open -> locality-greedy immediately, no Full attempt.
  const auto assignment = scheduler.schedule(fixture.problem, rng);
  sched::validate_assignment(fixture.problem, assignment);
  EXPECT_EQ(scheduler.last_tier(), LadderTier::LocalityGreedy);
  EXPECT_EQ(scheduler.ladder_stats().breaker_skips, 1u);
  EXPECT_EQ(scheduler.ladder_stats().breaker.trips, 1u);
}

TEST(DegradationLadder, LadderedWavesAreDeterministic) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 4, 2, 4.0);
  const auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    HitScheduler scheduler(laddered(/*route_budget=*/1, /*proposal_budget=*/3));
    return scheduler.schedule(fixture.problem, rng).placement;
  };
  EXPECT_EQ(run(11), run(11));
}

// Two servers left open (the rest pre-filled), heterogeneous demands chosen
// so that every deterministic tier corners itself: the map->map flow anchors
// both cpu-2 maps on server 0 (co-location grading), after which neither
// server can host both zero-graded cpu-3 reduces.  Full fails (equal-grade
// reduces cannot evict each other), the greedy completions first-fit into
// the same corner, and only the random rung — which can spread the maps —
// finishes the wave.
struct CorneredFixture {
  std::unique_ptr<test::World> world =
      test::small_tree_world(cluster::Resource{5.0, 20.0});
  mr::IdAllocator ids;
  std::vector<net::Flow> flows;
  sched::Problem problem;

  CorneredFixture() {
    problem.topology = &world->topology;
    problem.cluster = &world->cluster;
    const JobId job = ids.next_job();
    const cluster::Resource small{2.0, 8.0};
    const cluster::Resource big{3.0, 12.0};
    const TaskId m1 = ids.next_task(), m2 = ids.next_task();
    const TaskId r1 = ids.next_task(), r2 = ids.next_task();
    problem.tasks = {
        sched::TaskRef{m1, job, cluster::TaskKind::Map, small, 1.0},
        sched::TaskRef{m2, job, cluster::TaskKind::Map, small, 1.0},
        sched::TaskRef{r1, job, cluster::TaskKind::Reduce, big, 1.0},
        sched::TaskRef{r2, job, cluster::TaskKind::Reduce, big, 1.0},
    };
    net::Flow f;
    f.id = ids.next_flow();
    f.job = job;
    f.src_task = m1;
    f.dst_task = m2;
    f.size_gb = 1.0;
    f.rate = 0.1;
    flows.push_back(f);
    problem.flows = flows;
    // Only servers 0 and 1 have headroom.
    problem.base_usage.assign(world->cluster.size(), cluster::Resource{5.0, 20.0});
    problem.base_usage[0] = cluster::Resource{};
    problem.base_usage[1] = cluster::Resource{};
  }
};

TEST(DegradationLadder, RandomRungRescuesCorneredGreedy) {
  CorneredFixture fixture;
  bool served_random = false;
  for (std::uint64_t seed = 0; seed < 16 && !served_random; ++seed) {
    HitScheduler scheduler(laddered());
    Rng rng(seed);
    try {
      const auto assignment = scheduler.schedule(fixture.problem, rng);
      ASSERT_EQ(scheduler.last_tier(), LadderTier::Random);
      EXPECT_EQ(assignment.placement.size(), fixture.problem.tasks.size());
      sched::validate_assignment(fixture.problem, assignment);
      served_random = true;
    } catch (const std::runtime_error&) {
      // This seed's random draw also cornered itself; try the next one.
      EXPECT_EQ(scheduler.last_tier(), LadderTier::Full)
          << "throwing run should not have recorded a served tier";
    }
  }
  EXPECT_TRUE(served_random) << "no seed in the sweep reached the random rung";
}

TEST(DegradationLadder, TierNames) {
  EXPECT_STREQ(ladder_tier_name(LadderTier::Full), "full");
  EXPECT_STREQ(ladder_tier_name(LadderTier::PreferenceOnly), "preference-only");
  EXPECT_STREQ(ladder_tier_name(LadderTier::LocalityGreedy), "locality-greedy");
  EXPECT_STREQ(ladder_tier_name(LadderTier::Random), "random");
}

}  // namespace
}  // namespace hit::core
