#include "core/recovery/recovery.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "network/routing.h"
#include "topology/builders.h"

namespace hit::core::recovery {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  // Depth-2 tree, 4 access positions x 1 host, 2 core replicas: every
  // cross-rack pair has a two-core choice, so a single core failure always
  // leaves a detour while an access-switch failure strands its server.
  topo::TreeConfig tree_{2, 4, 2, 1, 16.0, 32.0};
  topo::Topology topo_ = topo::make_tree(tree_);

  net::Flow flow(unsigned id, double rate) {
    net::Flow f;
    f.id = FlowId(id);
    f.size_gb = rate;
    f.rate = rate;
    return f;
  }

  NodeId server(std::size_t i) { return topo_.servers()[i]; }

  /// The access switch `s` hangs off: the sole first hop of its routes.
  NodeId access_of(std::size_t s) {
    return net::shortest_policy(topo_, server(s), server((s + 1) % 4),
                                FlowId(999))
        .list.front();
  }

  void install(NetworkController& c, unsigned id, std::size_t from,
               std::size_t to, double rate = 1.0) {
    const net::Policy p =
        net::shortest_policy(topo_, server(from), server(to), FlowId(id));
    c.install(flow(id, rate), p, server(from), server(to));
  }
};

// ---- crash-at-every-prefix property ---------------------------------------

// Drive a journaled controller through every mutation class, checkpointing
// the live state after each step; rebuild() at each checkpoint must be
// byte-identical to the state the uncrashed controller actually had —
// whether the rebuild starts from the empty state or from a mid-sequence
// snapshot.
TEST_F(RecoveryTest, RebuildAtEveryPrefixMatchesLiveState) {
  for (const std::size_t snapshot_every : {std::size_t{0}, std::size_t{3}}) {
    RecoveryManagerConfig rconfig;
    rconfig.snapshot_every_records = snapshot_every;
    RecoveryManager manager(rconfig);
    NetworkController controller(topo_);
    manager.attach(controller);

    // (journal position, canonical state bytes) after each operation.
    std::vector<std::pair<std::size_t, std::string>> checkpoints;
    const auto checkpoint = [&] {
      checkpoints.emplace_back(manager.journal().size(),
                               controller.export_state().encode());
      manager.maybe_snapshot(controller);
    };

    checkpoint();  // empty prefix
    install(controller, 1, 0, 2, 4.0);
    checkpoint();
    install(controller, 2, 1, 3, 2.0);
    checkpoint();
    install(controller, 3, 0, 3, 1.0);
    checkpoint();
    controller.drain(topo_.switches()[0]);
    checkpoint();
    controller.fail(access_of(0));  // strands flows 1 and 3 -> parked
    checkpoint();
    controller.quarantine(access_of(1));
    checkpoint();
    controller.probe(access_of(1), true);
    checkpoint();
    controller.recover(access_of(0));  // readmits the parked flows
    checkpoint();
    controller.probe(access_of(1), true);  // second pass -> reinstated
    checkpoint();
    controller.undrain(topo_.switches()[0]);
    checkpoint();
    controller.remove(FlowId(2));
    checkpoint();
    manager.note_aimd_limit(16.0);
    manager.note_tenant_quota(1, 0.5);
    checkpoint();

    ASSERT_GT(manager.journal().size(), 10u);
    if (snapshot_every > 0) {
      ASSERT_GT(manager.snapshots_cut(), 0u);
    }

    for (const auto& [prefix, expected] : checkpoints) {
      const RebuiltState rebuilt = manager.rebuild(prefix);
      EXPECT_EQ(rebuilt.controller.encode(), expected)
          << "prefix " << prefix << " snapshot_every " << snapshot_every;
    }

    // Full recovery into a fresh controller reproduces the final state and
    // the admission aux state.
    NetworkController restored(topo_);
    const RebuiltState rebuilt = manager.recover(restored);
    EXPECT_EQ(restored.export_state().encode(), checkpoints.back().second);
    EXPECT_TRUE(rebuilt.admission.has_aimd);
    EXPECT_DOUBLE_EQ(rebuilt.admission.aimd_limit, 16.0);
    ASSERT_EQ(rebuilt.admission.tenant_quotas.size(), 1u);
    EXPECT_EQ(rebuilt.admission.tenant_quotas[0].first, 1u);
    // The restored controller passes its own audit.
    EXPECT_TRUE(restored.audit_violations().empty());
  }
}

// ---- reconcile regressions ------------------------------------------------

// A flow parked because its access switch died; the switch was repaired
// while the controller was down.  Reconcile must detect the missed repair,
// readmit the orphan, and end clean.
TEST_F(RecoveryTest, ReconcileReadmitsOrphanedParkedFlows) {
  RecoveryManager manager;
  NetworkController controller(topo_);
  manager.attach(controller);
  install(controller, 1, 0, 2, 4.0);
  controller.fail(access_of(0));
  ASSERT_EQ(controller.parked_count(), 1u);

  // Crash: rebuild into a fresh controller.  The hardware healed meanwhile.
  NetworkController restored(topo_);
  manager.recover(restored);
  ASSERT_EQ(restored.parked_count(), 1u);
  ASSERT_TRUE(restored.failed(access_of(0)));

  LiveView live;
  live.healthy_switches.push_back(access_of(0));
  const ReconcileReport report = reconcile(restored, live);

  EXPECT_TRUE(report.clean());
  EXPECT_GE(report.flows_readmitted, 1u);
  EXPECT_EQ(restored.parked_count(), 0u);
  EXPECT_FALSE(restored.failed(access_of(0)));
  bool saw_missed_repair = false;
  for (const Divergence& d : report.divergences) {
    if (d.kind == DivergenceKind::MissedRepair && d.node == access_of(0)) {
      saw_missed_repair = true;
      EXPECT_TRUE(d.repaired);
    }
  }
  EXPECT_TRUE(saw_missed_repair);
  EXPECT_TRUE(restored.audit_violations().empty());
}

// A switch quarantined before the crash was verified healthy during the
// blackout: the restored controller keeps paying the routing penalty until
// reconcile reinstates it.
TEST_F(RecoveryTest, ReconcileLiftsStaleQuarantine) {
  RecoveryManager manager;
  NetworkController controller(topo_);
  manager.attach(controller);
  install(controller, 1, 0, 2, 1.0);
  controller.quarantine(access_of(1));
  ASSERT_TRUE(controller.quarantined(access_of(1)));

  NetworkController restored(topo_);
  manager.recover(restored);
  ASSERT_TRUE(restored.quarantined(access_of(1)));

  LiveView live;
  live.healthy_switches.push_back(access_of(1));
  const ReconcileReport report = reconcile(restored, live);

  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.reinstated, 1u);
  EXPECT_FALSE(restored.quarantined(access_of(1)));
  bool saw_stale = false;
  for (const Divergence& d : report.divergences) {
    saw_stale |= d.kind == DivergenceKind::StaleQuarantine && d.repaired;
  }
  EXPECT_TRUE(saw_stale);
}

// A core switch died *during* the blackout: the restored state still routes
// a flow across it.  Reconcile must apply the missed failure and move the
// flow to the twin core.
TEST_F(RecoveryTest, ReconcileAppliesMissedFailures) {
  RecoveryManager manager;
  NetworkController controller(topo_);
  manager.attach(controller);
  install(controller, 1, 0, 2, 4.0);
  const NodeId core = controller.policy_of(FlowId(1)).list[1];

  NetworkController restored(topo_);
  manager.recover(restored);

  LiveView live;
  live.failed_switches.push_back(core);
  const ReconcileReport report = reconcile(restored, live);

  EXPECT_TRUE(report.clean());
  EXPECT_GE(report.flows_rerouted, 1u);
  EXPECT_TRUE(restored.failed(core));
  const net::Policy& after = restored.policy_of(FlowId(1));
  for (NodeId sw : after.list) EXPECT_NE(sw, core);
  EXPECT_TRUE(restored.audit_violations().empty());
}

// Reconciliation actions are themselves journaled: a second crash right
// after reconcile recovers to the reconciled state.
TEST_F(RecoveryTest, PostReconcileCrashRecoversReconciledState) {
  RecoveryManager manager;
  NetworkController controller(topo_);
  manager.attach(controller);
  install(controller, 1, 0, 2, 4.0);
  controller.fail(access_of(0));

  NetworkController restored(topo_);
  manager.recover(restored);
  manager.attach(restored);  // journal keeps extending across the restart
  LiveView live;
  live.healthy_switches.push_back(access_of(0));
  reconcile(restored, live);
  const std::string reconciled = restored.export_state().encode();

  NetworkController second(topo_);
  manager.recover(second);
  EXPECT_EQ(second.export_state().encode(), reconciled);
}

}  // namespace
}  // namespace hit::core::recovery
