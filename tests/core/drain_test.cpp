// Controller maintenance drains: a drained switch must end up carrying no
// reroutable flows, regardless of relative congestion.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "network/routing.h"
#include "topology/builders.h"
#include "util/rng.h"

namespace hit::core {
namespace {

class DrainTest : public ::testing::Test {
 protected:
  // 2 redundant cores, 4 access positions, 1 host each.
  topo::TreeConfig tree_{2, 4, 2, 1, 16.0, 32.0};
  topo::Topology topo_ = topo::make_tree(tree_);
  NetworkController controller_{topo_, ControllerConfig{}};

  net::Flow flow(unsigned id, double rate) {
    net::Flow f;
    f.id = FlowId(id);
    f.size_gb = rate;
    f.rate = rate;
    return f;
  }

  NodeId first_core() {
    for (NodeId w : topo_.switches()) {
      if (topo_.tier(w) == topo::Tier::Core) return w;
    }
    return NodeId{};
  }
};

TEST_F(DrainTest, DrainEmptiesTheSwitch) {
  const auto servers = topo_.servers();
  // Several cross-rack flows; shortest routing piles onto the first core.
  for (unsigned i = 0; i < 6; ++i) {
    const NodeId a = servers[i % servers.size()];
    const NodeId b = servers[(i + 2) % servers.size()];
    controller_.install(flow(i, 2.0), net::shortest_policy(topo_, a, b, FlowId(i)),
                        a, b);
  }
  const NodeId core = first_core();
  ASSERT_GT(controller_.load().load(core), 0.0);

  controller_.drain(core);
  EXPECT_TRUE(controller_.draining(core));
  (void)controller_.rebalance();
  controller_.audit();

  for (unsigned i = 0; i < 6; ++i) {
    const auto& list = controller_.policy_of(FlowId(i)).list;
    EXPECT_EQ(std::count(list.begin(), list.end(), core), 0) << "flow " << i;
  }
}

TEST_F(DrainTest, DrainIsIdempotentAndReversible) {
  const NodeId core = first_core();
  const double before = controller_.load().load(core);
  controller_.drain(core);
  controller_.drain(core);  // idempotent
  EXPECT_DOUBLE_EQ(controller_.load().residual(core), 0.0);
  controller_.undrain(core);
  EXPECT_FALSE(controller_.draining(core));
  EXPECT_DOUBLE_EQ(controller_.load().load(core), before);
  controller_.undrain(core);  // idempotent
  controller_.audit();
}

TEST_F(DrainTest, DrainRejectsServers) {
  EXPECT_THROW(controller_.drain(topo_.servers()[0]), std::invalid_argument);
}

TEST_F(DrainTest, NewRoutesAvoidDrainedSwitch) {
  const NodeId core = first_core();
  controller_.drain(core);
  // Residual is zero, so capacity-aware routing cannot use it.
  const auto servers = topo_.servers();
  PolicyOptimizer optimizer(topo_);
  const NodeId srcs[] = {servers[0]};
  const NodeId dsts[] = {servers[2]};
  const auto route = optimizer.optimal_route(srcs, dsts, FlowId(99), 1.0, 1.0,
                                             controller_.load());
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(std::count(route->policy.list.begin(), route->policy.list.end(), core),
            0);
}

}  // namespace
}  // namespace hit::core
