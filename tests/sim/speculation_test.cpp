// LATE-style speculative execution over the straggler model.
#include <gtest/gtest.h>

#include "sched/capacity_scheduler.h"
#include "sim/engine.h"
#include "test_helpers.h"

namespace hit::sim {
namespace {

std::vector<mr::Job> jobs_for(mr::IdAllocator& ids) {
  mr::WorkloadConfig config;
  config.num_jobs = 3;
  config.max_maps_per_job = 6;
  config.max_reduces_per_job = 2;
  config.block_size_gb = 3.0;
  const mr::WorkloadGenerator gen(config);
  Rng rng(1);
  return gen.generate(ids, rng);
}

SimResult run(const test::World& world, double jitter, double threshold,
              std::size_t* copies = nullptr) {
  sched::CapacityScheduler scheduler;
  mr::IdAllocator ids;
  const auto jobs = jobs_for(ids);
  SimConfig config;
  config.map_time_jitter_sigma = jitter;
  config.speculation_threshold = threshold;
  Rng rng(2);
  const SimResult result =
      ClusterSimulator(world.cluster, config).run(scheduler, jobs, ids, rng);
  if (copies != nullptr) *copies = result.speculative_copies;
  return result;
}

TEST(Speculation, OffByDefault) {
  auto world = test::small_tree_world();
  const SimResult result = run(*world, 0.6, 0.0);
  EXPECT_EQ(result.speculative_copies, 0u);
}

TEST(Speculation, NoCopiesWithoutStragglers) {
  auto world = test::small_tree_world();
  const SimResult result = run(*world, 0.0, 1.5);
  EXPECT_EQ(result.speculative_copies, 0u);
}

TEST(Speculation, CutsStragglerTails) {
  auto world = test::small_tree_world();
  std::size_t copies = 0;
  const SimResult without = run(*world, 0.8, 0.0);
  const SimResult with = run(*world, 0.8, 1.5, &copies);
  EXPECT_GT(copies, 0u);
  // Every launch resolves as either won (backup beat the original) or lost.
  EXPECT_EQ(with.speculative_won + with.speculative_lost,
            with.speculative_copies);
  EXPECT_GT(with.speculative_won, 0u);
  EXPECT_LT(with.makespan, without.makespan);
  // Map-phase tail (max map duration) shrinks.
  double tail_without = 0.0, tail_with = 0.0;
  for (double d : without.task_durations(cluster::TaskKind::Map)) {
    tail_without = std::max(tail_without, d);
  }
  for (double d : with.task_durations(cluster::TaskKind::Map)) {
    tail_with = std::max(tail_with, d);
  }
  EXPECT_LT(tail_with, tail_without);
}

TEST(Speculation, NeverSlowsAnyMapDown) {
  auto world = test::small_tree_world();
  const SimResult without = run(*world, 0.8, 0.0);
  const SimResult with = run(*world, 0.8, 1.5);
  const auto a = without.task_durations(cluster::TaskKind::Map);
  const auto b = with.task_durations(cluster::TaskKind::Map);
  ASSERT_EQ(a.size(), b.size());
  // Wave composition is identical (same placement), so durations align
  // index-wise; a backup can only shorten a task.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LE(b[i], a[i] + 1e-9);
  }
}

}  // namespace
}  // namespace hit::sim
