// Straggler model: lognormal map-time jitter.
#include <gtest/gtest.h>

#include <map>

#include "sched/capacity_scheduler.h"
#include "sim/engine.h"
#include "stats/summary.h"
#include "test_helpers.h"

namespace hit::sim {
namespace {

std::vector<mr::Job> jobs_for(mr::IdAllocator& ids) {
  mr::WorkloadConfig config;
  config.num_jobs = 3;
  config.max_maps_per_job = 4;
  config.max_reduces_per_job = 2;
  config.block_size_gb = 4.0;
  const mr::WorkloadGenerator gen(config);
  Rng rng(1);
  return gen.generate(ids, rng);
}

TEST(Straggler, ZeroSigmaIsDeterministicBaseline) {
  auto world = test::small_tree_world();
  sched::CapacityScheduler scheduler;
  mr::IdAllocator ids1, ids2;
  const auto j1 = jobs_for(ids1);
  const auto j2 = jobs_for(ids2);
  SimConfig plain;
  SimConfig with_zero_jitter;
  with_zero_jitter.map_time_jitter_sigma = 0.0;
  Rng rng1(2), rng2(2);
  const double a =
      ClusterSimulator(world->cluster, plain).run(scheduler, j1, ids1, rng1).makespan;
  const double b = ClusterSimulator(world->cluster, with_zero_jitter)
                       .run(scheduler, j2, ids2, rng2)
                       .makespan;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Straggler, JitterSpreadsMapDurations) {
  auto world = test::small_tree_world();
  sched::CapacityScheduler scheduler;

  auto spread = [&](double sigma) {
    mr::IdAllocator ids;
    const auto jobs = jobs_for(ids);
    SimConfig config;
    config.map_time_jitter_sigma = sigma;
    Rng rng(3);
    const SimResult result =
        ClusterSimulator(world->cluster, config).run(scheduler, jobs, ids, rng);
    hit::stats::RunningSummary s;
    for (double d : result.task_durations(cluster::TaskKind::Map)) s.add(d);
    return s.stddev() / s.mean();  // coefficient of variation
  };

  EXPECT_GT(spread(0.5), spread(0.0) + 0.05);
}

TEST(Straggler, JitterIsSeedStableAndSchedulerIndependent) {
  // The same (seed, task) pair must face the same straggler regardless of
  // which scheduler runs — fairness of comparison.
  auto world = test::small_tree_world();
  SimConfig config;
  config.map_time_jitter_sigma = 0.4;

  auto run_with = [&](sched::Scheduler& s) {
    mr::IdAllocator ids;
    const auto jobs = jobs_for(ids);
    Rng rng(4);
    const SimResult result =
        ClusterSimulator(world->cluster, config).run(s, jobs, ids, rng);
    std::map<TaskId, double> durations;
    for (const TaskTiming& t : result.tasks) {
      if (t.kind == cluster::TaskKind::Map) durations[t.id] = t.duration();
    }
    return durations;
  };

  sched::CapacityScheduler capacity;
  const auto a = run_with(capacity);
  const auto b = run_with(capacity);
  EXPECT_EQ(a, b);  // bit-identical across runs
}

}  // namespace
}  // namespace hit::sim
