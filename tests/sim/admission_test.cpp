// Admission control in the online simulator: overload runs that used to
// abort now complete with shed accounting.  Covers every policy, the
// priority-aware victim choice, determinism at a fixed seed, and the
// validation of nonsensical configs.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "core/errors.h"
#include "mapreduce/workload.h"
#include "sched/capacity_scheduler.h"
#include "sim/online.h"
#include "test_helpers.h"

namespace hit::sim {
namespace {

// Jobs sized so only one runs at a time on the 16-slot small tree: 12 maps
// + 2 reduces = 14 containers each.  A burst of them guarantees queueing.
std::vector<mr::Job> big_jobs(mr::IdAllocator& ids, std::size_t n) {
  mr::WorkloadConfig config;
  config.max_maps_per_job = 12;
  config.max_reduces_per_job = 2;
  config.block_size_gb = 1.0;
  const mr::WorkloadGenerator gen(config);
  std::vector<mr::Job> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(gen.make_job(mr::profile("terasort"), 12.0, ids));
  }
  return jobs;
}

OnlineConfig burst_config(AdmissionPolicy policy, std::size_t max_queue = 0,
                          double max_queue_wait = 0.0) {
  OnlineConfig config;
  config.arrival_rate = 100.0;  // near-simultaneous arrivals
  config.admission.policy = policy;
  config.admission.max_queue = max_queue;
  config.max_queue_wait = max_queue_wait;
  return config;
}

class AdmissionTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();  // 16 slots
  sched::CapacityScheduler capacity_;

  OnlineResult run(const OnlineConfig& config, std::size_t n_jobs,
                   std::uint64_t seed = 3) {
    mr::IdAllocator ids;
    auto jobs = big_jobs(ids, n_jobs);
    const OnlineSimulator sim(world_->cluster, config);
    Rng rng(seed);
    return sim.run(capacity_, jobs, ids, rng);
  }
};

TEST_F(AdmissionTest, UnboundedStillThrowsTypedOverloadError) {
  EXPECT_THROW((void)run(burst_config(AdmissionPolicy::Unbounded, 0,
                                      /*max_queue_wait=*/1.0),
                         6),
               core::OverloadError);
}

TEST_F(AdmissionTest, RejectNewCompletesWithShedAccounting) {
  const OnlineResult result =
      run(burst_config(AdmissionPolicy::RejectNew, /*max_queue=*/1), 6);
  EXPECT_TRUE(result.overload.any());
  EXPECT_GT(result.overload.shed_on_arrival, 0u);
  EXPECT_EQ(result.overload.shed_for_room, 0u);
  EXPECT_EQ(result.overload.jobs_shed, result.shed.size());
  EXPECT_EQ(result.jobs.size() + result.shed.size(), 6u);
  EXPECT_GT(result.overload.shed_gb, 0.0);
  EXPECT_GE(result.overload.peak_queue_depth, 1u);
  for (const auto& record : result.shed) {
    EXPECT_EQ(record.reason, ShedReason::QueueFull);
    EXPECT_GE(record.shed_at, record.arrival);
  }
}

TEST_F(AdmissionTest, DropOldestDisplacesLowestPriorityWaiter) {
  mr::IdAllocator ids;
  auto jobs = big_jobs(ids, 3);
  // Job 0 occupies the cluster; job 1 (Low) waits; job 2 (Normal) arrives to
  // a full one-slot queue and must displace the lower-priority waiter.
  jobs[1].priority = mr::Priority::Low;
  const OnlineSimulator sim(
      world_->cluster,
      burst_config(AdmissionPolicy::DropOldest, /*max_queue=*/1));
  Rng rng(3);
  const OnlineResult result = sim.run(capacity_, jobs, ids, rng);
  ASSERT_EQ(result.shed.size(), 1u);
  EXPECT_EQ(result.shed[0].id, jobs[1].id);
  EXPECT_EQ(result.shed[0].priority, mr::Priority::Low);
  EXPECT_EQ(result.shed[0].reason, ShedReason::Displaced);
  EXPECT_EQ(result.overload.shed_for_room, 1u);
  EXPECT_EQ(result.jobs.size(), 2u);
}

TEST_F(AdmissionTest, DropOldestShedsArrivalWhenOutranked) {
  mr::IdAllocator ids;
  auto jobs = big_jobs(ids, 3);
  // The waiter is High, the newcomer Low: the newcomer sheds itself.
  jobs[1].priority = mr::Priority::High;
  jobs[2].priority = mr::Priority::Low;
  const OnlineSimulator sim(
      world_->cluster,
      burst_config(AdmissionPolicy::DropOldest, /*max_queue=*/1));
  Rng rng(3);
  const OnlineResult result = sim.run(capacity_, jobs, ids, rng);
  ASSERT_EQ(result.shed.size(), 1u);
  EXPECT_EQ(result.shed[0].id, jobs[2].id);
  EXPECT_EQ(result.shed[0].reason, ShedReason::QueueFull);
  EXPECT_EQ(result.jobs.size(), 2u);
}

TEST_F(AdmissionTest, DropOldestPrefersLowestClassThenOldestAmongWaiters) {
  mr::IdAllocator ids;
  auto jobs = big_jobs(ids, 5);
  // Job 0 runs; jobs 1 (Normal), 2 (Low), 3 (Low) wait in a three-slot
  // queue.  Job 4 (Normal) arrives to a full queue: the victim must come
  // from the lowest class and, within it, be the oldest arrival — job 2.
  jobs[2].priority = mr::Priority::Low;
  jobs[3].priority = mr::Priority::Low;
  const OnlineSimulator sim(
      world_->cluster,
      burst_config(AdmissionPolicy::DropOldest, /*max_queue=*/3));
  Rng rng(3);
  const OnlineResult result = sim.run(capacity_, jobs, ids, rng);
  ASSERT_EQ(result.shed.size(), 1u);
  EXPECT_EQ(result.shed[0].id, jobs[2].id);
  EXPECT_EQ(result.shed[0].priority, mr::Priority::Low);
  EXPECT_EQ(result.shed[0].reason, ShedReason::Displaced);
  EXPECT_EQ(result.jobs.size(), 4u);
}

TEST_F(AdmissionTest, DropOldestEvictionOrderSurvivesRestartRestamp) {
  // Regression: the within-class tie-break must use the true arrival time,
  // not queued_since, which a fault restart re-stamps.  Job 0 (the oldest)
  // is knocked back into the queue by a reduce-server failure; when job 3
  // then arrives to a full queue, job 0 must still be the eviction victim.
  // With the old queued_since tie-break the restart made job 0 look newest
  // and job 1 was evicted instead.
  constexpr double kRate = 100.0;
  constexpr std::uint64_t kSeed = 3;
  // Replicate the simulator's arrival stream (fork is salt-based off the
  // seed, so this matches bit-for-bit) to aim the fault between the third
  // and fourth arrivals.
  Rng probe(kSeed);
  Rng arrival_rng = probe.fork(0x41525256);
  std::vector<double> arrivals(4);
  double clock = 0.0;
  for (double& a : arrivals) {
    clock += arrival_rng.exponential(kRate);
    a = clock;
  }
  const double fault_at = (arrivals[2] + arrivals[3]) / 2.0;
  ASSERT_GT(fault_at, arrivals[2]);
  ASSERT_LT(fault_at, arrivals[3]);

  // The scheduler's reduce placement is deterministic but opaque here, so
  // scan server pairs until the fault hits a reduce host of job 0 (which
  // restarts it).  Two servers fail so the 14-container jobs cannot be
  // rescheduled into the remaining 12 slots before job 3 arrives.
  const std::size_t n_servers = world_->topology.servers().size();
  bool exercised = false;
  for (std::size_t s = 0; s < n_servers; ++s) {
    mr::IdAllocator ids;
    auto jobs = big_jobs(ids, 4);
    OnlineConfig config = burst_config(AdmissionPolicy::DropOldest,
                                       /*max_queue=*/2);
    config.sim.faults.fail_server(world_->topology.servers()[s], fault_at,
                                  /*repair_after=*/50.0);
    config.sim.faults.fail_server(
        world_->topology.servers()[(s + 1) % n_servers], fault_at,
        /*repair_after=*/50.0);
    const OnlineSimulator sim(world_->cluster, config);
    Rng rng(kSeed);
    const OnlineResult result = sim.run(capacity_, jobs, ids, rng);
    if (result.recovery.jobs_restarted == 0) continue;  // hit maps only
    exercised = true;
    ASSERT_EQ(result.shed.size(), 1u);
    EXPECT_EQ(result.shed[0].id, jobs[0].id)
        << "restart re-stamp changed the eviction victim";
    EXPECT_EQ(result.shed[0].reason, ShedReason::Displaced);
    break;
  }
  EXPECT_TRUE(exercised) << "no server pair restarted job 0";
}

TEST_F(AdmissionTest, DeadlineShedCompletesWhereUnboundedAborts) {
  const OnlineResult result = run(
      burst_config(AdmissionPolicy::DeadlineShed, 0, /*max_queue_wait=*/1.0),
      6);
  EXPECT_GT(result.overload.shed_deadline, 0u);
  EXPECT_EQ(result.jobs.size() + result.shed.size(), 6u);
  for (const auto& record : result.shed) {
    EXPECT_EQ(record.reason, ShedReason::Deadline);
    EXPECT_GT(record.waited(), 1.0);
  }
  // Completed jobs' queueing delays stayed within reach of the deadline at
  // grant time (they were never shed).
  EXPECT_FALSE(result.jobs.empty());
}

TEST_F(AdmissionTest, ShedJobsContributeNoFlows) {
  const OnlineResult result = run(
      burst_config(AdmissionPolicy::DeadlineShed, 0, /*max_queue_wait=*/1.0),
      6);
  ASSERT_FALSE(result.shed.empty());
  std::unordered_set<JobId> shed_ids;
  for (const auto& record : result.shed) shed_ids.insert(record.id);
  for (const auto& timing : result.flows) {
    EXPECT_EQ(shed_ids.count(timing.job), 0u)
        << "shed job leaked flow timings";
  }
}

TEST_F(AdmissionTest, SheddingIsDeterministicPerSeed) {
  const auto once = [&] {
    return run(
        burst_config(AdmissionPolicy::DeadlineShed, 0, /*max_queue_wait=*/1.0),
        8, /*seed=*/17);
  };
  const OnlineResult a = once();
  const OnlineResult b = once();
  ASSERT_EQ(a.shed.size(), b.shed.size());
  for (std::size_t i = 0; i < a.shed.size(); ++i) {
    EXPECT_EQ(a.shed[i].id, b.shed[i].id);
    EXPECT_EQ(a.shed[i].reason, b.shed[i].reason);
    EXPECT_DOUBLE_EQ(a.shed[i].shed_at, b.shed[i].shed_at);
  }
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
  }
}

TEST_F(AdmissionTest, DefaultConfigShedsNothing) {
  // Spread-out arrivals under the default strict policy: zero OverloadStats.
  OnlineConfig config;
  config.arrival_rate = 0.01;
  const OnlineResult result = run(config, 4);
  EXPECT_FALSE(result.overload.any());
  EXPECT_TRUE(result.shed.empty());
  EXPECT_EQ(result.jobs.size(), 4u);
}

TEST_F(AdmissionTest, InvalidAdmissionConfigsRejected) {
  // Bounded policies need a queue capacity.
  EXPECT_THROW((void)OnlineSimulator(
                   world_->cluster,
                   burst_config(AdmissionPolicy::RejectNew, /*max_queue=*/0)),
               std::invalid_argument);
  EXPECT_THROW((void)OnlineSimulator(
                   world_->cluster,
                   burst_config(AdmissionPolicy::DropOldest, /*max_queue=*/0)),
               std::invalid_argument);
  // DeadlineShed is meaningless without a wait bound.
  EXPECT_THROW(
      (void)OnlineSimulator(world_->cluster,
                            burst_config(AdmissionPolicy::DeadlineShed, 0,
                                         /*max_queue_wait=*/0.0)),
      std::invalid_argument);
}

TEST_F(AdmissionTest, PolicyAndReasonNames) {
  EXPECT_STREQ(admission_policy_name(AdmissionPolicy::Unbounded), "unbounded");
  EXPECT_STREQ(admission_policy_name(AdmissionPolicy::RejectNew), "reject-new");
  EXPECT_STREQ(admission_policy_name(AdmissionPolicy::DropOldest),
               "drop-oldest");
  EXPECT_STREQ(admission_policy_name(AdmissionPolicy::DeadlineShed),
               "deadline-shed");
  EXPECT_STREQ(admission_policy_name(AdmissionPolicy::Aimd), "aimd");
  EXPECT_STREQ(shed_reason_name(ShedReason::QueueFull), "queue-full");
  EXPECT_STREQ(shed_reason_name(ShedReason::Displaced), "displaced");
  EXPECT_STREQ(shed_reason_name(ShedReason::Deadline), "deadline");
}

TEST(PriorityMixTest, WorkloadGeneratesConfiguredPriorityMix) {
  mr::WorkloadConfig config;
  config.num_jobs = 60;
  config.low_priority_fraction = 0.3;
  config.high_priority_fraction = 0.2;
  const mr::WorkloadGenerator gen(config);
  mr::IdAllocator ids;
  Rng rng(5);
  const auto jobs = gen.generate(ids, rng);
  std::size_t low = 0, normal = 0, high = 0;
  for (const auto& job : jobs) {
    switch (job.priority) {
      case mr::Priority::Low: ++low; break;
      case mr::Priority::Normal: ++normal; break;
      case mr::Priority::High: ++high; break;
    }
  }
  EXPECT_GT(low, 0u);
  EXPECT_GT(normal, 0u);
  EXPECT_GT(high, 0u);
  EXPECT_EQ(low + normal + high, jobs.size());
}

TEST(PriorityMixTest, DefaultMixIsAllNormalAndBitIdentical) {
  // Fractions of zero must not consume randomness from the job stream: two
  // generators differing only in the (defaulted) mix agree bit-for-bit.
  const auto generate = [](double low, double high) {
    mr::WorkloadConfig config;
    config.num_jobs = 10;
    config.low_priority_fraction = low;
    config.high_priority_fraction = high;
    const mr::WorkloadGenerator gen(config);
    mr::IdAllocator ids;
    Rng rng(9);
    return gen.generate(ids, rng);
  };
  const auto plain = generate(0.0, 0.0);
  const auto mixed = generate(0.5, 0.25);
  ASSERT_EQ(plain.size(), mixed.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].priority, mr::Priority::Normal);
    EXPECT_EQ(plain[i].shuffle_gb, mixed[i].shuffle_gb);
    EXPECT_EQ(plain[i].maps.size(), mixed[i].maps.size());
    EXPECT_EQ(plain[i].benchmark, mixed[i].benchmark);
  }
}

TEST(PriorityMixTest, InvalidFractionsRejected) {
  mr::WorkloadConfig config;
  config.low_priority_fraction = 0.8;
  config.high_priority_fraction = 0.4;  // sum > 1
  EXPECT_THROW((void)mr::WorkloadGenerator(config), std::invalid_argument);
  config.low_priority_fraction = -0.1;
  config.high_priority_fraction = 0.0;
  EXPECT_THROW((void)mr::WorkloadGenerator(config), std::invalid_argument);
}

TEST(PriorityNameTest, Names) {
  EXPECT_EQ(mr::priority_name(mr::Priority::Low), "low");
  EXPECT_EQ(mr::priority_name(mr::Priority::Normal), "normal");
  EXPECT_EQ(mr::priority_name(mr::Priority::High), "high");
}

}  // namespace
}  // namespace hit::sim
