#include "sim/faults.h"

#include <gtest/gtest.h>

#include "network/routing.h"
#include "topology/builders.h"

namespace hit::sim {
namespace {

class FaultsTest : public ::testing::Test {
 protected:
  // Depth-2 tree, 4 access positions x 1 host, 2 core replicas: every
  // server pair has a two-core choice, so single-switch faults always
  // leave a detour.
  topo::TreeConfig tree_{2, 4, 2, 1};
  topo::Topology topo_ = topo::make_tree(tree_);

  NodeId server(std::size_t i) { return topo_.servers()[i]; }
};

TEST_F(FaultsTest, ScriptedPlanStaysSorted) {
  FaultPlan plan;
  plan.fail_switch(topo_.switches()[0], 30.0, 5.0);
  plan.fail_server(server(0), 10.0);
  plan.fail_link(server(0), topo_.switches()[0], 20.0, 100.0);
  ASSERT_EQ(plan.size(), 5u);
  for (std::size_t i = 1; i < plan.events().size(); ++i) {
    EXPECT_LE(plan.events()[i - 1].time, plan.events()[i].time);
  }
  EXPECT_EQ(plan.events()[0].target, FaultTarget::Server);
  EXPECT_EQ(plan.events()[1].target, FaultTarget::Link);
  EXPECT_EQ(plan.events()[2].target, FaultTarget::Switch);
}

TEST_F(FaultsTest, ScriptedPlanValidatesInputs) {
  FaultPlan plan;
  EXPECT_THROW(plan.fail_switch(topo_.switches()[0], -1.0),
               std::invalid_argument);
  EXPECT_THROW(plan.fail_link(server(0), server(0), 1.0),
               std::invalid_argument);
}

TEST_F(FaultsTest, GenerateIsAPureFunctionOfSeed) {
  MtbfConfig config;
  config.horizon = 500.0;
  config.switch_mtbf = 100.0;
  config.switch_mttr = 20.0;
  config.server_mtbf = 150.0;
  config.server_mttr = 10.0;
  config.link_mtbf = 200.0;
  config.link_mttr = 30.0;

  const FaultPlan a = FaultPlan::generate(topo_, config, 42);
  const FaultPlan b = FaultPlan::generate(topo_, config, 42);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].target, b.events()[i].target);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
  }

  const FaultPlan c = FaultPlan::generate(topo_, config, 43);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.events()[i].time != c.events()[i].time;
  }
  EXPECT_TRUE(differs);
}

TEST_F(FaultsTest, GenerateRepairsEveryFailureWhenMttrPositive) {
  MtbfConfig config;
  config.horizon = 300.0;
  config.switch_mtbf = 50.0;
  config.switch_mttr = 25.0;
  const FaultPlan plan = FaultPlan::generate(topo_, config, 7);
  ASSERT_GT(plan.size(), 0u);
  std::size_t fails = 0;
  std::size_t recovers = 0;
  for (const FaultEvent& ev : plan.events()) {
    EXPECT_EQ(ev.target, FaultTarget::Switch);
    (ev.kind == FaultKind::Fail ? fails : recovers) += 1;
    EXPECT_LT(ev.kind == FaultKind::Fail ? ev.time : 0.0, config.horizon);
  }
  EXPECT_EQ(fails, recovers);  // repairs complete even past the horizon
}

TEST_F(FaultsTest, ZeroMttrMakesFailuresPermanent) {
  MtbfConfig config;
  config.horizon = 400.0;
  config.server_mtbf = 50.0;
  config.server_mttr = 0.0;
  const FaultPlan plan = FaultPlan::generate(topo_, config, 7);
  ASSERT_GT(plan.size(), 0u);
  std::size_t per_server = 0;
  for (const FaultEvent& ev : plan.events()) {
    EXPECT_EQ(ev.kind, FaultKind::Fail);
    if (ev.node == server(0)) ++per_server;
  }
  EXPECT_LE(per_server, 1u);  // one permanent failure per element at most
}

TEST_F(FaultsTest, GenerateValidatesHorizonAndSkipsZeroMtbf) {
  MtbfConfig config;
  EXPECT_THROW(FaultPlan::generate(topo_, config, 1), std::invalid_argument);
  config.horizon = 100.0;  // all mtbf zero: nothing fails
  EXPECT_TRUE(FaultPlan::generate(topo_, config, 1).empty());
}

TEST_F(FaultsTest, FaultStateTracksNodesAndLinks) {
  FaultState state(topo_);
  EXPECT_FALSE(state.any_down());

  const NodeId sw = topo_.switches()[0];
  state.apply(FaultEvent{1.0, FaultKind::Fail, FaultTarget::Switch, sw, NodeId{}});
  EXPECT_FALSE(state.node_up(sw));
  EXPECT_TRUE(state.any_down());
  EXPECT_EQ(state.down_nodes().size(), 1u);

  // Duplicate fail then single recover: idempotent bookkeeping.
  state.apply(FaultEvent{2.0, FaultKind::Fail, FaultTarget::Switch, sw, NodeId{}});
  state.apply(FaultEvent{3.0, FaultKind::Recover, FaultTarget::Switch, sw, NodeId{}});
  EXPECT_TRUE(state.node_up(sw));
  EXPECT_FALSE(state.any_down());

  state.apply(FaultEvent{4.0, FaultKind::Fail, FaultTarget::Link, server(0), sw});
  EXPECT_FALSE(state.link_up(server(0), sw));
  EXPECT_FALSE(state.link_up(sw, server(0)));  // undirected
  EXPECT_TRUE(state.any_down());
  state.apply(FaultEvent{5.0, FaultKind::Recover, FaultTarget::Link, sw, server(0)});
  EXPECT_TRUE(state.link_up(server(0), sw));
}

TEST_F(FaultsTest, PathUpChecksNodesAndTraversedLinks) {
  const net::Policy p =
      net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  const topo::Path path = p.realize(topo_, server(0), server(2));
  FaultState state(topo_);
  EXPECT_TRUE(state.path_up(path));
  EXPECT_FALSE(state.policy_hits_fault(p));

  state.apply(
      FaultEvent{1.0, FaultKind::Fail, FaultTarget::Switch, p.list[0], NodeId{}});
  EXPECT_FALSE(state.path_up(path));
  EXPECT_TRUE(state.policy_hits_fault(p));
  state.apply(FaultEvent{2.0, FaultKind::Recover, FaultTarget::Switch, p.list[0],
                         NodeId{}});

  state.apply(FaultEvent{3.0, FaultKind::Fail, FaultTarget::Link, path[0], path[1]});
  EXPECT_FALSE(state.path_up(path));
  EXPECT_FALSE(state.policy_hits_fault(p));  // every switch is still up
}

TEST_F(FaultsTest, ReroutePolicyDetoursAroundFailedCore) {
  const net::Policy p =
      net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  ASSERT_EQ(p.list.size(), 3u);  // access, core, access
  const NodeId core = p.list[1];

  FaultState state(topo_);
  state.apply(FaultEvent{1.0, FaultKind::Fail, FaultTarget::Switch, core, NodeId{}});
  const auto detour = reroute_policy(topo_, state, server(0), server(2), FlowId(1));
  ASSERT_TRUE(detour.has_value());
  EXPECT_TRUE(state.path_up(detour->path));
  for (NodeId sw : detour->policy.list) EXPECT_NE(sw, core);
  EXPECT_EQ(detour->path.front(), server(0));
  EXPECT_EQ(detour->path.back(), server(2));
}

TEST_F(FaultsTest, ReroutePolicyReportsDisconnection) {
  FaultState state(topo_);
  // Kill every core: cross-rack pairs are disconnected.
  const net::Policy p =
      net::shortest_policy(topo_, server(0), server(2), FlowId(1));
  for (NodeId sw : topo_.switches()) {
    if (sw != p.list[0] && sw != p.list[2]) {
      state.apply(FaultEvent{1.0, FaultKind::Fail, FaultTarget::Switch, sw, NodeId{}});
    }
  }
  EXPECT_FALSE(
      reroute_policy(topo_, state, server(0), server(2), FlowId(1)).has_value());

  // A down endpoint is never routable.
  FaultState down_src(topo_);
  down_src.apply(
      FaultEvent{1.0, FaultKind::Fail, FaultTarget::Server, server(0), NodeId{}});
  EXPECT_FALSE(
      reroute_policy(topo_, down_src, server(0), server(2), FlowId(1)).has_value());
}

TEST_F(FaultsTest, AccountPlanFoldsEpisodesAndDowntime) {
  FaultPlan plan;
  plan.fail_switch(topo_.switches()[0], 10.0, 5.0);   // down [10, 15]
  plan.fail_server(server(0), 20.0);                  // permanent from 20
  plan.fail_link(server(1), topo_.switches()[0], 90.0, 50.0);  // repair at 140

  RecoveryStats rec;
  account_plan(plan, /*end=*/100.0, rec);
  EXPECT_EQ(rec.faults_applied, 4u);  // the link repair lands past the run
  EXPECT_EQ(rec.switches_failed, 1u);
  EXPECT_EQ(rec.servers_failed, 1u);
  EXPECT_EQ(rec.links_failed, 1u);
  // 5 (switch) + 80 (server, clipped) + 10 (link, clipped).
  EXPECT_DOUBLE_EQ(rec.unavailable_seconds, 95.0);
}

}  // namespace
}  // namespace hit::sim
