// Online DAG-workflow mode: dependency unlocks, hedged attempts, cascade
// shedding, and determinism under the full fault regime (crash faults, gray
// degradations, controller blackout).
#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <unordered_map>

#include "core/hit_scheduler.h"
#include "sim/online.h"
#include "test_helpers.h"
#include "workflow/runner.h"

namespace hit::sim {
namespace {

// Small stages (2 GB terasort) so every attempt fits the 16-slot world.
workflow::GenConfig small_stages() {
  workflow::GenConfig cfg;
  cfg.input_gb = 2.0;
  return cfg;
}

struct PlanRun {
  std::vector<workflow::Workflow> wfs;
  OnlineResult result;
};

PlanRun run_plan(const test::World& world, std::vector<workflow::Workflow> wfs,
                 const workflow::SchedConfig& sched_cfg,
                 const OnlineConfig& base, std::uint64_t seed) {
  PlanRun out;
  out.wfs = std::move(wfs);
  const mr::WorkloadGenerator gen{mr::WorkloadConfig{}};
  mr::IdAllocator ids;
  workflow::OnlinePlanBuild pb =
      workflow::build_online_plan(out.wfs, sched_cfg, gen, ids);
  OnlineConfig config = base;
  config.workflow = std::move(pb.plan);
  core::HitScheduler scheduler;
  Rng rng(seed);
  out.result = OnlineSimulator(world.cluster, config)
                   .run(scheduler, pb.jobs, ids, rng);
  return out;
}

/// (workflow, stage) -> winning attempt's finish time.
std::unordered_map<std::uint64_t, double> winner_finishes(
    const OnlineResult& result) {
  std::unordered_map<std::uint64_t, double> out;
  for (const WorkflowJobRecord& r : result.workflow_jobs) {
    if (r.stage_winner) {
      out[(static_cast<std::uint64_t>(r.workflow) << 32) | r.stage] = r.finish;
    }
  }
  return out;
}

/// The dependency property: no attempt of a stage may become ready (and so
/// launch) before every parent stage has a completed winner, and its ready
/// time must be at or after the last parent's finish.
void expect_parents_complete_first(const PlanRun& run) {
  const auto winners = winner_finishes(run.result);
  std::unordered_map<std::uint64_t, double> arrivals;
  for (const OnlineJobRecord& j : run.result.jobs) {
    arrivals[j.id.value()] = j.arrival;
  }
  for (const WorkflowJobRecord& r : run.result.workflow_jobs) {
    const workflow::Workflow& wf = run.wfs.at(r.workflow - 1);
    for (std::uint32_t p : wf.stages.at(r.stage).parents) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(r.workflow) << 32) | p;
      if (r.shed) continue;  // cascade-shed stages never ran
      const auto it = winners.find(key);
      ASSERT_NE(it, winners.end())
          << "workflow " << r.workflow << " stage " << r.stage
          << " ran before parent " << p << " completed";
      EXPECT_GE(r.unlocked, it->second - 1e-9);
    }
    // A completed attempt's simulator arrival is its unlock instant.
    const auto arr = arrivals.find(r.id.value());
    if (arr != arrivals.end()) {
      EXPECT_NEAR(arr->second, r.unlocked, 1e-9);
    }
  }
}

std::string fingerprint(const OnlineResult& r) {
  std::ostringstream out;
  out << std::setprecision(17);
  out << r.makespan << '|' << r.total_shuffle_cost << '|'
      << r.overload.jobs_shed << '|' << r.overload.shed_parent << '|'
      << r.control.crashes << '|' << r.control.blackout_seconds << '|'
      << r.gray.degradations << '\n';
  for (const WorkflowJobRecord& w : r.workflow_jobs) {
    out << w.id.value() << ',' << w.workflow << ',' << w.stage << ','
        << w.attempt << ',' << w.cp << ',' << w.unlocked << ',' << w.finish
        << ',' << w.restarts << ',' << w.shed << ',' << w.stage_winner << '\n';
  }
  for (const FlowTiming& f : r.flows) {
    out << f.id.value() << ',' << f.job.value() << ',' << f.wave << ','
        << f.release << ',' << f.finish << '\n';
  }
  for (const ShedJobRecord& s : r.shed) {
    out << s.id.value() << ',' << shed_reason_name(s.reason) << ','
        << s.shed_at << '\n';
  }
  return out.str();
}

class WorkflowOnlineTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();  // 16 slots
};

TEST_F(WorkflowOnlineTest, StageCompletionUnlocksSuccessors) {
  OnlineConfig base;
  base.arrival_rate = 0.05;
  const PlanRun run = run_plan(
      *world_, {workflow::make_chain(3, small_stages())}, {}, base, 21);
  ASSERT_EQ(run.result.workflow_jobs.size(), 3u);
  for (const WorkflowJobRecord& r : run.result.workflow_jobs) {
    EXPECT_TRUE(r.stage_winner);
    EXPECT_FALSE(r.shed);
  }
  expect_parents_complete_first(run);
  // The chain is strictly ordered: each stage unlocks exactly when its
  // parent finishes, never at the group arrival.
  const auto& recs = run.result.workflow_jobs;
  EXPECT_NEAR(recs[1].unlocked, recs[0].finish, 1e-9);
  EXPECT_NEAR(recs[2].unlocked, recs[1].finish, 1e-9);
}

TEST_F(WorkflowOnlineTest, DiamondJoinWaitsForSlowestBranch) {
  OnlineConfig base;
  base.arrival_rate = 0.05;
  const PlanRun run = run_plan(
      *world_, {workflow::make_diamond(2, small_stages())}, {}, base, 22);
  expect_parents_complete_first(run);
  const auto& recs = run.result.workflow_jobs;
  ASSERT_EQ(recs.size(), 4u);  // source, 2 branches, sink
  const double last_branch = std::max(recs[1].finish, recs[2].finish);
  EXPECT_NEAR(recs[3].unlocked, last_branch, 1e-9);
}

TEST_F(WorkflowOnlineTest, ParentsCompleteFirstUnderFaultsAndCrash) {
  OnlineConfig base;
  base.arrival_rate = 0.05;
  MtbfConfig mconfig;
  mconfig.horizon = 2000.0;
  mconfig.server_mtbf = 400.0;
  mconfig.server_mttr = 60.0;
  mconfig.gray_switch_mtbf = 500.0;
  mconfig.gray_switch_mttr = 90.0;
  mconfig.gray_link_mtbf = 500.0;
  mconfig.gray_link_mttr = 90.0;
  base.sim.faults = FaultPlan::generate(world_->topology, mconfig, 77);
  base.sim.faults.crash_controller(40.0, 80.0);
  workflow::SchedConfig sched_cfg;
  sched_cfg.hedge_budget = 1;
  const PlanRun run =
      run_plan(*world_,
               {workflow::make_chain(4, small_stages()),
                workflow::make_diamond(2, small_stages())},
               sched_cfg, base, 23);
  // Everything still finishes (faults restart, never abandon), and the
  // dependency order survives every re-execution.
  for (const WorkflowJobRecord& r : run.result.workflow_jobs) {
    EXPECT_FALSE(r.shed);
  }
  expect_parents_complete_first(run);
}

TEST_F(WorkflowOnlineTest, DoubleRunIsByteIdenticalUnderFullFaultRegime) {
  const auto make_base = [&] {
    OnlineConfig base;
    base.arrival_rate = 0.05;
    base.sim.coflow.enabled = true;
    base.sim.coflow.order = coflow::OrderPolicy::CriticalPath;
    MtbfConfig mconfig;
    mconfig.horizon = 2000.0;
    mconfig.server_mtbf = 400.0;
    mconfig.server_mttr = 60.0;
    mconfig.gray_switch_mtbf = 500.0;
    mconfig.gray_switch_mttr = 90.0;
    base.sim.faults = FaultPlan::generate(world_->topology, mconfig, 99);
    base.sim.faults.crash_controller(30.0, 60.0);
    return base;
  };
  workflow::SchedConfig sched_cfg;
  sched_cfg.hedge_budget = 1;
  const std::vector<workflow::Workflow> wfs = {
      workflow::make_tree(1, 2, small_stages()),
      workflow::make_chain(3, small_stages())};
  const PlanRun a = run_plan(*world_, wfs, sched_cfg, make_base(), 31);
  const PlanRun b = run_plan(*world_, wfs, sched_cfg, make_base(), 31);
  EXPECT_EQ(fingerprint(a.result), fingerprint(b.result));
  EXPECT_GE(a.result.control.crashes, 1u);
}

TEST_F(WorkflowOnlineTest, LostParentCascadeShedsDescendants) {
  OnlineConfig base;
  base.arrival_rate = 100.0;  // burst: every group lands at once
  base.admission.policy = AdmissionPolicy::RejectNew;
  base.admission.max_queue = 1;
  std::vector<workflow::Workflow> wfs;
  for (int i = 0; i < 6; ++i) wfs.push_back(workflow::make_chain(3, small_stages()));
  const PlanRun run = run_plan(*world_, std::move(wfs), {}, base, 41);

  EXPECT_GT(run.result.overload.shed_parent, 0u);
  bool saw_parent_reason = false;
  for (const ShedJobRecord& s : run.result.shed) {
    if (s.reason == ShedReason::Parent) saw_parent_reason = true;
  }
  EXPECT_TRUE(saw_parent_reason);

  // Per workflow: once a stage is lost, every descendant is shed too, and
  // no attempt of a descendant ever wins.
  std::unordered_map<std::uint32_t, std::uint32_t> first_lost;
  for (const WorkflowJobRecord& r : run.result.workflow_jobs) {
    if (r.shed && !first_lost.count(r.workflow)) {
      first_lost[r.workflow] = r.stage;
    }
  }
  ASSERT_FALSE(first_lost.empty());
  for (const WorkflowJobRecord& r : run.result.workflow_jobs) {
    const auto it = first_lost.find(r.workflow);
    if (it == first_lost.end()) continue;
    if (r.stage > it->second) {  // chain: later stage == descendant
      EXPECT_TRUE(r.shed);
      EXPECT_FALSE(r.stage_winner);
    }
  }
  expect_parents_complete_first(run);
}

TEST_F(WorkflowOnlineTest, HedgedStageHasExactlyOneWinner) {
  OnlineConfig base;
  base.arrival_rate = 0.05;
  workflow::SchedConfig sched_cfg;
  sched_cfg.hedge_budget = 2;
  const PlanRun run = run_plan(
      *world_, {workflow::make_chain(3, small_stages())}, sched_cfg, base, 51);
  std::unordered_map<std::uint64_t, int> winners, attempts;
  for (const WorkflowJobRecord& r : run.result.workflow_jobs) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(r.workflow) << 32) | r.stage;
    ++attempts[key];
    if (r.stage_winner) ++winners[key];
  }
  for (const auto& [key, n] : winners) EXPECT_EQ(n, 1);
  // The budget materialized duplicate attempts for the two spine stages.
  std::size_t hedged = 0;
  for (const auto& [key, n] : attempts) {
    if (n > 1) ++hedged;
  }
  EXPECT_EQ(hedged, 2u);
  const workflow::WorkflowStats st =
      workflow::compute_online_stats(run.result, run.wfs);
  EXPECT_EQ(st.hedges_launched, 2u);
  EXPECT_EQ(st.hedges_won + st.hedges_lost, st.hedges_launched);
  EXPECT_EQ(st.stages_completed, 3u);
}

TEST_F(WorkflowOnlineTest, LegacyPathIgnoresWorkflowMachinery) {
  // Without a plan the workflow accounting stays empty — the legacy arrival
  // path is the bit-identical default.
  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 4;
  wconfig.max_maps_per_job = 4;
  wconfig.max_reduces_per_job = 2;
  const mr::WorkloadGenerator gen(wconfig);
  mr::IdAllocator ids;
  Rng grng(61);
  const std::vector<mr::Job> jobs = gen.generate(ids, grng);
  core::HitScheduler scheduler;
  Rng rng(61);
  const OnlineResult result =
      OnlineSimulator(world_->cluster, OnlineConfig{0.05, {}, 0.0})
          .run(scheduler, jobs, ids, rng);
  EXPECT_TRUE(result.workflow_jobs.empty());
  EXPECT_EQ(result.overload.shed_parent, 0u);
}

}  // namespace
}  // namespace hit::sim
