#include "sim/packet.h"

#include <gtest/gtest.h>

#include "network/bandwidth.h"
#include "test_helpers.h"

namespace hit::sim {
namespace {

class PacketTest : public ::testing::Test {
 protected:
  // Case-study tree: links 16.0, distances 1 and 3 switches.
  std::unique_ptr<test::World> world_ = test::tiny_tree_world();

  topo::Path path(std::size_t a, std::size_t b) {
    const auto servers = world_->topology.servers();
    return world_->topology.shortest_path(servers[a], servers[b]);
  }
};

TEST_F(PacketTest, DeliversAllPacketsOnIdleNetwork) {
  const PacketSimulator sim(world_->topology);
  const auto stats =
      sim.run({PacketFlowSpec{FlowId(0), path(0, 3), 0.064, 0.0}});
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].sent, 64u);
  EXPECT_EQ(stats[0].delivered, 64u);
  EXPECT_EQ(stats[0].dropped, 0u);
  EXPECT_DOUBLE_EQ(stats[0].loss_rate(), 0.0);
}

TEST_F(PacketTest, DelayScalesWithSwitchCount) {
  PacketSimConfig config;
  config.switch_latency_s = 29e-6;
  const PacketSimulator sim(world_->topology, config);
  const auto stats = sim.run({PacketFlowSpec{FlowId(0), path(0, 1), 0.016, 0.0},
                              PacketFlowSpec{FlowId(1), path(0, 3), 0.016, 10.0}});
  // Additional delay between the 3-switch and 1-switch routes is two extra
  // (switch latency + link latency + serialization) stages.
  const double per_stage = 29e-6 + 1e-6 + config.packet_size_gb / 16.0;
  EXPECT_NEAR(stats[1].mean_delay_s - stats[0].mean_delay_s, 2 * per_stage,
              per_stage * 0.2);
}

TEST_F(PacketTest, ThroughputMatchesLineRateForSingleFlow) {
  const PacketSimulator sim(world_->topology);
  const auto stats =
      sim.run({PacketFlowSpec{FlowId(0), path(0, 3), 0.256, 0.0}});
  // Paced at the 16 GB/s access link; store-and-forward adds per-packet
  // latency but pipeline throughput approaches line rate.
  EXPECT_GT(stats[0].throughput_gbps, 12.0);
  EXPECT_LE(stats[0].throughput_gbps, 16.0 + 1e-6);
}

TEST_F(PacketTest, SharedLinkHalvesThroughputLikeFluidModel) {
  // Two flows leaving server 0 share its access link: the fluid model gives
  // each 8.0; the packet model must agree within ~20%.
  const PacketSimulator sim(world_->topology);
  const auto stats = sim.run({PacketFlowSpec{FlowId(0), path(0, 1), 0.256, 0.0},
                              PacketFlowSpec{FlowId(1), path(0, 3), 0.256, 0.0}});

  net::MaxMinFairAllocator fluid(world_->topology);
  const auto rates = fluid.allocate(
      {net::FlowDemand{FlowId(0), path(0, 1), 0.0},
       net::FlowDemand{FlowId(1), path(0, 3), 0.0}});
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(stats[i].throughput_gbps, rates[i], rates[i] * 0.25) << i;
  }
}

TEST_F(PacketTest, TinyQueuesDropUnderOverload) {
  // Two paced sources converging on one egress link with a 2-packet queue:
  // the excess must be dropped, not magically delivered.
  PacketSimConfig config;
  config.queue_capacity = 2;
  const PacketSimulator sim(world_->topology, config);
  // Both flows head to server 3: they merge on access-right -> S4 egress.
  const auto stats = sim.run({PacketFlowSpec{FlowId(0), path(0, 3), 0.128, 0.0},
                              PacketFlowSpec{FlowId(1), path(1, 3), 0.128, 0.0}});
  EXPECT_GT(stats[0].dropped + stats[1].dropped, 0u);
  EXPECT_LT(stats[0].loss_rate(), 1.0);
}

TEST_F(PacketTest, StartTimesRespected) {
  const PacketSimulator sim(world_->topology);
  const auto stats =
      sim.run({PacketFlowSpec{FlowId(0), path(0, 2), 0.016, 5.0}});
  EXPECT_GT(stats[0].completion_s, 5.0);
}

TEST_F(PacketTest, Validation) {
  PacketSimConfig bad;
  bad.packet_size_gb = 0.0;
  EXPECT_THROW((void)PacketSimulator(world_->topology, bad), std::invalid_argument);
  const PacketSimulator sim(world_->topology);
  EXPECT_THROW((void)sim.run({PacketFlowSpec{FlowId(0), {}, 1.0, 0.0}}),
               std::invalid_argument);
  const auto servers = world_->topology.servers();
  EXPECT_THROW(
      (void)sim.run({PacketFlowSpec{
          FlowId(0), topo::Path{servers[0], servers[1]}, 1.0, 0.0}}),
      std::invalid_argument);
}

TEST_F(PacketTest, PacketCapBounds) {
  PacketSimConfig config;
  config.max_packets_per_flow = 10;
  const PacketSimulator sim(world_->topology, config);
  const auto stats = sim.run({PacketFlowSpec{FlowId(0), path(0, 3), 10.0, 0.0}});
  EXPECT_EQ(stats[0].sent, 10u);
}

}  // namespace
}  // namespace hit::sim
