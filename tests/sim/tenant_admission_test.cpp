// Multi-tenant adaptive admission in the online simulator: workload tenant
// labelling, AIMD-governed queue limits, per-tenant stats and isolation,
// and the bit-identity discipline when every new knob is off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mapreduce/workload.h"
#include "sched/capacity_scheduler.h"
#include "sim/online.h"
#include "test_helpers.h"

namespace hit::sim {
namespace {

namespace adm = hit::sched::admission;

// One-at-a-time jobs on the 16-slot small tree (12 maps + 2 reduces = 14
// containers), so a burst guarantees queueing and the AIMD sensor sees it.
std::vector<mr::Job> big_jobs(mr::IdAllocator& ids, std::size_t n) {
  mr::WorkloadConfig config;
  config.max_maps_per_job = 12;
  config.max_reduces_per_job = 2;
  config.block_size_gb = 1.0;
  const mr::WorkloadGenerator gen(config);
  std::vector<mr::Job> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(gen.make_job(mr::profile("terasort"), 12.0, ids));
  }
  return jobs;
}

adm::AimdConfig fast_aimd() {
  adm::AimdConfig c;
  c.epoch_s = 50.0;
  c.start_limit = 4.0;
  c.min_limit = 1.0;
  c.up_step = 1.0;
  c.down_factor = 0.5;
  c.overload_on = 1;
  c.overload_off = 1;
  c.wait_threshold_s = 200.0;
  c.quota_floor = 0.25;
  return c;
}

class TenantAdmissionTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();
  sched::CapacityScheduler capacity_;

  OnlineResult run(const OnlineConfig& config, std::vector<mr::Job> jobs,
                   mr::IdAllocator& ids, std::uint64_t seed = 3) {
    const OnlineSimulator sim(world_->cluster, config);
    Rng rng(seed);
    return sim.run(capacity_, jobs, ids, rng);
  }
};

TEST(TenantWorkloadTest, TenantAssignmentFollowsTheConfiguredMix) {
  mr::WorkloadConfig config;
  config.num_jobs = 90;
  config.num_tenants = 3;
  config.tenant_weights = {8.0, 1.0, 1.0};  // adversarial: tenant 0 floods
  const mr::WorkloadGenerator gen(config);
  mr::IdAllocator ids;
  Rng rng(5);
  const auto jobs = gen.generate(ids, rng);
  std::vector<std::size_t> per_tenant(3, 0);
  for (const auto& job : jobs) {
    ASSERT_LT(job.tenant, 3u);
    ++per_tenant[job.tenant];
  }
  EXPECT_GT(per_tenant[0], per_tenant[1] + per_tenant[2]);
  EXPECT_GT(per_tenant[1] + per_tenant[2], 0u);
}

TEST(TenantWorkloadTest, TenantLabellingIsBitIdenticalOtherwise) {
  // num_tenants only labels jobs: benchmarks, inputs and priorities come out
  // bit-identical to the single-tenant stream at the same seed.
  const auto generate = [](std::size_t tenants) {
    mr::WorkloadConfig config;
    config.num_jobs = 20;
    config.num_tenants = tenants;
    const mr::WorkloadGenerator gen(config);
    mr::IdAllocator ids;
    Rng rng(9);
    return gen.generate(ids, rng);
  };
  const auto plain = generate(0);
  const auto tenanted = generate(4);
  ASSERT_EQ(plain.size(), tenanted.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].tenant, 0u);
    EXPECT_EQ(plain[i].benchmark, tenanted[i].benchmark);
    EXPECT_EQ(plain[i].shuffle_gb, tenanted[i].shuffle_gb);
    EXPECT_EQ(plain[i].maps.size(), tenanted[i].maps.size());
    EXPECT_EQ(plain[i].priority, tenanted[i].priority);
  }
}

TEST(TenantWorkloadTest, FlowsInheritTheJobTenant) {
  mr::WorkloadConfig config;
  config.num_jobs = 12;
  config.num_tenants = 3;
  const mr::WorkloadGenerator gen(config);
  mr::IdAllocator ids;
  Rng rng(7);
  const auto jobs = gen.generate(ids, rng);
  for (const auto& job : jobs) {
    const auto flows = mr::build_shuffle_flows(job, ids);
    for (const auto& f : flows) EXPECT_EQ(f.tenant, job.tenant);
  }
}

TEST(TenantWorkloadTest, MismatchedWeightsRejected) {
  mr::WorkloadConfig config;
  config.num_tenants = 3;
  config.tenant_weights = {1.0, 2.0};  // size != num_tenants
  EXPECT_THROW((void)mr::WorkloadGenerator(config), std::invalid_argument);
  config.tenant_weights = {1.0, 2.0, 0.0};  // non-positive
  EXPECT_THROW((void)mr::WorkloadGenerator(config), std::invalid_argument);
}

TEST_F(TenantAdmissionTest, AimdRunCompletesWithControllerStats) {
  mr::IdAllocator ids;
  auto jobs = big_jobs(ids, 10);
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].tenant = i % 2;
  OnlineConfig config;
  config.arrival_rate = 0.05;  // sustained overload: service takes longer
  config.admission.policy = AdmissionPolicy::Aimd;
  config.admission.aimd = fast_aimd();
  const OnlineResult result = run(config, std::move(jobs), ids);
  EXPECT_EQ(result.jobs.size() + result.shed.size(), 10u);
  EXPECT_GT(result.aimd.epochs, 0u);
  EXPECT_GT(result.aimd.final_limit, 0.0);
  ASSERT_EQ(result.tenants.size(), 2u);
  std::size_t submitted = 0;
  for (const auto& ts : result.tenants) {
    submitted += ts.submitted;
    EXPECT_EQ(ts.submitted, ts.completed + ts.shed +
                                /*still waiting is impossible at end*/ 0u);
  }
  EXPECT_EQ(submitted, 10u);
  EXPECT_GT(result.tenant_jain, 0.0);
  EXPECT_LE(result.tenant_jain, 1.0 + 1e-12);
}

TEST_F(TenantAdmissionTest, AimdCutsTheLimitUnderABurst) {
  mr::IdAllocator ids;
  auto jobs = big_jobs(ids, 12);
  OnlineConfig config;
  config.arrival_rate = 100.0;  // near-simultaneous burst
  config.max_queue_wait = 300.0;
  config.admission.policy = AdmissionPolicy::Aimd;
  config.admission.aimd = fast_aimd();
  const OnlineResult result = run(config, std::move(jobs), ids);
  // The burst overflows the start limit immediately, so the limiter sheds on
  // arrival and the controller records overloaded epochs and cuts.
  EXPECT_GT(result.aimd.limiter_sheds, 0u);
  EXPECT_GT(result.overload.jobs_shed, 0u);
  EXPECT_GT(result.aimd.cuts + result.aimd.overloaded_epochs, 0u);
  EXPECT_LE(result.aimd.min_limit_seen, fast_aimd().start_limit);
}

TEST_F(TenantAdmissionTest, AdversarialTenantEatsTheSheds) {
  // Tenant 0 submits 12 of 16 jobs; tenants 1 and 2 two each.  Under the
  // per-tenant caps the flood is shed from tenant 0 while the small tenants'
  // floors keep them served.
  mr::IdAllocator ids;
  auto jobs = big_jobs(ids, 16);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].tenant = i < 12 ? 0 : (i < 14 ? 1 : 2);
  }
  OnlineConfig config;
  config.arrival_rate = 100.0;
  config.admission.policy = AdmissionPolicy::Aimd;
  config.admission.aimd = fast_aimd();
  config.admission.tenants = adm::TenantRegistry::uniform(3);
  const OnlineResult result = run(config, std::move(jobs), ids);
  ASSERT_EQ(result.tenants.size(), 3u);
  const auto& flood = result.tenants[0];
  EXPECT_GT(flood.shed, 0u);
  for (std::uint32_t t = 1; t < 3; ++t) {
    EXPECT_GE(result.tenants[t].completed, 1u)
        << "small tenant " << t << " starved";
    EXPECT_LE(result.tenants[t].shed, flood.shed);
  }
}

TEST_F(TenantAdmissionTest, AimdIsDeterministicPerSeed) {
  const auto once = [&] {
    mr::IdAllocator ids;
    auto jobs = big_jobs(ids, 10);
    for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].tenant = i % 3;
    OnlineConfig config;
    config.arrival_rate = 100.0;
    config.admission.policy = AdmissionPolicy::Aimd;
    config.admission.aimd = fast_aimd();
    return run(config, std::move(jobs), ids, /*seed=*/17);
  };
  const OnlineResult a = once();
  const OnlineResult b = once();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  ASSERT_EQ(a.shed.size(), b.shed.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
  }
  for (std::size_t i = 0; i < a.shed.size(); ++i) {
    EXPECT_EQ(a.shed[i].id, b.shed[i].id);
  }
  EXPECT_EQ(a.aimd.epochs, b.aimd.epochs);
  EXPECT_DOUBLE_EQ(a.aimd.final_limit, b.aimd.final_limit);
  EXPECT_DOUBLE_EQ(a.tenant_jain, b.tenant_jain);
}

TEST_F(TenantAdmissionTest, DefaultPolicyLeavesTenantFieldsEmpty) {
  // Without tenants or Aimd, the new result fields stay at their zero
  // state — the bit-identity discipline's observable half.
  mr::IdAllocator ids;
  auto jobs = big_jobs(ids, 4);
  OnlineConfig config;
  config.arrival_rate = 0.01;
  const OnlineResult result = run(config, std::move(jobs), ids);
  EXPECT_TRUE(result.tenants.empty());
  EXPECT_FALSE(result.aimd.any());
  EXPECT_DOUBLE_EQ(result.tenant_jain, 0.0);
  EXPECT_EQ(result.jobs.size(), 4u);
}

TEST_F(TenantAdmissionTest, TenantRosterSmallerThanIdsRejected) {
  mr::IdAllocator ids;
  auto jobs = big_jobs(ids, 3);
  jobs[2].tenant = 5;
  OnlineConfig config;
  config.admission.policy = AdmissionPolicy::Aimd;
  config.admission.aimd = fast_aimd();
  config.admission.tenants = adm::TenantRegistry::uniform(2);
  const OnlineSimulator sim(world_->cluster, config);
  Rng rng(3);
  EXPECT_THROW((void)sim.run(capacity_, jobs, ids, rng),
               std::invalid_argument);
}

TEST_F(TenantAdmissionTest, InvalidAimdConfigRejected) {
  OnlineConfig config;
  config.admission.policy = AdmissionPolicy::Aimd;
  config.admission.aimd.down_factor = 1.5;
  EXPECT_THROW((void)OnlineSimulator(world_->cluster, config),
               std::invalid_argument);
}

TEST_F(TenantAdmissionTest, AimdPolicyNameRegistered) {
  EXPECT_STREQ(admission_policy_name(AdmissionPolicy::Aimd), "aimd");
}

}  // namespace
}  // namespace hit::sim
