// Failure-domain fault injection end to end (DESIGN.md §17): the
// bit-identical-when-enabled-but-idle guarantee, lost-output lineage
// re-execution in both simulators, the lineage property (a lost output whose
// consumers all completed or shed re-executes nothing), finished-stage
// re-opening through the workflow runner, and double-run determinism under
// the full domain x loss x gray x controller-crash regime.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mapreduce/workload.h"
#include "sched/capacity_scheduler.h"
#include "sim/domains.h"
#include "sim/engine.h"
#include "sim/online.h"
#include "test_helpers.h"
#include "workflow/runner.h"

namespace hit::sim {
namespace {

std::vector<mr::Job> sample_jobs(mr::IdAllocator& ids, std::size_t n,
                                 std::uint64_t seed) {
  mr::WorkloadConfig config;
  config.num_jobs = n;
  config.max_maps_per_job = 6;
  config.max_reduces_per_job = 2;
  config.block_size_gb = 3.0;
  const mr::WorkloadGenerator gen(config);
  Rng rng(seed);
  return gen.generate(ids, rng);
}

void expect_domain_equal(const FaultDomainStats& a, const FaultDomainStats& b) {
  EXPECT_EQ(a.domains, b.domains);
  EXPECT_EQ(a.domain_faults, b.domain_faults);
  EXPECT_EQ(a.outputs_lost, b.outputs_lost);
  EXPECT_EQ(a.maps_reexecuted_lineage, b.maps_reexecuted_lineage);
  EXPECT_EQ(a.stage_reopens, b.stage_reopens);
  EXPECT_EQ(a.partition_parks, b.partition_parks);
}

class DomainFaultsBatchTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();
  DomainSet domains_ = DomainSet::derive(world_->topology);

  SimResult run_batch(const SimConfig& config, std::uint64_t seed,
                      std::size_t n = 4) {
    sched::CapacityScheduler scheduler;
    mr::IdAllocator ids;
    const auto jobs = sample_jobs(ids, n, seed);
    Rng rng(seed);
    return ClusterSimulator(world_->cluster, config).run(scheduler, jobs, ids,
                                                         rng);
  }
};

TEST_F(DomainFaultsBatchTest, EnabledButIdleIsBitIdentical) {
  // Turning the domains model on without any fault or loss probability must
  // not move a single number (the OFF-by-default contract extends to
  // enabled-but-idle).
  SimConfig off;
  SimConfig on;
  on.domains.enabled = true;
  const SimResult a = run_batch(off, 51);
  const SimResult b = run_batch(on, 51);

  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_shuffle_cost, b.total_shuffle_cost);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].completion_time, b.jobs[i].completion_time);
  }
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].finish, b.flows[i].finish);
  }
  EXPECT_FALSE(b.fault_domains.any());
}

TEST_F(DomainFaultsBatchTest, RackCrashLosesOutputsAndLineageRecovers) {
  const SimResult clean = run_batch(SimConfig{}, 52, 6);

  // Outputs are only at risk while map waves still run (the shuffle phase
  // reads them immediately), so sweep the crash instant across the map
  // phase, not the whole makespan.
  double map_end = 0.0;
  for (const TaskTiming& t : clean.tasks) {
    if (t.kind == cluster::TaskKind::Map) map_end = std::max(map_end, t.finish);
  }
  ASSERT_GT(map_end, 0.0);

  // Wherever the crash lands on a rack hosting completed outputs, those
  // outputs are destroyed (loss probability 1 for a correlated crash) and
  // re-executed through the subsequent-wave path — every shuffle is still
  // pending, so each loss is exactly one lineage re-execution.  Rack 2 is
  // one of the map-hosting racks for this workload (the reduce containers
  // pin the lower racks' slots).
  const FailureDomain* rack = domains_.find(DomainKind::Rack, 2);
  ASSERT_NE(rack, nullptr);
  bool saw_loss = false;
  for (double frac : {0.3, 0.5, 0.8}) {
    SimConfig config;
    config.domains.enabled = true;
    config.domains.output_loss_prob = 1.0;
    config.faults.fail_domain(*rack, frac * map_end, 0.3 * map_end);
    const SimResult result = run_batch(config, 52, 6);

    EXPECT_EQ(result.jobs.size(), 6u) << "lineage recovery lost a job";
    EXPECT_EQ(result.fault_domains.domains, domains_.size());
    EXPECT_EQ(result.fault_domains.domain_faults, 1u);
    EXPECT_LE(result.fault_domains.maps_reexecuted_lineage,
              result.fault_domains.outputs_lost);
    if (result.fault_domains.outputs_lost == 0) {
      EXPECT_EQ(result.fault_domains.maps_reexecuted_lineage, 0u);
      continue;
    }
    saw_loss = true;
    EXPECT_EQ(result.fault_domains.maps_reexecuted_lineage,
              result.fault_domains.outputs_lost);
    EXPECT_GE(result.makespan, clean.makespan - 1e-9);
  }
  EXPECT_TRUE(saw_loss) << "no sweep point destroyed a completed output";
}

TEST_F(DomainFaultsBatchTest, FullRegimeDoubleRunIsDeterministic) {
  const FailureDomain* rack = domains_.find(DomainKind::Rack, 0);
  ASSERT_NE(rack, nullptr);
  MtbfConfig mconfig;
  mconfig.horizon = 400.0;
  mconfig.rack_mtbf = 150.0;
  mconfig.rack_mttr = 30.0;
  mconfig.gray_switch_mtbf = 200.0;
  mconfig.gray_switch_mttr = 50.0;
  SimConfig config;
  config.domains.enabled = true;
  config.domains.output_loss_prob = 0.7;
  config.faults = FaultPlan::generate(world_->topology, mconfig, 53);
  config.faults.fail_domain(*rack, 5.0, 20.0);
  config.faults.crash_controller(10.0, 25.0);
  config.recovery.snapshot_every = 15.0;

  const SimResult a = run_batch(config, 53, 6);
  const SimResult b = run_batch(config, 53, 6);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_shuffle_cost, b.total_shuffle_cost);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].release, b.flows[i].release);
    EXPECT_DOUBLE_EQ(a.flows[i].finish, b.flows[i].finish);
  }
  expect_domain_equal(a.fault_domains, b.fault_domains);
  EXPECT_EQ(a.control.crashes, b.control.crashes);
  EXPECT_EQ(a.gray.degradations, b.gray.degradations);
  EXPECT_GE(a.fault_domains.domain_faults, 1u);
}

class DomainFaultsOnlineTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();
  DomainSet domains_ = DomainSet::derive(world_->topology);

  OnlineResult run_online(const OnlineConfig& config, std::uint64_t seed,
                          std::size_t n = 6) {
    sched::CapacityScheduler scheduler;
    mr::IdAllocator ids;
    const auto jobs = sample_jobs(ids, n, seed);
    Rng rng(seed);
    return OnlineSimulator(world_->cluster, config).run(scheduler, jobs, ids,
                                                        rng);
  }
};

TEST_F(DomainFaultsOnlineTest, EnabledButIdleIsBitIdentical) {
  OnlineConfig off;
  off.arrival_rate = 0.5;
  OnlineConfig on = off;
  on.sim.domains.enabled = true;
  const OnlineResult a = run_online(off, 61);
  const OnlineResult b = run_online(on, 61);

  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
    EXPECT_DOUBLE_EQ(a.jobs[i].scheduled, b.jobs[i].scheduled);
  }
  EXPECT_FALSE(b.fault_domains.any());
}

TEST_F(DomainFaultsOnlineTest, LineagePropertyHoldsAcrossSeedsAndFaultTimes) {
  // The lineage property, swept: re-execution happens only for outputs that
  // were actually destroyed while a consumer shuffle was still undelivered.
  // A run that lost nothing re-executes nothing; no run loses a completed
  // job (every admitted job finishes exactly once, unbounded admission never
  // sheds); and lineage re-executions never exceed the losses that caused
  // them.
  for (std::uint64_t seed : {71u, 72u, 73u}) {
    for (double at : {20.0, 60.0, 120.0}) {
      const FailureDomain* rack =
          domains_.find(DomainKind::Rack, seed % 4);
      ASSERT_NE(rack, nullptr);
      OnlineConfig config;
      config.arrival_rate = 0.3;
      config.sim.domains.enabled = true;
      config.sim.domains.output_loss_prob = 1.0;
      config.sim.faults.fail_domain(*rack, at, 60.0);
      const OnlineResult result = run_online(config, seed, 8);

      const FaultDomainStats& fd = result.fault_domains;
      EXPECT_LE(fd.maps_reexecuted_lineage, fd.outputs_lost);
      if (fd.outputs_lost == 0) {
        EXPECT_EQ(fd.maps_reexecuted_lineage, 0u);
        EXPECT_EQ(fd.stage_reopens, 0u);
      }
      EXPECT_EQ(result.jobs.size() + result.shed.size(), 8u);
      EXPECT_TRUE(result.shed.empty());
      std::set<std::uint64_t> ids;
      for (const OnlineJobRecord& j : result.jobs) {
        EXPECT_TRUE(ids.insert(j.id.value()).second)
            << "job " << j.id.value() << " completed twice";
      }
    }
  }
}

TEST_F(DomainFaultsOnlineTest, ChainWorkflowReopensFinishedStageForLineage) {
  // A rack crash that destroys a *finished* stage's reduce outputs while a
  // child stage still needs them must re-open the parent stage — lineage
  // re-execution through the DAG instead of cascade-shedding — and the
  // workflow still completes every attempt.
  workflow::GenConfig stages;
  stages.input_gb = 2.0;
  workflow::SchedConfig sched_cfg;
  const mr::WorkloadGenerator gen{mr::WorkloadConfig{}};

  const FailureDomain* rack = domains_.find(DomainKind::Rack, 2);
  ASSERT_NE(rack, nullptr);
  bool saw_reopen = false;
  for (double at : {30.0, 60.0, 90.0, 120.0, 150.0}) {
    std::vector<workflow::Workflow> wfs;
    for (int i = 0; i < 3; ++i) {
      wfs.push_back(workflow::make_chain(3, stages));
    }
    mr::IdAllocator ids;
    workflow::OnlinePlanBuild pb =
        workflow::build_online_plan(wfs, sched_cfg, gen, ids);
    OnlineConfig config;
    config.arrival_rate = 0.1;
    config.workflow = std::move(pb.plan);
    config.sim.domains.enabled = true;
    config.sim.domains.output_loss_prob = 1.0;
    config.sim.faults.fail_domain(*rack, at, 80.0);
    sched::CapacityScheduler scheduler;
    Rng rng(7);
    const OnlineResult result =
        OnlineSimulator(world_->cluster, config).run(scheduler, pb.jobs, ids,
                                                     rng);
    EXPECT_TRUE(result.shed.empty());
    EXPECT_EQ(result.jobs.size(), pb.jobs.size());
    if (result.fault_domains.stage_reopens > 0) {
      saw_reopen = true;
      EXPECT_GT(result.fault_domains.outputs_lost, 0u);
    }
  }
  EXPECT_TRUE(saw_reopen) << "no sweep point re-opened a finished stage";
}

TEST_F(DomainFaultsOnlineTest, FullRegimeDoubleRunIsDeterministic) {
  const FailureDomain* rack = domains_.find(DomainKind::Rack, 3);
  ASSERT_NE(rack, nullptr);
  OnlineConfig config;
  config.arrival_rate = 0.3;
  config.sim.domains.enabled = true;
  config.sim.domains.output_loss_prob = 0.6;
  MtbfConfig mconfig;
  mconfig.horizon = 600.0;
  mconfig.rack_mtbf = 200.0;
  mconfig.rack_mttr = 40.0;
  mconfig.gray_switch_mtbf = 300.0;
  mconfig.gray_switch_mttr = 60.0;
  config.sim.faults = FaultPlan::generate(world_->topology, mconfig, 62);
  config.sim.faults.fail_domain(*rack, 25.0, 50.0);
  config.sim.faults.crash_controller(40.0, 30.0);
  config.sim.recovery.snapshot_every = 20.0;
  config.sim.recovery.standby = true;
  config.sim.recovery.standby_takeover_s = 10.0;

  const OnlineResult a = run_online(config, 62, 8);
  const OnlineResult b = run_online(config, 62, 8);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id.value(), b.jobs[i].id.value());
    EXPECT_DOUBLE_EQ(a.jobs[i].scheduled, b.jobs[i].scheduled);
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
  }
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].finish, b.flows[i].finish);
  }
  expect_domain_equal(a.fault_domains, b.fault_domains);
  EXPECT_EQ(a.control.crashes, b.control.crashes);
  EXPECT_EQ(a.control.reconcile_repairs, b.control.reconcile_repairs);
  EXPECT_EQ(a.gray.degradations, b.gray.degradations);
  EXPECT_GE(a.fault_domains.domain_faults, 1u);
}

}  // namespace
}  // namespace hit::sim
