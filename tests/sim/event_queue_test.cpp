#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace hit::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoAtEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(1.0, [&] {
    times.push_back(q.now());
    q.schedule_in(0.5, [&] { times.push_back(q.now()); });
  });
  q.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule(2.0, [] {});
  ASSERT_TRUE(q.step());
  EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, StepOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunawayGuard) {
  EventQueue q;
  std::function<void()> loop = [&] { q.schedule_in(1.0, loop); };
  q.schedule(0.0, loop);
  EXPECT_THROW(q.run(100), std::runtime_error);
}

}  // namespace
}  // namespace hit::sim
