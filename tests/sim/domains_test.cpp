// Failure domains (DESIGN.md §17): derivation from the typed topology,
// correlated fail_domain scripting, the salt-fork independence guarantee of
// the domain-MTBF generator, and partition reachability.
#include "sim/domains.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/faults.h"
#include "topology/builders.h"

namespace hit::sim {
namespace {

class DomainsTest : public ::testing::Test {
 protected:
  // Depth-3 tree, fanout 2, redundancy 2, 2 hosts per access switch:
  // 8 servers behind 4 racks, aggregation and core tiers above them.
  topo::TreeConfig tree_{3, 2, 2, 2};
  topo::Topology topo_ = topo::make_tree(tree_);
  DomainSet set_ = DomainSet::derive(topo_);
};

TEST_F(DomainsTest, DeriveCoversEveryKindInOrder) {
  std::size_t access = 0;
  std::size_t aggregation = 0;
  for (NodeId sw : topo_.switches()) {
    if (topo_.tier(sw) == topo::Tier::Access) ++access;
    if (topo_.tier(sw) == topo::Tier::Aggregation) ++aggregation;
  }
  ASSERT_GT(access, 0u);
  ASSERT_GT(aggregation, 0u);

  std::size_t servers = 0, racks = 0, pods = 0, tiers = 0;
  std::uint32_t expect_ordinal = 1;
  for (const FailureDomain& d : set_.domains()) {
    // Ordinals are 1-based, contiguous, in server/rack/pod/tier order.
    EXPECT_EQ(d.ordinal, expect_ordinal++);
    EXPECT_EQ(&set_.at(d.ordinal), &d);
    EXPECT_GT(d.size(), 0u);
    EXPECT_TRUE(std::is_sorted(d.switches.begin(), d.switches.end()));
    EXPECT_TRUE(std::is_sorted(d.servers.begin(), d.servers.end()));
    switch (d.kind) {
      case DomainKind::Server:
        ++servers;
        EXPECT_EQ(d.servers.size(), 1u);
        EXPECT_TRUE(d.switches.empty());
        break;
      case DomainKind::Rack:
        ++racks;
        EXPECT_EQ(d.switches.size(), 1u);
        EXPECT_EQ(d.servers.size(), tree_.hosts_per_access);
        EXPECT_EQ(topo_.tier(d.root), topo::Tier::Access);
        break;
      case DomainKind::Pod:
        ++pods;
        EXPECT_GT(d.switches.size(), 1u);  // the agg switch + its subtree
        EXPECT_EQ(topo_.tier(d.root), topo::Tier::Aggregation);
        break;
      case DomainKind::Tier:
        ++tiers;
        EXPECT_TRUE(d.servers.empty());
        break;
    }
  }
  EXPECT_EQ(servers, topo_.servers().size());
  EXPECT_EQ(racks, access);
  EXPECT_EQ(pods, aggregation);
  EXPECT_EQ(tiers, 3u);  // access, aggregation, core all present in the tree
  EXPECT_EQ(set_.size(), servers + racks + pods + tiers);
}

TEST_F(DomainsTest, FindAddressesWithinKindAndRackOfMapsServers) {
  ASSERT_NE(set_.find(DomainKind::Rack, 0), nullptr);
  EXPECT_EQ(set_.find(DomainKind::Rack, 0)->name, "rack-0");
  EXPECT_EQ(set_.find(DomainKind::Pod, 1)->name, "pod-1");
  EXPECT_EQ(set_.find(DomainKind::Rack, 1000), nullptr);
  EXPECT_THROW(set_.at(0), std::out_of_range);
  EXPECT_THROW(set_.at(static_cast<std::uint32_t>(set_.size() + 1)),
               std::out_of_range);

  // Every server maps to exactly the rack that lists it as a member.
  for (NodeId server : topo_.servers()) {
    const std::uint32_t ord = set_.rack_of(server);
    ASSERT_NE(ord, 0u);
    const FailureDomain& rack = set_.at(ord);
    EXPECT_EQ(rack.kind, DomainKind::Rack);
    EXPECT_TRUE(std::binary_search(rack.servers.begin(), rack.servers.end(),
                                   server));
  }
  // Switches belong to no rack.
  EXPECT_EQ(set_.rack_of(topo_.switches()[0]), 0u);
}

TEST_F(DomainsTest, ParseDomainKindRoundTrips) {
  for (DomainKind kind : {DomainKind::Server, DomainKind::Rack,
                          DomainKind::Pod, DomainKind::Tier}) {
    EXPECT_EQ(parse_domain_kind(domain_kind_name(kind)), kind);
  }
  // "tor" is a documented CLI alias for the rack kind.
  EXPECT_EQ(parse_domain_kind("tor"), DomainKind::Rack);
  EXPECT_THROW(parse_domain_kind("datacenter"), std::invalid_argument);
}

TEST_F(DomainsTest, FailDomainCrashesEveryMemberAtomically) {
  const FailureDomain* rack = set_.find(DomainKind::Rack, 1);
  ASSERT_NE(rack, nullptr);
  FaultPlan plan;
  plan.fail_domain(*rack, 10.0, 5.0);
  ASSERT_EQ(plan.size(), 2 * rack->size());

  FaultState state(topo_);
  std::size_t fails = 0;
  for (const FaultEvent& ev : plan.events()) {
    // Every member event carries the domain's ordinal and a shared instant.
    EXPECT_EQ(ev.domain, rack->ordinal);
    EXPECT_DOUBLE_EQ(ev.time, ev.kind == FaultKind::Fail ? 10.0 : 15.0);
    if (ev.kind != FaultKind::Fail) continue;
    state.apply(ev);
    ++fails;
  }
  EXPECT_EQ(fails, rack->size());
  for (NodeId sw : rack->switches) EXPECT_FALSE(state.node_up(sw));
  for (NodeId s : rack->servers) EXPECT_FALSE(state.node_up(s));
  EXPECT_EQ(state.down_nodes().size(), rack->size());

  for (const FaultEvent& ev : plan.events()) {
    if (ev.kind == FaultKind::Recover) state.apply(ev);
  }
  EXPECT_FALSE(state.any_down());

  FaultDomainStats fd;
  account_domain_plan(plan, /*end=*/100.0, fd);
  EXPECT_EQ(fd.domain_faults, 1u);  // one crash instant, not size() faults
}

TEST_F(DomainsTest, DomainMtbfForksUnderADisjointSalt) {
  // The correlated-rack renewal process must not perturb any other
  // generated stream: with rack_mtbf added, the subsequence of non-domain
  // events is exactly the plan generated without it.
  MtbfConfig base;
  base.horizon = 2000.0;
  base.switch_mtbf = 300.0;
  base.switch_mttr = 40.0;
  base.server_mtbf = 400.0;
  base.server_mttr = 30.0;
  base.gray_link_mtbf = 800.0;
  base.gray_link_mttr = 100.0;

  MtbfConfig with_domains = base;
  with_domains.rack_mtbf = 500.0;
  with_domains.rack_mttr = 60.0;
  with_domains.pod_mtbf = 1500.0;
  with_domains.pod_mttr = 120.0;

  const FaultPlan plain = FaultPlan::generate(topo_, base, 42);
  const FaultPlan forked = FaultPlan::generate(topo_, with_domains, 42);
  ASSERT_GT(plain.size(), 0u);
  ASSERT_GT(forked.size(), plain.size());

  std::vector<FaultEvent> independent;
  std::size_t domain_events = 0;
  for (const FaultEvent& ev : forked.events()) {
    (ev.domain == 0 ? void(independent.push_back(ev))
                    : void(++domain_events));
  }
  EXPECT_GT(domain_events, 0u);
  ASSERT_EQ(independent.size(), plain.size());
  for (std::size_t i = 0; i < independent.size(); ++i) {
    const FaultEvent& a = plain.events()[i];
    const FaultEvent& b = independent[i];
    EXPECT_DOUBLE_EQ(a.time, b.time);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.target, b.target);
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.peer, b.peer);
    EXPECT_DOUBLE_EQ(a.factor, b.factor);
  }

  // And the generator stays a pure function of (topology, config, seed).
  const FaultPlan again = FaultPlan::generate(topo_, with_domains, 42);
  ASSERT_EQ(again.size(), forked.size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_DOUBLE_EQ(again.events()[i].time, forked.events()[i].time);
    EXPECT_EQ(again.events()[i].domain, forked.events()[i].domain);
  }
}

TEST_F(DomainsTest, ReachableComponentExcludesPartitionedRack) {
  const FailureDomain* rack = set_.find(DomainKind::Rack, 0);
  ASSERT_NE(rack, nullptr);
  FaultState state(topo_);
  // Crash only the ToR: its servers are alive yet cut off from the rest.
  state.apply(FaultEvent{1.0, FaultKind::Fail, FaultTarget::Switch,
                         rack->switches[0], NodeId{}});

  const std::vector<char> mask = reachable_component(topo_, state);
  for (NodeId s : rack->servers) EXPECT_FALSE(mask[s.index()]);
  std::size_t reachable = 0;
  for (NodeId s : topo_.servers()) {
    if (mask[s.index()]) ++reachable;
  }
  EXPECT_EQ(reachable, topo_.servers().size() - rack->servers.size());
}

}  // namespace
}  // namespace hit::sim
