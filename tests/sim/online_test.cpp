#include "sim/online.h"

#include <gtest/gtest.h>

#include "core/hit_scheduler.h"
#include "mapreduce/workload.h"
#include "sched/capacity_scheduler.h"
#include "test_helpers.h"

namespace hit::sim {
namespace {

std::vector<mr::Job> sample_jobs(mr::IdAllocator& ids, std::size_t n,
                                 std::uint64_t seed) {
  mr::WorkloadConfig config;
  config.num_jobs = n;
  config.max_maps_per_job = 4;
  config.max_reduces_per_job = 2;
  config.block_size_gb = 4.0;
  const mr::WorkloadGenerator gen(config);
  Rng rng(seed);
  return gen.generate(ids, rng);
}

class OnlineTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();  // 16 slots
  sched::CapacityScheduler capacity_;
};

TEST_F(OnlineTest, AllJobsEventuallyFinish) {
  mr::IdAllocator ids;
  const auto jobs = sample_jobs(ids, 6, 1);
  const OnlineSimulator sim(world_->cluster, OnlineConfig{0.05, {}, 0.0});
  Rng rng(1);
  const OnlineResult result = sim.run(capacity_, jobs, ids, rng);
  ASSERT_EQ(result.jobs.size(), 6u);
  for (const auto& j : result.jobs) {
    EXPECT_GE(j.scheduled, j.arrival);
    EXPECT_GT(j.finish, j.scheduled);
  }
}

TEST_F(OnlineTest, ArrivalsAreOrdered) {
  mr::IdAllocator ids;
  const auto jobs = sample_jobs(ids, 5, 2);
  const OnlineSimulator sim(world_->cluster, OnlineConfig{0.1, {}, 0.0});
  Rng rng(2);
  const OnlineResult result = sim.run(capacity_, jobs, ids, rng);
  for (std::size_t i = 1; i < result.jobs.size(); ++i) {
    EXPECT_GE(result.jobs[i].arrival, result.jobs[i - 1].arrival);
  }
}

TEST_F(OnlineTest, HighArrivalRateCausesQueueing) {
  mr::IdAllocator ids1, ids2;
  const auto jobs1 = sample_jobs(ids1, 8, 3);
  const auto jobs2 = sample_jobs(ids2, 8, 3);
  Rng rng1(3), rng2(3);
  // Nearly simultaneous arrivals vs widely spaced.
  const OnlineResult burst =
      OnlineSimulator(world_->cluster, OnlineConfig{100.0, {}, 0.0})
          .run(capacity_, jobs1, ids1, rng1);
  const OnlineResult sparse =
      OnlineSimulator(world_->cluster, OnlineConfig{0.001, {}, 0.0})
          .run(capacity_, jobs2, ids2, rng2);
  double burst_wait = 0.0, sparse_wait = 0.0;
  for (double w : burst.queueing_delays()) burst_wait += w;
  for (double w : sparse.queueing_delays()) sparse_wait += w;
  EXPECT_GT(burst_wait, sparse_wait);
  EXPECT_NEAR(sparse_wait, 0.0, 1e-6);  // empty cluster on every arrival
}

TEST_F(OnlineTest, ContainersAreRecycled) {
  // More total tasks than cluster slots, but arrivals spread out: only
  // possible if finished jobs release their containers.
  mr::IdAllocator ids;
  const auto jobs = sample_jobs(ids, 10, 4);  // 10 x 6 tasks > 16 slots
  const OnlineSimulator sim(world_->cluster, OnlineConfig{0.02, {}, 0.0});
  Rng rng(4);
  const OnlineResult result = sim.run(capacity_, jobs, ids, rng);
  EXPECT_EQ(result.jobs.size(), 10u);
}

TEST_F(OnlineTest, JobLargerThanClusterThrows) {
  mr::IdAllocator ids;
  mr::WorkloadConfig config;
  config.max_maps_per_job = 30;  // 30 maps + reduces > 16 slots
  config.block_size_gb = 1.0;
  const mr::WorkloadGenerator gen(config);
  std::vector<mr::Job> jobs{gen.make_job(mr::profile("terasort"), 30.0, ids)};
  const OnlineSimulator sim(world_->cluster, OnlineConfig{});
  Rng rng(5);
  EXPECT_THROW((void)sim.run(capacity_, jobs, ids, rng), std::runtime_error);
}

TEST_F(OnlineTest, DeterministicPerSeed) {
  auto once = [&](std::uint64_t seed) {
    mr::IdAllocator ids;
    const auto jobs = sample_jobs(ids, 5, 6);
    const OnlineSimulator sim(world_->cluster, OnlineConfig{0.05, {}, 0.0});
    Rng rng(seed);
    return sim.run(capacity_, jobs, ids, rng);
  };
  const OnlineResult a = once(9);
  const OnlineResult b = once(9);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
  }
}

TEST_F(OnlineTest, HitSeesAmbientLoad) {
  // Smoke: Hit schedules under co-tenant congestion without violating
  // anything, and completes everything.
  mr::IdAllocator ids;
  const auto jobs = sample_jobs(ids, 8, 7);
  OnlineConfig config;
  config.arrival_rate = 0.2;
  config.sim.bandwidth_scale = 0.1;
  const OnlineSimulator sim(world_->cluster, config);
  core::HitScheduler hit;
  Rng rng(7);
  const OnlineResult result = sim.run(hit, jobs, ids, rng);
  EXPECT_EQ(result.jobs.size(), 8u);
  EXPECT_GT(result.total_shuffle_gb, 0.0);
}

TEST_F(OnlineTest, MaxQueueWaitAbortsOverloadedRuns) {
  // A burst of jobs on a cluster that can run ~2 at a time: the queue tail
  // waits far longer than one job's runtime.  A tight limit must abort with
  // the documented overload error; a generous one must let the run drain.
  auto run_with_limit = [&](double limit) {
    mr::IdAllocator ids;
    const auto jobs = sample_jobs(ids, 10, 11);
    OnlineConfig config;
    config.arrival_rate = 100.0;  // near-simultaneous arrivals
    config.max_queue_wait = limit;
    const OnlineSimulator sim(world_->cluster, config);
    Rng rng(11);
    return sim.run(capacity_, jobs, ids, rng);
  };

  try {
    (void)run_with_limit(1.0);
    FAIL() << "expected overload abort";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("queue wait limit exceeded"),
              std::string::npos);
  }

  const OnlineResult ok = run_with_limit(1e6);
  EXPECT_EQ(ok.jobs.size(), 10u);
  double max_wait = 0.0;
  for (double w : ok.queueing_delays()) max_wait = std::max(max_wait, w);
  EXPECT_GT(max_wait, 1.0);  // the tight limit above was genuinely binding
}

TEST_F(OnlineTest, ZeroMaxQueueWaitMeansUnlimited) {
  mr::IdAllocator ids;
  const auto jobs = sample_jobs(ids, 8, 12);
  OnlineConfig config;
  config.arrival_rate = 100.0;
  config.max_queue_wait = 0.0;  // documented: 0 disables the guard
  const OnlineSimulator sim(world_->cluster, config);
  Rng rng(12);
  EXPECT_EQ(sim.run(capacity_, jobs, ids, rng).jobs.size(), 8u);
}

TEST_F(OnlineTest, InvalidConfigRejected) {
  EXPECT_THROW((void)OnlineSimulator(world_->cluster, OnlineConfig{0.0, {}, 0.0}),
               std::invalid_argument);
}

TEST_F(OnlineTest, EmptyWorkload) {
  mr::IdAllocator ids;
  const OnlineSimulator sim(world_->cluster, OnlineConfig{});
  Rng rng(8);
  const OnlineResult result = sim.run(capacity_, {}, ids, rng);
  EXPECT_TRUE(result.jobs.empty());
}

}  // namespace
}  // namespace hit::sim
