#include "sim/engine.h"

#include <gtest/gtest.h>

#include "core/hit_scheduler.h"
#include "sched/capacity_scheduler.h"
#include "sched/random_scheduler.h"
#include "test_helpers.h"

namespace hit::sim {
namespace {

std::vector<mr::Job> make_jobs(mr::IdAllocator& ids, std::size_t n,
                               std::size_t maps, std::size_t reduces,
                               double input_gb) {
  mr::WorkloadConfig config;
  config.max_maps_per_job = maps;
  config.max_reduces_per_job = reduces;
  config.block_size_gb = input_gb / static_cast<double>(maps);
  config.reduce_ratio =
      static_cast<double>(reduces) / static_cast<double>(maps);
  const mr::WorkloadGenerator gen(config);
  std::vector<mr::Job> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(gen.make_job(mr::profile("terasort"), input_gb, ids));
  }
  return jobs;
}

class EngineTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();  // 8x2 slots
  sched::CapacityScheduler capacity_;
};

TEST_F(EngineTest, SingleJobCompletes) {
  mr::IdAllocator ids;
  const auto jobs = make_jobs(ids, 1, 4, 2, 8.0);
  const ClusterSimulator sim(world_->cluster);
  Rng rng(1);
  const SimResult result = sim.run(capacity_, jobs, ids, rng);

  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_GT(result.jobs[0].completion_time, 0.0);
  EXPECT_EQ(result.tasks.size(), 6u);
  EXPECT_EQ(result.flows.size(), 8u);
  EXPECT_NEAR(result.total_shuffle_gb, 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.makespan, result.jobs[0].completion_time);
}

TEST_F(EngineTest, TimingsAreOrdered) {
  mr::IdAllocator ids;
  const auto jobs = make_jobs(ids, 2, 4, 2, 8.0);
  const ClusterSimulator sim(world_->cluster);
  Rng rng(2);
  const SimResult result = sim.run(capacity_, jobs, ids, rng);

  for (const TaskTiming& t : result.tasks) {
    EXPECT_LE(t.start, t.finish);
  }
  for (const FlowTiming& f : result.flows) {
    EXPECT_LE(f.release, f.finish + 1e-9);
    EXPECT_GE(f.release, 0.0);
  }
}

TEST_F(EngineTest, ReduceStartsAfterItsFlows) {
  mr::IdAllocator ids;
  const auto jobs = make_jobs(ids, 1, 4, 2, 8.0);
  const ClusterSimulator sim(world_->cluster);
  Rng rng(3);
  const SimResult result = sim.run(capacity_, jobs, ids, rng);
  double last_flow = 0.0;
  for (const FlowTiming& f : result.flows) last_flow = std::max(last_flow, f.finish);
  double last_reduce = 0.0;
  for (const TaskTiming& t : result.tasks) {
    if (t.kind == cluster::TaskKind::Reduce) {
      EXPECT_GE(t.finish, t.start);
      last_reduce = std::max(last_reduce, t.finish);
    }
  }
  // The slowest reduce cannot finish before the last shuffle byte lands.
  EXPECT_GE(last_reduce, last_flow - 1e-9);
  EXPECT_DOUBLE_EQ(result.shuffle_finish_time, last_flow);
}

TEST_F(EngineTest, WaveDecompositionRunsMapsSerially) {
  mr::IdAllocator ids;
  // 8 servers x 2 slots = 16; 2 reduces leave 14 map slots; 20 maps => 2 waves.
  const auto jobs = make_jobs(ids, 1, 20, 2, 20.0);
  const ClusterSimulator sim(world_->cluster);
  Rng rng(4);
  const SimResult result = sim.run(capacity_, jobs, ids, rng);
  // Some maps must start strictly after t=0 (second wave).
  bool second_wave = false;
  for (const TaskTiming& t : result.tasks) {
    if (t.kind == cluster::TaskKind::Map && t.start > 0.0) second_wave = true;
  }
  EXPECT_TRUE(second_wave);
}

TEST_F(EngineTest, ThrowsWhenReducesExhaustSlots) {
  mr::IdAllocator ids;
  const auto jobs = make_jobs(ids, 8, 2, 2, 4.0);  // 16 reduces = all slots
  const ClusterSimulator sim(world_->cluster);
  Rng rng(5);
  sched::CapacityScheduler scheduler;
  EXPECT_THROW((void)sim.run(scheduler, jobs, ids, rng), std::runtime_error);
}

TEST_F(EngineTest, ReducesExceedingCapacityReportTheCause) {
  mr::IdAllocator ids;
  const auto jobs = make_jobs(ids, 8, 2, 2, 4.0);  // 16 reduces = all slots
  const ClusterSimulator sim(world_->cluster);
  Rng rng(5);
  try {
    (void)sim.run(capacity_, jobs, ids, rng);
    FAIL() << "expected capacity abort";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("reduces leave no map slots"),
              std::string::npos);
  }
}

TEST_F(EngineTest, BandwidthScaleSlowsShuffle) {
  mr::IdAllocator ids1, ids2;
  const auto jobs1 = make_jobs(ids1, 2, 4, 2, 8.0);
  const auto jobs2 = make_jobs(ids2, 2, 4, 2, 8.0);

  SimConfig fast;
  fast.bandwidth_scale = 1.0;
  SimConfig slow;
  slow.bandwidth_scale = 0.05;

  Rng rng1(6), rng2(6);
  const SimResult fast_result =
      ClusterSimulator(world_->cluster, fast).run(capacity_, jobs1, ids1, rng1);
  const SimResult slow_result =
      ClusterSimulator(world_->cluster, slow).run(capacity_, jobs2, ids2, rng2);
  EXPECT_GT(slow_result.makespan, fast_result.makespan);
  EXPECT_GT(slow_result.average_flow_duration(),
            fast_result.average_flow_duration());
}

TEST_F(EngineTest, DeterministicPerSeed) {
  auto run_once = [&](std::uint64_t seed) {
    mr::IdAllocator ids;
    const auto jobs = make_jobs(ids, 2, 4, 2, 8.0);
    const ClusterSimulator sim(world_->cluster);
    Rng rng(seed);
    return sim.run(capacity_, jobs, ids, rng);
  };
  const SimResult a = run_once(7);
  const SimResult b = run_once(7);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_shuffle_cost, b.total_shuffle_cost);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].finish, b.flows[i].finish);
  }
}

TEST_F(EngineTest, ConservationBytesAccounted) {
  mr::IdAllocator ids;
  const auto jobs = make_jobs(ids, 3, 4, 2, 6.0);
  const ClusterSimulator sim(world_->cluster);
  Rng rng(8);
  const SimResult result = sim.run(capacity_, jobs, ids, rng);
  double expected = 0.0;
  for (const mr::Job& j : jobs) expected += j.shuffle_gb;
  EXPECT_NEAR(result.total_shuffle_gb, expected, 1e-6);
  double per_job = 0.0;
  for (const JobResult& j : result.jobs) per_job += j.shuffle_gb;
  EXPECT_NEAR(per_job, expected, 1e-6);
}

TEST_F(EngineTest, EmptyWorkload) {
  mr::IdAllocator ids;
  const ClusterSimulator sim(world_->cluster);
  Rng rng(9);
  const SimResult result = sim.run(capacity_, {}, ids, rng);
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
}

TEST_F(EngineTest, HitSchedulerRunsThroughWaves) {
  mr::IdAllocator ids;
  const auto jobs = make_jobs(ids, 2, 20, 2, 20.0);  // forces subsequent waves
  const ClusterSimulator sim(world_->cluster);
  core::HitScheduler hit;
  Rng rng(10);
  const SimResult result = sim.run(hit, jobs, ids, rng);
  EXPECT_EQ(result.jobs.size(), 2u);
  for (const JobResult& j : result.jobs) {
    EXPECT_GT(j.completion_time, 0.0);
  }
}

TEST_F(EngineTest, MetricsHelpers) {
  mr::IdAllocator ids;
  const auto jobs = make_jobs(ids, 2, 4, 2, 8.0);
  const ClusterSimulator sim(world_->cluster);
  Rng rng(11);
  const SimResult result = sim.run(capacity_, jobs, ids, rng);
  EXPECT_EQ(result.job_completion_times().size(), 2u);
  EXPECT_EQ(result.task_durations(cluster::TaskKind::Map).size(), 8u);
  EXPECT_EQ(result.task_durations(cluster::TaskKind::Reduce).size(), 4u);
  EXPECT_GT(result.average_route_hops(), 0.0);
  EXPECT_GT(result.shuffle_throughput(), 0.0);
}

}  // namespace
}  // namespace hit::sim
