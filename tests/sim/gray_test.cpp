// Gray-failure runtime end to end: degraded-capacity events through the
// fluid loops, health-monitor detection, quarantine/probe lifecycle, and the
// bit-identical-when-disabled guarantee.
#include "sim/gray.h"

#include <gtest/gtest.h>

#include "core/hit_scheduler.h"
#include "mapreduce/workload.h"
#include "sched/capacity_scheduler.h"
#include "sim/engine.h"
#include "sim/online.h"
#include "test_helpers.h"

namespace hit::sim {
namespace {

std::vector<mr::Job> sample_jobs(mr::IdAllocator& ids, std::size_t n,
                                 std::uint64_t seed) {
  mr::WorkloadConfig config;
  config.num_jobs = n;
  config.max_maps_per_job = 6;
  config.max_reduces_per_job = 2;
  config.block_size_gb = 3.0;
  const mr::WorkloadGenerator gen(config);
  Rng rng(seed);
  return gen.generate(ids, rng);
}

class GrayRunTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();

  NodeId access_switch() {
    for (NodeId sw : world_->topology.switches()) {
      if (world_->topology.tier(sw) == topo::Tier::Access) return sw;
    }
    throw std::logic_error("no access switch in test tree");
  }

  SimResult run_batch(const SimConfig& config, std::uint64_t seed) {
    sched::CapacityScheduler scheduler;
    mr::IdAllocator ids;
    const auto jobs = sample_jobs(ids, 4, seed);
    Rng rng(seed);
    return ClusterSimulator(world_->cluster, config).run(scheduler, jobs, ids, rng);
  }
};

TEST_F(GrayRunTest, OffByDefault) {
  const SimConfig config;
  EXPECT_FALSE(config.gray.enabled());
  const SimResult result = run_batch(config, 11);
  EXPECT_FALSE(result.gray.any());
}

TEST_F(GrayRunTest, MonitorOnCleanRunIsBitIdenticalAndSilent) {
  SimConfig off;
  SimConfig on;
  on.gray.monitor = true;
  const SimResult a = run_batch(off, 12);
  const SimResult b = run_batch(on, 12);

  // Zero false positives on healthy hardware: with an empty degrade map the
  // nominal allocation IS the observed allocation, so every ratio is 1.
  EXPECT_EQ(b.gray.detections, 0u);
  EXPECT_EQ(b.gray.false_positives, 0u);
  EXPECT_EQ(b.gray.quarantines, 0u);

  // And the monitor is a pure observer: results match the disabled run.
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_shuffle_cost, b.total_shuffle_cost);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].completion_time, b.jobs[i].completion_time);
  }
}

TEST_F(GrayRunTest, BatchMonitorDetectsScriptedDegrade) {
  SimConfig config;
  config.gray.monitor = true;
  // Nearly dead but still "up": the definitional gray failure.
  config.faults.degrade_switch(access_switch(), 0.05, 1.0, 10'000.0);
  const SimResult result = run_batch(config, 13);

  EXPECT_EQ(result.gray.degradations, 1u);
  EXPECT_GT(result.gray.degraded_seconds, 0.0);
  EXPECT_GE(result.gray.detections, 1u);
  EXPECT_GT(result.gray.mean_time_to_detect, 0.0);
  // Monitor without quarantine never quarantines.
  EXPECT_EQ(result.gray.quarantines, 0u);
  // The crawl is real: the run is slower than its healthy twin.
  SimConfig clean;
  EXPECT_GT(result.makespan, run_batch(clean, 13).makespan);
}

TEST_F(GrayRunTest, DegradeEventsAloneDoNotNeedTheMonitor) {
  // Capacity scaling is part of the fluid solver, not the monitor: the
  // degraded run slows down even with gray handling fully disabled.
  SimConfig config;
  config.faults.degrade_switch(access_switch(), 0.05, 1.0, 10'000.0);
  const SimResult degraded = run_batch(config, 14);
  EXPECT_EQ(degraded.gray.detections, 0u);  // nobody watched
  EXPECT_EQ(degraded.gray.degradations, 1u);  // ground truth still accounted
  SimConfig clean;
  EXPECT_GT(degraded.makespan, run_batch(clean, 14).makespan);
}

TEST_F(GrayRunTest, BatchGrayRunIsDeterministic) {
  SimConfig config;
  config.gray.quarantine = true;
  config.faults.degrade_switch(access_switch(), 0.05, 1.0, 60.0);
  const SimResult a = run_batch(config, 15);
  const SimResult b = run_batch(config, 15);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_shuffle_cost, b.total_shuffle_cost);
  EXPECT_EQ(a.gray.detections, b.gray.detections);
  EXPECT_EQ(a.gray.false_positives, b.gray.false_positives);
  EXPECT_EQ(a.gray.quarantines, b.gray.quarantines);
  EXPECT_EQ(a.gray.probes, b.gray.probes);
  EXPECT_EQ(a.gray.reinstatements, b.gray.reinstatements);
  EXPECT_DOUBLE_EQ(a.gray.quarantine_seconds, b.gray.quarantine_seconds);
}

class GrayOnlineTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();
  core::HitScheduler scheduler_;

  OnlineResult run_online(const OnlineConfig& config, std::uint64_t seed) {
    mr::IdAllocator ids;
    const auto jobs = sample_jobs(ids, 5, seed);
    Rng rng(seed);
    return OnlineSimulator(world_->cluster, config).run(scheduler_, jobs, ids, rng);
  }

  NodeId access_switch() {
    for (NodeId sw : world_->topology.switches()) {
      if (world_->topology.tier(sw) == topo::Tier::Access) return sw;
    }
    throw std::logic_error("no access switch in test tree");
  }
};

TEST_F(GrayOnlineTest, MonitorOnCleanRunIsBitIdenticalAndSilent) {
  OnlineConfig off;
  off.arrival_rate = 0.05;
  OnlineConfig on = off;
  on.sim.gray.monitor = true;
  const OnlineResult a = run_online(off, 21);
  const OnlineResult b = run_online(on, 21);
  EXPECT_FALSE(b.gray.any());
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_shuffle_cost, b.total_shuffle_cost);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
  }
}

TEST_F(GrayOnlineTest, QuarantineLifecycleReinstatesAfterRestore) {
  OnlineConfig config;
  // Burst arrivals: the cluster is busy from the start, so shuffle traffic
  // crosses the crawling switch while it is still degraded.
  config.arrival_rate = 2.0;
  config.sim.gray.quarantine = true;
  config.sim.gray.probe_interval = 5.0;
  // Degrade early, restore mid-run: probes must eventually pass and lift
  // the quarantine while the run is still going.
  config.sim.faults.degrade_switch(access_switch(), 0.05, 2.0, 60.0);
  const OnlineResult result = run_online(config, 22);

  ASSERT_EQ(result.jobs.size(), 5u) << "every job still completes";
  EXPECT_EQ(result.gray.degradations, 1u);
  EXPECT_GE(result.gray.detections, 1u);
  EXPECT_GE(result.gray.quarantines, 1u);
  EXPECT_GT(result.gray.probes, 0u);
  EXPECT_GE(result.gray.reinstatements, 1u);
  EXPECT_GT(result.gray.quarantine_seconds, 0.0);
}

TEST_F(GrayOnlineTest, OnlineGrayRunIsDeterministic) {
  OnlineConfig config;
  config.arrival_rate = 0.05;
  config.sim.gray.quarantine = true;
  config.sim.faults.degrade_switch(access_switch(), 0.05, 2.0, 40.0);
  const OnlineResult a = run_online(config, 23);
  const OnlineResult b = run_online(config, 23);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_shuffle_cost, b.total_shuffle_cost);
  EXPECT_EQ(a.gray.detections, b.gray.detections);
  EXPECT_EQ(a.gray.false_positives, b.gray.false_positives);
  EXPECT_EQ(a.gray.quarantines, b.gray.quarantines);
  EXPECT_EQ(a.gray.probes, b.gray.probes);
  EXPECT_EQ(a.gray.reinstatements, b.gray.reinstatements);
}

TEST_F(GrayOnlineTest, GrayRenewalStreamsLeaveCrashEventsUntouched) {
  // Adding gray MTBF knobs must not perturb the crash schedule: the crash
  // events of a crash-only plan reappear byte-for-byte in the mixed plan.
  MtbfConfig crashes;
  crashes.horizon = 400.0;
  crashes.switch_mtbf = 120.0;
  crashes.switch_mttr = 20.0;
  MtbfConfig mixed = crashes;
  mixed.gray_switch_mtbf = 90.0;
  mixed.gray_switch_mttr = 30.0;

  const FaultPlan a = FaultPlan::generate(world_->topology, crashes, 31);
  const FaultPlan b = FaultPlan::generate(world_->topology, mixed, 31);
  std::vector<FaultEvent> crash_only;
  for (const FaultEvent& ev : b.events()) {
    if (ev.kind == FaultKind::Fail || ev.kind == FaultKind::Recover) {
      crash_only.push_back(ev);
    }
  }
  ASSERT_EQ(crash_only.size(), a.size());
  EXPECT_GT(b.size(), a.size()) << "gray stream generated no events";
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(crash_only[i].time, a.events()[i].time);
    EXPECT_EQ(crash_only[i].kind, a.events()[i].kind);
    EXPECT_EQ(crash_only[i].node, a.events()[i].node);
  }
  for (const FaultEvent& ev : b.events()) {
    if (ev.kind == FaultKind::Degrade) {
      EXPECT_GT(ev.factor, 0.0);
      EXPECT_LT(ev.factor, 1.0);
    }
  }
}

}  // namespace
}  // namespace hit::sim
