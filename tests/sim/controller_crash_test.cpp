// Controller-crash fault events end to end (DESIGN.md §15): blackout
// fail-static semantics in both simulators, restart reconciliation, the
// bit-identical-when-disabled guarantee, warm-standby clamping, and
// crash-run determinism.
#include "sim/ctrlplane.h"

#include <gtest/gtest.h>

#include "mapreduce/workload.h"
#include "sched/capacity_scheduler.h"
#include "sim/engine.h"
#include "sim/online.h"
#include "test_helpers.h"

namespace hit::sim {
namespace {

std::vector<mr::Job> sample_jobs(mr::IdAllocator& ids, std::size_t n,
                                 std::uint64_t seed) {
  mr::WorkloadConfig config;
  config.num_jobs = n;
  config.max_maps_per_job = 6;
  config.max_reduces_per_job = 2;
  config.block_size_gb = 3.0;
  const mr::WorkloadGenerator gen(config);
  Rng rng(seed);
  return gen.generate(ids, rng);
}

void expect_control_equal(const ControlPlaneStats& a,
                          const ControlPlaneStats& b) {
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_DOUBLE_EQ(a.blackout_seconds, b.blackout_seconds);
  EXPECT_EQ(a.waves_delayed, b.waves_delayed);
  EXPECT_EQ(a.flows_failstatic, b.flows_failstatic);
  EXPECT_EQ(a.flows_stalled_blackout, b.flows_stalled_blackout);
  EXPECT_EQ(a.reconcile_violations, b.reconcile_violations);
  EXPECT_EQ(a.reconcile_repairs, b.reconcile_repairs);
  EXPECT_EQ(a.journal_records, b.journal_records);
  EXPECT_EQ(a.snapshots, b.snapshots);
  EXPECT_EQ(a.replayed_records, b.replayed_records);
}

class ControllerCrashBatchTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();

  SimResult run_batch(const SimConfig& config, std::uint64_t seed,
                      std::size_t n = 4) {
    sched::CapacityScheduler scheduler;
    mr::IdAllocator ids;
    const auto jobs = sample_jobs(ids, n, seed);
    Rng rng(seed);
    return ClusterSimulator(world_->cluster, config).run(scheduler, jobs, ids,
                                                         rng);
  }
};

TEST_F(ControllerCrashBatchTest, OffByDefault) {
  const SimConfig config;
  EXPECT_FALSE(config.recovery.enabled());
  const SimResult result = run_batch(config, 21);
  EXPECT_FALSE(result.control.any());
}

TEST_F(ControllerCrashBatchTest, RecoveryOnCleanRunIsBitIdentical) {
  // The journal cadence is pure accounting: with no crash scripted, results
  // must match the disabled run exactly (the OFF-by-default guarantee).
  SimConfig off;
  SimConfig on;
  on.recovery.snapshot_every = 25.0;
  const SimResult a = run_batch(off, 22);
  const SimResult b = run_batch(on, 22);

  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_shuffle_cost, b.total_shuffle_cost);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].completion_time, b.jobs[i].completion_time);
  }
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].finish, b.flows[i].finish);
  }
  // ... while the journal side still accounted its records.
  EXPECT_EQ(b.control.crashes, 0u);
  EXPECT_GT(b.control.journal_records, 0u);
  EXPECT_GT(b.control.snapshots, 0u);
}

TEST_F(ControllerCrashBatchTest, CrashBlacksOutAndRestartReconciles) {
  SimConfig config;
  config.faults.crash_controller(1.0, 30.0);
  config.recovery.snapshot_every = 20.0;
  const SimResult result = run_batch(config, 23);

  EXPECT_EQ(result.control.crashes, 1u);
  EXPECT_EQ(result.control.restarts, 1u);
  EXPECT_GT(result.control.blackout_seconds, 0.0);
  EXPECT_LE(result.control.blackout_seconds, 30.0 + 1e-9);
  // Restart re-anchors the replay window at a (possibly implicit) snapshot.
  EXPECT_GE(result.control.snapshots, 1u);
  // Every divergence found at restart must be repaired.
  EXPECT_EQ(result.control.reconcile_violations,
            result.control.reconcile_repairs);
  // The run still completes every job.
  EXPECT_EQ(result.jobs.size(), 4u);
}

TEST_F(ControllerCrashBatchTest, CrashWithPendingWavesDefersLaunches) {
  // Crash before the first reduce wave with a long blackout: map waves that
  // would launch inside it are deferred past the restart, stretching the
  // makespan by roughly the blackout.
  SimConfig clean;
  const SimResult base = run_batch(clean, 24, 6);

  SimConfig config;
  config.faults.crash_controller(1.0, base.makespan + 60.0);
  const SimResult crashed = run_batch(config, 24, 6);

  EXPECT_GT(crashed.control.waves_delayed + crashed.control.flows_failstatic +
                crashed.control.flows_stalled_blackout,
            0u);
  EXPECT_GE(crashed.makespan, base.makespan);
  EXPECT_EQ(crashed.jobs.size(), 6u);
}

TEST_F(ControllerCrashBatchTest, CrashRunsAreDeterministic) {
  SimConfig config;
  config.faults.crash_controller(2.0, 45.0);
  config.recovery.snapshot_every = 10.0;
  const SimResult a = run_batch(config, 25, 6);
  const SimResult b = run_batch(config, 25, 6);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_shuffle_cost, b.total_shuffle_cost);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].release, b.flows[i].release);
    EXPECT_DOUBLE_EQ(a.flows[i].finish, b.flows[i].finish);
  }
  expect_control_equal(a.control, b.control);
}

TEST_F(ControllerCrashBatchTest, WarmStandbyClampsTheBlackout) {
  SimConfig full;
  full.faults.crash_controller(2.0, 120.0);
  const SimResult slow = run_batch(full, 26, 6);

  SimConfig standby = full;
  standby.recovery.standby = true;
  standby.recovery.standby_takeover_s = 5.0;
  const SimResult fast = run_batch(standby, 26, 6);

  EXPECT_EQ(fast.control.crashes, 1u);
  EXPECT_EQ(fast.control.restarts, 1u);
  EXPECT_LE(fast.control.blackout_seconds, 5.0 + 1e-9);
  EXPECT_LE(fast.control.blackout_seconds, slow.control.blackout_seconds);
  EXPECT_LE(fast.makespan, slow.makespan + 1e-9);
}

TEST_F(ControllerCrashBatchTest, StandbyTakesOverPermanentCrashes) {
  // A crash with no scripted restart fails static forever; warm standby
  // inserts its own takeover so the run can finish.
  SimConfig config;
  config.faults.crash_controller(1.0);  // permanent
  config.recovery.standby = true;
  config.recovery.standby_takeover_s = 8.0;
  const SimResult result = run_batch(config, 27, 6);
  EXPECT_EQ(result.control.crashes, 1u);
  EXPECT_EQ(result.control.restarts, 1u);
  EXPECT_LE(result.control.blackout_seconds, 8.0 + 1e-9);
  EXPECT_EQ(result.jobs.size(), 6u);
}

class ControllerCrashOnlineTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();

  OnlineResult run_online(const OnlineConfig& config, std::uint64_t seed,
                          std::size_t n = 6) {
    sched::CapacityScheduler scheduler;
    mr::IdAllocator ids;
    const auto jobs = sample_jobs(ids, n, seed);
    Rng rng(seed);
    return OnlineSimulator(world_->cluster, config).run(scheduler, jobs, ids,
                                                        rng);
  }
};

TEST_F(ControllerCrashOnlineTest, RecoveryOnCleanRunIsBitIdentical) {
  OnlineConfig off;
  off.arrival_rate = 0.5;
  OnlineConfig on = off;
  on.sim.recovery.snapshot_every = 25.0;
  const OnlineResult a = run_online(off, 31);
  const OnlineResult b = run_online(on, 31);

  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
    EXPECT_DOUBLE_EQ(a.jobs[i].scheduled, b.jobs[i].scheduled);
  }
  EXPECT_EQ(b.control.crashes, 0u);
  EXPECT_GT(b.control.journal_records, 0u);
}

TEST_F(ControllerCrashOnlineTest, BlackoutQueuesArrivalsAndReconciles) {
  OnlineConfig config;
  config.arrival_rate = 0.5;
  config.sim.faults.crash_controller(2.0, 60.0);
  config.sim.recovery.snapshot_every = 20.0;
  const OnlineResult result = run_online(config, 32, 8);

  EXPECT_EQ(result.control.crashes, 1u);
  EXPECT_EQ(result.control.restarts, 1u);
  EXPECT_GT(result.control.blackout_seconds, 0.0);
  // Arrivals inside the blackout cannot be scheduled until the restart.
  EXPECT_GT(result.control.waves_delayed, 0u);
  // Zero unreconciled: every stalled flow found at restart was resumed.
  EXPECT_EQ(result.control.reconcile_violations,
            result.control.reconcile_repairs);
  // All jobs eventually complete (nothing is shed by a blackout).
  EXPECT_EQ(result.jobs.size(), 8u);
}

TEST_F(ControllerCrashOnlineTest, CrashRunsAreDeterministic) {
  OnlineConfig config;
  config.arrival_rate = 0.5;
  config.sim.faults.crash_controller(2.0, 60.0);
  config.sim.recovery.snapshot_every = 20.0;
  const OnlineResult a = run_online(config, 33, 8);
  const OnlineResult b = run_online(config, 33, 8);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
  }
  expect_control_equal(a.control, b.control);
}

TEST_F(ControllerCrashOnlineTest, StandbyClampsOnlineBlackout) {
  OnlineConfig config;
  config.arrival_rate = 0.5;
  config.sim.faults.crash_controller(2.0, 120.0);
  const OnlineResult slow = run_online(config, 34, 8);

  OnlineConfig standby = config;
  standby.sim.recovery.standby = true;
  standby.sim.recovery.standby_takeover_s = 5.0;
  const OnlineResult fast = run_online(standby, 34, 8);

  EXPECT_LE(fast.control.blackout_seconds, 5.0 + 1e-9);
  EXPECT_LE(fast.control.blackout_seconds, slow.control.blackout_seconds);
}

TEST(CtrlPlaneRuntimeTest, StandbyPlanClampsAndCoversPermanentCrashes) {
  CtrlPlaneConfig config;
  config.standby = true;
  config.standby_takeover_s = 10.0;
  const CtrlPlaneRuntime runtime(config);

  FaultPlan plan;
  plan.crash_controller(100.0, 300.0);  // restart at 400 -> clamp to 110
  plan.crash_controller(500.0);         // permanent -> takeover at 510
  const std::vector<FaultEvent> events = runtime.plan_events(plan);

  std::vector<std::pair<double, FaultKind>> ctrl;
  for (const FaultEvent& ev : events) {
    if (ev.target == FaultTarget::Controller) ctrl.emplace_back(ev.time, ev.kind);
  }
  ASSERT_EQ(ctrl.size(), 4u);
  EXPECT_DOUBLE_EQ(ctrl[0].first, 100.0);
  EXPECT_EQ(ctrl[0].second, FaultKind::ControllerCrash);
  EXPECT_DOUBLE_EQ(ctrl[1].first, 110.0);
  EXPECT_EQ(ctrl[1].second, FaultKind::ControllerRestart);
  EXPECT_DOUBLE_EQ(ctrl[2].first, 500.0);
  EXPECT_EQ(ctrl[2].second, FaultKind::ControllerCrash);
  EXPECT_DOUBLE_EQ(ctrl[3].first, 510.0);
  EXPECT_EQ(ctrl[3].second, FaultKind::ControllerRestart);
}

TEST(CtrlPlaneRuntimeTest, FaultStateRejectsControllerEvents) {
  // Controller events are intercepted by the simulators before FaultState
  // dispatch; feeding one through is a programming error that must not pass
  // silently.
  const topo::Topology topo = topo::make_case_study_tree();
  FaultState state(topo);
  FaultEvent ev;
  ev.target = FaultTarget::Controller;
  ev.kind = FaultKind::ControllerCrash;
  EXPECT_THROW(state.apply(ev), std::invalid_argument);
}

}  // namespace
}  // namespace hit::sim
