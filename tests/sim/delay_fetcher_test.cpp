#include "sim/delay_fetcher.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace hit::sim {
namespace {

class DelayFetcherTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::tiny_tree_world();  // links 16.0
};

TEST_F(DelayFetcherTest, FormulaMatchesPaper) {
  // Delay = C(s_i, s_j) / B_ij = size x hops / bottleneck bandwidth.
  const DelayFetcher f(world_->cluster);
  EXPECT_DOUBLE_EQ(f.fetch_seconds(8.0, ServerId(0), ServerId(1)), 8.0 * 1 / 16.0);
  EXPECT_DOUBLE_EQ(f.fetch_seconds(8.0, ServerId(0), ServerId(3)), 8.0 * 3 / 16.0);
}

TEST_F(DelayFetcherTest, LocalFetchFreeByDefault) {
  const DelayFetcher f(world_->cluster);
  EXPECT_DOUBLE_EQ(f.fetch_seconds(8.0, ServerId(0), ServerId(0)), 0.0);
}

TEST_F(DelayFetcherTest, LocalDiskModel) {
  const DelayFetcher f(world_->cluster, 1.0, 4.0);
  EXPECT_DOUBLE_EQ(f.fetch_seconds(8.0, ServerId(0), ServerId(0)), 2.0);
}

TEST_F(DelayFetcherTest, BandwidthScaleDividesThroughput) {
  const DelayFetcher slow(world_->cluster, 0.5);
  EXPECT_DOUBLE_EQ(slow.fetch_seconds(8.0, ServerId(0), ServerId(1)),
                   8.0 * 1 / 8.0);
  EXPECT_DOUBLE_EQ(slow.path_bandwidth(ServerId(0), ServerId(1)), 8.0);
}

TEST_F(DelayFetcherTest, ZeroSizeIsFree) {
  const DelayFetcher f(world_->cluster);
  EXPECT_DOUBLE_EQ(f.fetch_seconds(0.0, ServerId(0), ServerId(3)), 0.0);
}

TEST_F(DelayFetcherTest, Validation) {
  EXPECT_THROW((void)DelayFetcher(world_->cluster, 0.0), std::invalid_argument);
  EXPECT_THROW((void)DelayFetcher(world_->cluster, 1.0, -1.0), std::invalid_argument);
  const DelayFetcher f(world_->cluster);
  EXPECT_THROW((void)f.fetch_seconds(-1.0, ServerId(0), ServerId(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hit::sim
