// Faults during coflow-scheduled shuffles: SEBF ordering + MADD rates stay
// deterministic across replays and never over-commit the residual ledger,
// including when a degrade map shrinks element capacities mid-run.
#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "coflow/rate_allocator.h"
#include "mapreduce/workload.h"
#include "network/bandwidth.h"
#include "sched/capacity_scheduler.h"
#include "sim/engine.h"
#include "test_helpers.h"
#include "topology/builders.h"

namespace hit::sim {
namespace {

/// Feasibility against *degraded* capacities: no link or switch may carry
/// more than capacity x gray factor (x scale).
void expect_feasible_degraded(const topo::Topology& topo,
                              const std::vector<net::FlowDemand>& demands,
                              const std::vector<double>& rates,
                              const net::CapacityMap& degrade,
                              double scale = 1.0) {
  std::map<std::pair<NodeId, NodeId>, double> link_load;
  std::map<NodeId, double> switch_load;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const topo::Path& p = demands[i].path;
    for (std::size_t e = 0; e + 1 < p.size(); ++e) {
      link_load[std::minmax(p[e], p[e + 1])] += rates[i];
    }
    for (NodeId n : p) {
      if (topo.is_switch(n)) switch_load[n] += rates[i];
    }
  }
  for (const auto& [link, load] : link_load) {
    const auto cap = topo.graph().bandwidth(link.first, link.second);
    ASSERT_TRUE(cap.has_value());
    EXPECT_LE(load,
              *cap * degrade.link_factor(link.first, link.second) * scale + 1e-9);
  }
  for (const auto& [sw, load] : switch_load) {
    EXPECT_LE(load,
              topo.switch_capacity(sw) * degrade.switch_factor(sw) * scale + 1e-9);
  }
}

TEST(MaddDegrade, RatesRespectDegradedSwitchCapacity) {
  const topo::Topology topo = topo::make_case_study_tree();
  const auto servers = topo.servers();
  // Cross-rack flow: host link 16, access 64, root 128.  Degrading the root
  // to 5% (6.4) moves the bottleneck off the host link onto the gray switch.
  const NodeId root = topo.switches()[0];
  net::CapacityMap degrade;
  degrade.set_switch(root, 0.05);

  const std::vector<net::FlowDemand> demands{
      net::FlowDemand{FlowId(1), topo.shortest_path(servers[0], servers[3]), 0.0}};
  const auto rates =
      coflow::madd_allocate(topo, demands, {4.0}, {{0}}, 1.0, &degrade);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 128.0 * 0.05);
  expect_feasible_degraded(topo, demands, rates, degrade);

  // Same call without the map saturates the host link instead.
  const auto healthy = coflow::madd_allocate(topo, demands, {4.0}, {{0}});
  EXPECT_DOUBLE_EQ(healthy[0], 16.0);
}

TEST(MaddDegrade, MultiCoflowAllocationStaysFeasibleUnderDegrade) {
  const topo::Topology topo = topo::make_case_study_tree();
  const auto servers = topo.servers();
  net::CapacityMap degrade;
  degrade.set_switch(topo.switches()[0], 0.1);
  degrade.set_link(servers[0], topo.switches()[1], 0.5);

  std::vector<net::FlowDemand> demands;
  unsigned id = 0;
  for (std::size_t src = 0; src < 2; ++src) {
    for (std::size_t dst = 2; dst < 4; ++dst) {
      demands.push_back(net::FlowDemand{
          FlowId(++id), topo.shortest_path(servers[src], servers[dst]), 0.0});
    }
  }
  const std::vector<double> remaining{8.0, 6.0, 4.0, 2.0};
  const std::vector<std::vector<std::size_t>> groups{{0, 1}, {2, 3}};
  const auto rates =
      coflow::madd_allocate(topo, demands, remaining, groups, 1.0, &degrade);
  expect_feasible_degraded(topo, demands, rates, degrade);
  // Work is still being served despite the degrade.
  double total = 0.0;
  for (double r : rates) total += r;
  EXPECT_GT(total, 0.0);
}

TEST(MaddDegrade, LedgerRefusesOverCommitOfDegradedElements) {
  const topo::Topology topo = topo::make_case_study_tree();
  const auto servers = topo.servers();
  const NodeId root = topo.switches()[0];
  net::CapacityMap degrade;
  degrade.set_switch(root, 0.25);  // 128 -> 32

  net::ResidualLedger ledger(topo, 1.0, &degrade);
  const topo::Path path = topo.shortest_path(servers[0], servers[3]);
  ledger.add_path(path);
  EXPECT_DOUBLE_EQ(ledger.bottleneck(path), 16.0);  // host link still binds
  ledger.charge(path, 16.0);
  EXPECT_THROW(ledger.charge(path, 1.0), std::logic_error);

  // A harsher factor makes the switch itself the guard.
  net::CapacityMap harsher;
  harsher.set_switch(root, 0.05);  // 128 -> 6.4
  net::ResidualLedger tight(topo, 1.0, &harsher);
  tight.add_path(path);
  EXPECT_DOUBLE_EQ(tight.bottleneck(path), 6.4);
  EXPECT_THROW(tight.charge(path, 7.0), std::logic_error);
}

class CoflowFaultsTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::small_tree_world();

  SimResult run(const SimConfig& config, std::uint64_t seed) {
    sched::CapacityScheduler scheduler;
    mr::IdAllocator ids;
    mr::WorkloadConfig wconfig;
    wconfig.num_jobs = 4;
    wconfig.max_maps_per_job = 6;
    wconfig.max_reduces_per_job = 2;
    wconfig.block_size_gb = 3.0;
    const mr::WorkloadGenerator gen(wconfig);
    Rng jobs_rng(seed);
    const auto jobs = gen.generate(ids, jobs_rng);
    Rng rng(seed + 100);
    return ClusterSimulator(world_->cluster, config)
        .run(scheduler, jobs, ids, rng);
  }

  SimConfig faulty_coflow_config() {
    SimConfig config;
    config.coflow.enabled = true;
    config.coflow.order = coflow::OrderPolicy::Sebf;
    // Mid-run chaos: one crash with repair, one gray degrade with restore.
    const auto& switches = world_->topology.switches();
    config.faults.fail_switch(switches[0], 8.0, 10.0);
    config.faults.degrade_switch(switches[switches.size() - 1], 0.1, 4.0, 30.0);
    return config;
  }
};

TEST_F(CoflowFaultsTest, SebfMaddRunSurvivesMidRunFaults) {
  const SimResult result = run(faulty_coflow_config(), 41);
  ASSERT_EQ(result.jobs.size(), 4u);
  for (const auto& j : result.jobs) {
    EXPECT_GT(j.completion_time, 0.0);
  }
  EXPECT_GT(result.recovery.faults_applied, 0u);
  EXPECT_EQ(result.gray.degradations, 1u);
  EXPECT_FALSE(result.coflows.empty());
  // The ledger would have thrown std::logic_error on any over-commit; a
  // completed run IS the feasibility certificate for every solved round.
}

TEST_F(CoflowFaultsTest, SebfMaddFaultyRunIsDeterministic) {
  const SimResult a = run(faulty_coflow_config(), 42);
  const SimResult b = run(faulty_coflow_config(), 42);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_shuffle_cost, b.total_shuffle_cost);
  EXPECT_DOUBLE_EQ(a.total_shuffle_gb, b.total_shuffle_gb);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].completion_time, b.jobs[i].completion_time);
    EXPECT_DOUBLE_EQ(a.jobs[i].shuffle_cost, b.jobs[i].shuffle_cost);
  }
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.coflows[i].finish, b.coflows[i].finish);
  }
}

TEST_F(CoflowFaultsTest, FifoOrderAlsoSurvivesFaults) {
  SimConfig config = faulty_coflow_config();
  config.coflow.order = coflow::OrderPolicy::Fifo;
  const SimResult result = run(config, 43);
  ASSERT_EQ(result.jobs.size(), 4u);
  EXPECT_GT(result.makespan, 0.0);
}

}  // namespace
}  // namespace hit::sim
