#include "cluster/node_manager.h"

#include <gtest/gtest.h>

#include "topology/builders.h"

namespace hit::cluster {
namespace {

class NodeManagerTest : public ::testing::Test {
 protected:
  topo::Topology topology_ = topo::make_case_study_tree();
  Cluster cluster_{topology_, Resource{2.0, 8.0}};
  ResourceManager rm_{cluster_};

  ContainerId grant(ServerId host) {
    ResourceRequest r;
    r.task = TaskId(next_task_++);
    r.preferred_host = host;
    r.strict = true;
    const auto c = rm_.allocate(r);
    EXPECT_TRUE(c.has_value());
    return *c;
  }

  unsigned next_task_ = 0;
};

TEST_F(NodeManagerTest, LaunchAndComplete) {
  NodeManagerPool pool(rm_);
  const ContainerId c = grant(ServerId(0));
  pool.launch(rm_, c, 1.0);
  NodeManager& nm = pool.at(ServerId(0));
  EXPECT_TRUE(nm.running(c));
  EXPECT_EQ(nm.running_count(), 1u);
  nm.complete(c, 5.0);
  EXPECT_FALSE(nm.running(c));
  ASSERT_EQ(nm.history().size(), 1u);
  EXPECT_EQ(nm.history()[0].launched_at, 1.0);
  EXPECT_EQ(nm.history()[0].completed_at, 5.0);
}

TEST_F(NodeManagerTest, RejectsWrongHost) {
  NodeManagerPool pool(rm_);
  const ContainerId c = grant(ServerId(0));
  EXPECT_THROW(pool.at(ServerId(1)).launch(c, 0.0), std::invalid_argument);
}

TEST_F(NodeManagerTest, RejectsDoubleLaunchAndStrayComplete) {
  NodeManagerPool pool(rm_);
  const ContainerId c = grant(ServerId(0));
  pool.launch(rm_, c, 0.0);
  EXPECT_THROW(pool.at(ServerId(0)).launch(c, 1.0), std::invalid_argument);
  EXPECT_THROW(pool.at(ServerId(1)).complete(c, 1.0), std::invalid_argument);
}

TEST_F(NodeManagerTest, RejectsReleasedContainer) {
  NodeManagerPool pool(rm_);
  const ContainerId c = grant(ServerId(0));
  rm_.release(c);
  EXPECT_THROW(pool.launch(rm_, c, 0.0), std::invalid_argument);
}

TEST_F(NodeManagerTest, PoolCoversAllServers) {
  NodeManagerPool pool(rm_);
  for (const Server& s : cluster_.servers()) {
    EXPECT_EQ(pool.at(s.id).server(), s.id);
  }
  EXPECT_THROW((void)pool.at(ServerId(99)), std::out_of_range);
}

}  // namespace
}  // namespace hit::cluster
