#include "cluster/resource_manager.h"

#include <gtest/gtest.h>

#include "topology/builders.h"

namespace hit::cluster {
namespace {

class ResourceManagerTest : public ::testing::Test {
 protected:
  topo::Topology topology_ = topo::make_case_study_tree();
  Cluster cluster_{topology_, Resource{2.0, 8.0}};
  ResourceManager rm_{cluster_};

  ResourceRequest request(TaskId task, ServerId preferred = ServerId{},
                          bool strict = false) {
    ResourceRequest r;
    r.task = task;
    r.job = JobId(0);
    r.preferred_host = preferred;
    r.strict = strict;
    return r;
  }
};

TEST_F(ResourceManagerTest, GrantsOnPreferredHost) {
  const ServerId s2(1);
  const auto c = rm_.allocate(request(TaskId(1), s2));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(rm_.container(*c).host, s2);
  EXPECT_EQ(rm_.used(s2), kDefaultContainerDemand);
}

TEST_F(ResourceManagerTest, FallsBackWhenPreferredFull) {
  const ServerId s1(0);
  ASSERT_TRUE(rm_.allocate(request(TaskId(1), s1)).has_value());
  ASSERT_TRUE(rm_.allocate(request(TaskId(2), s1)).has_value());
  const auto c = rm_.allocate(request(TaskId(3), s1));
  ASSERT_TRUE(c.has_value());
  EXPECT_NE(rm_.container(*c).host, s1);  // fell back
}

TEST_F(ResourceManagerTest, StrictRequestFailsWhenPreferredFull) {
  const ServerId s1(0);
  ASSERT_TRUE(rm_.allocate(request(TaskId(1), s1)).has_value());
  ASSERT_TRUE(rm_.allocate(request(TaskId(2), s1)).has_value());
  EXPECT_FALSE(rm_.allocate(request(TaskId(3), s1, /*strict=*/true)).has_value());
}

TEST_F(ResourceManagerTest, AnywhereRequestUsesFirstFit) {
  const auto c = rm_.allocate(request(TaskId(1)));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(rm_.container(*c).host, ServerId(0));
}

TEST_F(ResourceManagerTest, ExhaustsCluster) {
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rm_.allocate(request(TaskId(static_cast<unsigned>(i)))).has_value());
  }
  EXPECT_FALSE(rm_.allocate(request(TaskId(99))).has_value());
}

TEST_F(ResourceManagerTest, ReleaseFreesResources) {
  const auto c = rm_.allocate(request(TaskId(1), ServerId(0)));
  ASSERT_TRUE(c.has_value());
  rm_.release(*c);
  EXPECT_EQ(rm_.used(ServerId(0)), (Resource{0, 0}));
  rm_.release(*c);  // idempotent
  EXPECT_EQ(rm_.used(ServerId(0)), (Resource{0, 0}));
  EXPECT_TRUE(rm_.container(*c).released);
}

TEST_F(ResourceManagerTest, ContainersOnAndLiveTracking) {
  const auto c1 = rm_.allocate(request(TaskId(1), ServerId(0)));
  const auto c2 = rm_.allocate(request(TaskId(2), ServerId(0)));
  const auto c3 = rm_.allocate(request(TaskId(3), ServerId(1)));
  ASSERT_TRUE(c1 && c2 && c3);
  EXPECT_EQ(rm_.containers_on(ServerId(0)).size(), 2u);
  EXPECT_EQ(rm_.live_containers().size(), 3u);
  rm_.release(*c2);
  EXPECT_EQ(rm_.containers_on(ServerId(0)).size(), 1u);
  EXPECT_EQ(rm_.live_containers().size(), 2u);
}

TEST_F(ResourceManagerTest, ContainerOfTask) {
  EXPECT_EQ(rm_.container_of(TaskId(1)), std::nullopt);
  const auto c = rm_.allocate(request(TaskId(1)));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(rm_.container_of(TaskId(1)), *c);
  rm_.release(*c);
  EXPECT_EQ(rm_.container_of(TaskId(1)), std::nullopt);
}

TEST_F(ResourceManagerTest, AvailableAndCanHost) {
  EXPECT_TRUE(rm_.can_host(ServerId(0), Resource{2.0, 8.0}));
  ASSERT_TRUE(rm_.allocate(request(TaskId(1), ServerId(0))).has_value());
  EXPECT_EQ(rm_.available(ServerId(0)), (Resource{1.0, 4.0}));
  EXPECT_FALSE(rm_.can_host(ServerId(0), Resource{2.0, 8.0}));
  EXPECT_TRUE(rm_.can_host(ServerId(0), kDefaultContainerDemand));
}

TEST_F(ResourceManagerTest, AuditPassesThroughLifecycle) {
  EXPECT_NO_THROW(rm_.audit());
  const auto c = rm_.allocate(request(TaskId(1)));
  EXPECT_NO_THROW(rm_.audit());
  rm_.release(*c);
  EXPECT_NO_THROW(rm_.audit());
}

TEST_F(ResourceManagerTest, ErrorsOnBadIds) {
  EXPECT_THROW((void)rm_.used(ServerId(99)), std::out_of_range);
  EXPECT_THROW((void)rm_.container(ContainerId(5)), std::out_of_range);
  EXPECT_THROW(rm_.release(ContainerId(5)), std::out_of_range);
  ResourceRequest bad;
  bad.demand = Resource{-1.0, 0.0};
  EXPECT_THROW((void)rm_.allocate(bad), std::invalid_argument);
}

}  // namespace
}  // namespace hit::cluster
