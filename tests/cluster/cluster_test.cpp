#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "topology/builders.h"

namespace hit::cluster {
namespace {

TEST(Cluster, OneServerPerHost) {
  const topo::Topology t = topo::make_case_study_tree();
  const Cluster c(t, Resource{2.0, 8.0});
  EXPECT_EQ(c.size(), 4u);
  for (const Server& s : c.servers()) {
    EXPECT_EQ(s.capacity, (Resource{2.0, 8.0}));
    EXPECT_TRUE(t.is_server(s.node));
    EXPECT_FALSE(s.hostname.empty());
  }
}

TEST(Cluster, HeterogeneousCapacities) {
  const topo::Topology t = topo::make_case_study_tree();
  std::vector<Resource> caps{{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  const Cluster c(t, caps);
  EXPECT_EQ(c.server(ServerId(2)).capacity, (Resource{3, 3}));
  EXPECT_EQ(c.total_capacity(), (Resource{10, 10}));
}

TEST(Cluster, CapacityListSizeMustMatch) {
  const topo::Topology t = topo::make_case_study_tree();
  EXPECT_THROW(Cluster(t, std::vector<Resource>{{1, 1}}), std::invalid_argument);
}

TEST(Cluster, RejectsNegativeCapacity) {
  const topo::Topology t = topo::make_case_study_tree();
  std::vector<Resource> caps(4, Resource{1, 1});
  caps[2] = Resource{-1, 1};
  EXPECT_THROW(Cluster(t, caps), std::invalid_argument);
}

TEST(Cluster, NodeServerRoundTrip) {
  const topo::Topology t = topo::make_case_study_tree();
  const Cluster c(t, Resource{2, 8});
  for (const Server& s : c.servers()) {
    EXPECT_EQ(c.server_at(s.node), s.id);
    EXPECT_EQ(c.node_of(s.id), s.node);
  }
}

TEST(Cluster, LookupErrors) {
  const topo::Topology t = topo::make_case_study_tree();
  const Cluster c(t, Resource{2, 8});
  EXPECT_THROW((void)c.server(ServerId(99)), std::out_of_range);
  EXPECT_THROW((void)c.server(ServerId{}), std::out_of_range);
  // Switches host no servers.
  EXPECT_THROW((void)c.server_at(t.switches()[0]), std::out_of_range);
}

}  // namespace
}  // namespace hit::cluster
