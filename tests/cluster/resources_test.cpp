#include "cluster/resources.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hit::cluster {
namespace {

TEST(Resource, Arithmetic) {
  const Resource a{2.0, 8.0};
  const Resource b{1.0, 4.0};
  EXPECT_EQ(a + b, (Resource{3.0, 12.0}));
  EXPECT_EQ(a - b, (Resource{1.0, 4.0}));
  EXPECT_EQ(b * 3.0, (Resource{3.0, 12.0}));
}

TEST(Resource, CompoundAssignment) {
  Resource r{1.0, 2.0};
  r += Resource{1.0, 1.0};
  EXPECT_EQ(r, (Resource{2.0, 3.0}));
  r -= Resource{0.5, 1.0};
  EXPECT_EQ(r, (Resource{1.5, 2.0}));
}

TEST(Resource, FitsInIsComponentwise) {
  const Resource cap{2.0, 8.0};
  EXPECT_TRUE((Resource{2.0, 8.0}).fits_in(cap));
  EXPECT_TRUE((Resource{1.0, 1.0}).fits_in(cap));
  EXPECT_FALSE((Resource{2.1, 1.0}).fits_in(cap));  // cpu over
  EXPECT_FALSE((Resource{1.0, 8.5}).fits_in(cap));  // mem over
}

TEST(Resource, NonNegative) {
  EXPECT_TRUE((Resource{0.0, 0.0}).non_negative());
  EXPECT_TRUE((Resource{1.0, 1.0}).non_negative());
  EXPECT_FALSE((Resource{-0.1, 1.0}).non_negative());
  EXPECT_FALSE((Resource{1.0, -0.1}).non_negative());
}

TEST(Resource, StreamOutput) {
  std::ostringstream os;
  os << Resource{1.0, 4.0};
  EXPECT_EQ(os.str(), "<1 vcores, 4 GiB>");
}

TEST(Resource, DefaultContainerFitsTwiceInCaseStudyServer) {
  // The case study caps servers at two concurrent tasks.
  const Resource server{2.0, 8.0};
  EXPECT_TRUE((kDefaultContainerDemand * 2.0).fits_in(server));
  EXPECT_FALSE((kDefaultContainerDemand * 3.0).fits_in(server));
}

}  // namespace
}  // namespace hit::cluster
