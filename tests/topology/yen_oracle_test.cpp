// Yen's algorithm against an exhaustive oracle: on random small graphs, the
// k shortest loop-free paths must be exactly the k best of *all* simple
// paths (by length, then lexicographic node order).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "topology/graph.h"
#include "util/rng.h"

namespace hit::topo {
namespace {

/// All simple src->dst paths by DFS.
std::vector<Path> all_simple_paths(const Graph& g, NodeId src, NodeId dst) {
  std::vector<Path> out;
  Path current{src};
  std::vector<char> visited(g.node_count(), 0);
  visited[src.index()] = 1;
  std::function<void(NodeId)> dfs = [&](NodeId u) {
    if (u == dst) {
      out.push_back(current);
      return;
    }
    for (const Edge& e : g.neighbors(u)) {
      if (visited[e.to.index()]) continue;
      visited[e.to.index()] = 1;
      current.push_back(e.to);
      dfs(e.to);
      current.pop_back();
      visited[e.to.index()] = 0;
    }
  };
  dfs(src);
  return out;
}

bool path_less(const Path& a, const Path& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

Graph random_graph(Rng& rng, std::size_t nodes, double edge_prob) {
  Graph g;
  for (std::size_t i = 0; i < nodes; ++i) (void)g.add_node();
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = i + 1; j < nodes; ++j) {
      if (rng.bernoulli(edge_prob)) {
        g.add_edge(NodeId(static_cast<NodeId::value_type>(i)),
                   NodeId(static_cast<NodeId::value_type>(j)), 1.0);
      }
    }
  }
  return g;
}

class YenOracle : public ::testing::TestWithParam<int> {};

TEST_P(YenOracle, MatchesExhaustiveEnumeration) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g = random_graph(rng, 7, 0.45);
  const NodeId src(0), dst(6);

  auto oracle = all_simple_paths(g, src, dst);
  std::sort(oracle.begin(), oracle.end(), path_less);

  for (std::size_t k : {1u, 3u, 10u, 100u}) {
    const auto yen = g.k_shortest_paths(src, dst, k);
    ASSERT_EQ(yen.size(), std::min<std::size_t>(k, oracle.size()))
        << "seed " << GetParam() << " k " << k;
    for (std::size_t i = 0; i < yen.size(); ++i) {
      // Lengths must match the oracle exactly; within equal lengths Yen's
      // candidate order may differ from global lexicographic order, so
      // compare by length and verify membership.
      EXPECT_EQ(yen[i].size(), oracle[i].size())
          << "seed " << GetParam() << " k " << k << " rank " << i;
      EXPECT_NE(std::find(oracle.begin(), oracle.end(), yen[i]), oracle.end());
    }
    // No duplicates among the returned paths.
    auto sorted = yen;
    std::sort(sorted.begin(), sorted.end(), path_less);
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YenOracle, ::testing::Range(0, 20));

}  // namespace
}  // namespace hit::topo
