#include "topology/dot.h"

#include <gtest/gtest.h>

#include "topology/builders.h"

namespace hit::topo {
namespace {

TEST(Dot, ContainsAllNodesAndEdges) {
  const Topology t = make_case_study_tree();
  const std::string dot = to_dot(t);
  EXPECT_NE(dot.find("graph \"topology\""), std::string::npos);
  for (NodeId n(0); n.index() < t.node_count(); n = NodeId(n.value() + 1)) {
    EXPECT_NE(dot.find("n" + std::to_string(n.value())), std::string::npos);
  }
  // 6 undirected edges for the case-study tree (2 switch links + 4 hosts).
  std::size_t edges = 0;
  for (std::size_t pos = dot.find(" -- "); pos != std::string::npos;
       pos = dot.find(" -- ", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, t.graph().edge_count());
}

TEST(Dot, ServersOptional) {
  const Topology t = make_case_study_tree();
  DotOptions options;
  options.include_servers = false;
  const std::string dot = to_dot(t, options);
  EXPECT_EQ(dot.find("\"S1\""), std::string::npos);
  EXPECT_NE(dot.find("root"), std::string::npos);
}

TEST(Dot, HighlightsPaths) {
  const Topology t = make_case_study_tree();
  DotOptions options;
  options.highlighted_paths = {t.shortest_path(t.servers()[0], t.servers()[3])};
  const std::string dot = to_dot(t, options);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  // Exactly path-length-1 highlighted edges.
  std::size_t reds = 0;
  for (std::size_t pos = dot.find("color=red"); pos != std::string::npos;
       pos = dot.find("color=red", pos + 1)) {
    ++reds;
  }
  EXPECT_EQ(reds, options.highlighted_paths[0].size() - 1);
}

TEST(Dot, GraphNameConfigurable) {
  const Topology t = make_case_study_tree();
  DotOptions options;
  options.graph_name = "my-dc";
  EXPECT_NE(to_dot(t, options).find("graph \"my-dc\""), std::string::npos);
}

TEST(Dot, WorksOnEveryFamily) {
  EXPECT_FALSE(to_dot(make_fat_tree(FatTreeConfig{4})).empty());
  EXPECT_FALSE(to_dot(make_vl2(Vl2Config{2, 4, 4, 2})).empty());
  EXPECT_FALSE(to_dot(make_bcube(BCubeConfig{3, 1})).empty());
}

}  // namespace
}  // namespace hit::topo
