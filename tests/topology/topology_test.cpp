#include "topology/topology.h"

#include <gtest/gtest.h>

#include "topology/builders.h"

namespace hit::topo {
namespace {

Topology mini() {
  // Two access switches under a core, two servers each.
  Topology t(Family::Custom);
  const NodeId core = t.add_switch(Tier::Core, 100.0, "core");
  const NodeId a1 = t.add_switch(Tier::Access, 50.0, "a1");
  const NodeId a2 = t.add_switch(Tier::Access, 50.0, "a2");
  t.add_link(a1, core, 10.0);
  t.add_link(a2, core, 10.0);
  for (int i = 0; i < 4; ++i) {
    const NodeId s = t.add_server("s" + std::to_string(i));
    t.add_link(s, i < 2 ? a1 : a2, 10.0);
  }
  return t;
}

TEST(Topology, NodeAccounting) {
  const Topology t = mini();
  EXPECT_EQ(t.node_count(), 7u);
  EXPECT_EQ(t.servers().size(), 4u);
  EXPECT_EQ(t.switches().size(), 3u);
  EXPECT_TRUE(t.is_switch(t.switches()[0]));
  EXPECT_TRUE(t.is_server(t.servers()[0]));
  EXPECT_EQ(t.tier(t.servers()[0]), Tier::Host);
}

TEST(Topology, SwitchProperties) {
  const Topology t = mini();
  EXPECT_EQ(t.tier(NodeId(0)), Tier::Core);
  EXPECT_EQ(t.switch_capacity(NodeId(0)), 100.0);
  EXPECT_EQ(t.info(NodeId(1)).name, "a1");
}

TEST(Topology, RejectsInvalidConstruction) {
  Topology t;
  EXPECT_THROW((void)t.add_switch(Tier::Host, 10.0, "x"), std::invalid_argument);
  EXPECT_THROW((void)t.add_switch(Tier::Core, 0.0, "x"), std::invalid_argument);
  EXPECT_THROW((void)t.info(NodeId(5)), std::out_of_range);
}

TEST(Topology, SwitchHopsAndList) {
  const Topology t = mini();
  const auto servers = t.servers();
  // s0 -> s1: shared access switch.
  const Path near = t.shortest_path(servers[0], servers[1]);
  EXPECT_EQ(t.switch_hops(near), 1u);
  // s0 -> s2: access, core, access.
  const Path far = t.shortest_path(servers[0], servers[2]);
  EXPECT_EQ(t.switch_hops(far), 3u);
  const auto switches = t.switch_list(far);
  ASSERT_EQ(switches.size(), 3u);
  const auto sig = t.tier_signature(switches);
  EXPECT_EQ(sig, (std::vector<Tier>{Tier::Access, Tier::Core, Tier::Access}));
}

TEST(Topology, SwitchHopDistances) {
  const Topology t = mini();
  const auto servers = t.servers();
  const auto dist = t.switch_hop_distances(servers[0]);
  EXPECT_EQ(dist[servers[0].index()], 0u);
  EXPECT_EQ(dist[servers[1].index()], 1u);
  EXPECT_EQ(dist[servers[2].index()], 3u);
  EXPECT_EQ(dist[servers[3].index()], 3u);
}

TEST(Topology, SubstitutionCandidatesRequireTierAndWiring) {
  // Core redundancy 2: the core on a path can swap for its twin.
  TreeConfig config;
  config.depth = 2;
  config.fanout = 2;
  config.redundancy = 2;
  config.hosts_per_access = 1;
  const Topology t = make_tree(config);
  const auto servers = t.servers();
  const Path p = t.shortest_path(servers[0], servers[1]);
  const auto switches = t.switch_list(p);
  ASSERT_EQ(switches.size(), 3u);  // access, core, access
  const auto cands = t.substitution_candidates(servers[0], servers[1], switches, 1);
  ASSERT_EQ(cands.size(), 1u);  // the other core replica
  EXPECT_EQ(t.tier(cands[0]), Tier::Core);
  EXPECT_NE(cands[0], switches[1]);
  // End access switches have no same-tier substitute wired to the server.
  EXPECT_TRUE(t.substitution_candidates(servers[0], servers[1], switches, 0).empty());
  EXPECT_THROW(
      (void)t.substitution_candidates(servers[0], servers[1], switches, 3),
      std::out_of_range);
}

TEST(Topology, ValidateAcceptsMiniAndRejectsBroken) {
  EXPECT_NO_THROW(mini().validate());

  Topology lonely(Family::Custom);
  (void)lonely.add_server("s");
  EXPECT_THROW(lonely.validate(), std::logic_error);  // no switches

  Topology disconnected(Family::Custom);
  const NodeId w1 = disconnected.add_switch(Tier::Access, 1.0, "w1");
  const NodeId w2 = disconnected.add_switch(Tier::Access, 1.0, "w2");
  const NodeId s1 = disconnected.add_server("s1");
  const NodeId s2 = disconnected.add_server("s2");
  disconnected.add_link(s1, w1, 1.0);
  disconnected.add_link(s2, w2, 1.0);
  EXPECT_THROW(disconnected.validate(), std::logic_error);
}

TEST(Topology, TierAndFamilyNames) {
  EXPECT_EQ(tier_name(Tier::Access), "access");
  EXPECT_EQ(tier_name(Tier::Aggregation), "aggregation");
  EXPECT_EQ(tier_name(Tier::Core), "core");
  EXPECT_EQ(tier_name(Tier::Host), "host");
  EXPECT_EQ(family_name(Family::Tree), "Tree");
  EXPECT_EQ(family_name(Family::BCube), "BCube");
}

}  // namespace
}  // namespace hit::topo
