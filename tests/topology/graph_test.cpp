#include "topology/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace hit::topo {
namespace {

/// 0-1-2-3 path plus a 1-4-2 detour.
Graph diamond() {
  Graph g;
  for (int i = 0; i < 5; ++i) (void)g.add_node();
  g.add_edge(NodeId(0), NodeId(1), 1.0);
  g.add_edge(NodeId(1), NodeId(2), 1.0);
  g.add_edge(NodeId(2), NodeId(3), 1.0);
  g.add_edge(NodeId(1), NodeId(4), 1.0);
  g.add_edge(NodeId(4), NodeId(2), 1.0);
  return g;
}

TEST(Graph, AddNodesAndEdges) {
  Graph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  EXPECT_EQ(g.node_count(), 2u);
  g.add_edge(a, b, 10.0);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.adjacent(a, b));
  EXPECT_TRUE(g.adjacent(b, a));
  EXPECT_EQ(g.bandwidth(a, b), 10.0);
}

TEST(Graph, RejectsBadEdges) {
  Graph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  EXPECT_THROW(g.add_edge(a, a, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, b, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, b, -2.0), std::invalid_argument);
  g.add_edge(a, b, 1.0);
  EXPECT_THROW(g.add_edge(a, b, 1.0), std::invalid_argument);  // duplicate
  EXPECT_THROW(g.add_edge(a, NodeId(99), 1.0), std::out_of_range);
}

TEST(Graph, NeighborsSortedById) {
  Graph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  const NodeId d = g.add_node();
  g.add_edge(a, d, 1.0);
  g.add_edge(a, b, 1.0);
  g.add_edge(a, c, 1.0);
  const auto& n = g.neighbors(a);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

TEST(Graph, ShortestPathBasics) {
  const Graph g = diamond();
  const Path p = g.shortest_path(NodeId(0), NodeId(3));
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.front(), NodeId(0));
  EXPECT_EQ(p.back(), NodeId(3));
  EXPECT_EQ(p[1], NodeId(1));
  EXPECT_EQ(p[2], NodeId(2));  // lexicographically smaller than the 4-detour
}

TEST(Graph, ShortestPathSelfAndUnreachable) {
  Graph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  EXPECT_EQ(g.shortest_path(a, a), Path{a});
  EXPECT_TRUE(g.shortest_path(a, b).empty());
  EXPECT_EQ(g.distance(a, b), std::nullopt);
  EXPECT_EQ(g.distance(a, a), 0u);
}

TEST(Graph, DistanceCountsEdges) {
  const Graph g = diamond();
  EXPECT_EQ(g.distance(NodeId(0), NodeId(3)), 3u);
  EXPECT_EQ(g.distance(NodeId(1), NodeId(2)), 1u);
}

TEST(Graph, KShortestPathsFindsAlternates) {
  const Graph g = diamond();
  const auto paths = g.k_shortest_paths(NodeId(0), NodeId(3), 5);
  ASSERT_EQ(paths.size(), 2u);  // only two loop-free routes exist
  EXPECT_EQ(paths[0].size(), 4u);
  EXPECT_EQ(paths[1].size(), 5u);  // via node 4
  EXPECT_EQ(paths[1][2], NodeId(4));
}

TEST(Graph, KShortestPathsAreDistinctAndOrdered) {
  // 2x3 grid: several equal-length routes.
  Graph g;
  for (int i = 0; i < 6; ++i) (void)g.add_node();
  auto id = [](int r, int c) { return NodeId(static_cast<unsigned>(r * 3 + c)); };
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (c + 1 < 3) g.add_edge(id(r, c), id(r, c + 1), 1.0);
      if (r + 1 < 2) g.add_edge(id(r, c), id(r + 1, c), 1.0);
    }
  }
  const auto paths = g.k_shortest_paths(id(0, 0), id(1, 2), 10);
  ASSERT_GE(paths.size(), 3u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].size(), paths[i - 1].size());  // ordered by length
    EXPECT_NE(paths[i], paths[i - 1]);                // distinct
  }
  // All paths loop-free.
  for (const Path& p : paths) {
    Path sorted = p;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST(Graph, KShortestPathsEdgeCases) {
  const Graph g = diamond();
  EXPECT_TRUE(g.k_shortest_paths(NodeId(0), NodeId(3), 0).empty());
  const auto one = g.k_shortest_paths(NodeId(0), NodeId(3), 1);
  EXPECT_EQ(one.size(), 1u);
}

TEST(Graph, Connectivity) {
  Graph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  EXPECT_FALSE(g.connected());
  g.add_edge(a, b, 1.0);
  EXPECT_TRUE(g.connected());
  EXPECT_TRUE(Graph{}.connected());
}

TEST(Graph, WeightedDistancesZeroOne) {
  const Graph g = diamond();
  // Charge 1 for entering nodes 1 and 2, 0 elsewhere.
  std::vector<std::size_t> w(g.node_count(), 0);
  w[1] = 1;
  w[2] = 1;
  const auto dist = g.weighted_distances(NodeId(0), w);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[4], 1u);  // 0-1(1)-4(0)
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 2u);
}

TEST(Graph, WeightedDistancesUnreachable) {
  Graph g;
  (void)g.add_node();
  (void)g.add_node();
  const auto dist = g.weighted_distances(NodeId(0), {0, 0});
  EXPECT_EQ(dist[1], static_cast<std::size_t>(-1));
  EXPECT_THROW((void)g.weighted_distances(NodeId(0), {0}), std::invalid_argument);
}

}  // namespace
}  // namespace hit::topo
