#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "topology/builders.h"

namespace hit::topo {
namespace {

// ---------------------------------------------------------------------------
// Family-independent invariants, parameterized over all builders.
// ---------------------------------------------------------------------------

struct BuilderCase {
  std::string name;
  std::function<Topology()> build;
  std::size_t expected_servers;
  std::size_t expected_switches;
};

class BuilderInvariants : public ::testing::TestWithParam<BuilderCase> {};

TEST_P(BuilderInvariants, CountsMatch) {
  const Topology t = GetParam().build();
  EXPECT_EQ(t.servers().size(), GetParam().expected_servers);
  EXPECT_EQ(t.switches().size(), GetParam().expected_switches);
}

TEST_P(BuilderInvariants, ValidatesCleanly) {
  EXPECT_NO_THROW(GetParam().build().validate());
}

TEST_P(BuilderInvariants, AllServerPairsRoutable) {
  const Topology t = GetParam().build();
  const auto servers = t.servers();
  // Spot-check first/last/middle pairs instead of all O(n^2).
  const NodeId a = servers.front();
  const NodeId b = servers.back();
  const NodeId c = servers[servers.size() / 2];
  for (auto [x, y] : {std::pair{a, b}, {a, c}, {c, b}}) {
    const Path p = t.shortest_path(x, y);
    ASSERT_FALSE(p.empty());
    EXPECT_GE(t.switch_hops(p), 1u);
  }
}

TEST_P(BuilderInvariants, SwitchesHavePositiveCapacityAndNames) {
  const Topology t = GetParam().build();
  for (NodeId w : t.switches()) {
    EXPECT_GT(t.switch_capacity(w), 0.0);
    EXPECT_FALSE(t.info(w).name.empty());
    EXPECT_NE(t.tier(w), Tier::Host);
  }
}

TEST_P(BuilderInvariants, DeterministicConstruction) {
  const Topology t1 = GetParam().build();
  const Topology t2 = GetParam().build();
  ASSERT_EQ(t1.node_count(), t2.node_count());
  for (std::size_t i = 0; i < t1.node_count(); ++i) {
    const NodeId n(static_cast<NodeId::value_type>(i));
    EXPECT_EQ(t1.info(n).name, t2.info(n).name);
    EXPECT_EQ(t1.info(n).tier, t2.info(n).tier);
    EXPECT_EQ(t1.graph().neighbors(n).size(), t2.graph().neighbors(n).size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, BuilderInvariants,
    ::testing::Values(
        // Paper's Mininet testbed shape: 64 hosts, 10 switches.
        BuilderCase{"tree_testbed",
                    [] {
                      return make_tree(TreeConfig{2, 8, 2, 8, 16.0, 32.0});
                    },
                    64, 10},
        BuilderCase{"tree_deep",
                    [] {
                      return make_tree(TreeConfig{3, 2, 2, 2, 16.0, 32.0});
                    },
                    8, 2 + 4 + 4},
        // Fig. 9 scale: 512 hosts.
        BuilderCase{"tree_large",
                    [] {
                      return make_tree(TreeConfig{3, 8, 2, 8, 16.0, 32.0});
                    },
                    512, 2 + 16 + 64},
        BuilderCase{"fat_tree_k4",
                    [] { return make_fat_tree(FatTreeConfig{4, 16.0, 32.0}); },
                    16, 4 + 8 + 8},
        BuilderCase{"fat_tree_k6",
                    [] { return make_fat_tree(FatTreeConfig{6, 16.0, 32.0}); },
                    54, 9 + 18 + 18},
        BuilderCase{"vl2",
                    [] { return make_vl2(Vl2Config{2, 4, 8, 4, 16.0, 32.0}); },
                    32, 2 + 4 + 8},
        BuilderCase{"bcube_n4_k1",
                    [] { return make_bcube(BCubeConfig{4, 1, 16.0, 32.0}); },
                    16, 8},
        BuilderCase{"bcube_n4_k2",
                    [] { return make_bcube(BCubeConfig{4, 2, 16.0, 32.0}); },
                    64, 48},
        BuilderCase{"case_study", [] { return make_case_study_tree(); }, 4, 3}),
    [](const ::testing::TestParamInfo<BuilderCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Family-specific structure.
// ---------------------------------------------------------------------------

TEST(TreeBuilder, HopDiversityDepth3) {
  const Topology t = make_tree(TreeConfig{3, 2, 1, 2, 16.0, 32.0});
  const auto s = t.servers();
  // Same access: 1 switch; same pod: 3; cross-core: 5.
  EXPECT_EQ(t.switch_hops(t.shortest_path(s[0], s[1])), 1u);
  EXPECT_EQ(t.switch_hops(t.shortest_path(s[0], s[2])), 3u);
  EXPECT_EQ(t.switch_hops(t.shortest_path(s[0], s[7])), 5u);
}

TEST(TreeBuilder, RedundancyCreatesAlternateRoutes) {
  const Topology t = make_tree(TreeConfig{2, 2, 3, 1, 16.0, 32.0});
  const auto s = t.servers();
  const auto paths = t.k_shortest_paths(s[0], s[1], 10);
  // One route per core replica.
  std::size_t shortest = 0;
  for (const Path& p : paths) {
    if (p.size() == paths[0].size()) ++shortest;
  }
  EXPECT_EQ(shortest, 3u);
}

TEST(TreeBuilder, UpperTiersHaveMoreCapacity) {
  const Topology t = make_tree(TreeConfig{3, 2, 1, 2, 16.0, 32.0});
  double core = 0.0, access = 0.0;
  for (NodeId w : t.switches()) {
    if (t.tier(w) == Tier::Core) core = t.switch_capacity(w);
    if (t.tier(w) == Tier::Access) access = t.switch_capacity(w);
  }
  EXPECT_GT(core, access);
}

TEST(TreeBuilder, RejectsBadConfig) {
  EXPECT_THROW((void)make_tree(TreeConfig{1, 2, 1, 1}), std::invalid_argument);
  EXPECT_THROW((void)make_tree(TreeConfig{2, 0, 1, 1}), std::invalid_argument);
  EXPECT_THROW((void)make_tree(TreeConfig{2, 2, 0, 1}), std::invalid_argument);
  EXPECT_THROW((void)make_tree(TreeConfig{2, 2, 1, 0}), std::invalid_argument);
}

TEST(FatTreeBuilder, StructureK4) {
  const Topology t = make_fat_tree(FatTreeConfig{4, 16.0, 32.0});
  std::size_t core = 0, agg = 0, edge = 0;
  for (NodeId w : t.switches()) {
    switch (t.tier(w)) {
      case Tier::Core: ++core; break;
      case Tier::Aggregation: ++agg; break;
      case Tier::Access: ++edge; break;
      default: FAIL();
    }
  }
  EXPECT_EQ(core, 4u);
  EXPECT_EQ(agg, 8u);
  EXPECT_EQ(edge, 8u);
  // Intra-pod pair: edge-agg-edge (3 switches).
  const auto s = t.servers();
  EXPECT_EQ(t.switch_hops(t.shortest_path(s[0], s[2])), 3u);
}

TEST(FatTreeBuilder, RejectsOddK) {
  EXPECT_THROW((void)make_fat_tree(FatTreeConfig{3}), std::invalid_argument);
  EXPECT_THROW((void)make_fat_tree(FatTreeConfig{0}), std::invalid_argument);
}

TEST(Vl2Builder, TorsAreDualHomed) {
  const Topology t = make_vl2(Vl2Config{2, 4, 8, 2, 16.0, 32.0});
  for (NodeId w : t.switches()) {
    if (t.tier(w) != Tier::Access) continue;
    std::size_t uplinks = 0;
    for (const Edge& e : t.graph().neighbors(w)) {
      if (t.tier(e.to) == Tier::Aggregation) ++uplinks;
    }
    EXPECT_EQ(uplinks, 2u);
  }
}

TEST(Vl2Builder, AggregationFullyMeshedToCore) {
  const Topology t = make_vl2(Vl2Config{3, 4, 4, 1, 16.0, 32.0});
  for (NodeId w : t.switches()) {
    if (t.tier(w) != Tier::Aggregation) continue;
    std::size_t up = 0;
    for (const Edge& e : t.graph().neighbors(w)) {
      if (t.tier(e.to) == Tier::Core) ++up;
    }
    EXPECT_EQ(up, 3u);
  }
}

TEST(Vl2Builder, RejectsBadConfig) {
  EXPECT_THROW((void)make_vl2(Vl2Config{0, 4, 4, 1}), std::invalid_argument);
  EXPECT_THROW((void)make_vl2(Vl2Config{2, 1, 4, 1}), std::invalid_argument);
}

TEST(BCubeBuilder, ServerDegreeIsLevels) {
  const Topology t = make_bcube(BCubeConfig{4, 1, 16.0, 32.0});
  for (NodeId s : t.servers()) {
    EXPECT_EQ(t.graph().neighbors(s).size(), 2u);  // k+1 = 2 levels
  }
}

TEST(BCubeBuilder, SwitchConnectsNServers) {
  const Topology t = make_bcube(BCubeConfig{3, 1, 16.0, 32.0});
  for (NodeId w : t.switches()) {
    EXPECT_EQ(t.graph().neighbors(w).size(), 3u);
  }
}

TEST(BCubeBuilder, OneSwitchBetweenLevelZeroNeighbors) {
  const Topology t = make_bcube(BCubeConfig{4, 1, 16.0, 32.0});
  const auto s = t.servers();
  // Servers 0 and 1 share a level-0 switch: one switch on the path.
  EXPECT_EQ(t.switch_hops(t.shortest_path(s[0], s[1])), 1u);
  // Servers 0 and 5 (digits differ in both positions) need a relay server.
  const Path p = t.shortest_path(s[0], s[5]);
  EXPECT_EQ(t.switch_hops(p), 2u);
  std::size_t relay_servers = 0;
  for (NodeId n : p) {
    if (t.is_server(n)) ++relay_servers;
  }
  EXPECT_EQ(relay_servers, 3u);  // endpoints + one relay
}

TEST(BCubeBuilder, RejectsTinyN) {
  EXPECT_THROW((void)make_bcube(BCubeConfig{1, 1}), std::invalid_argument);
}

TEST(CaseStudyTree, MatchesPaperDistances) {
  const Topology t = make_case_study_tree();
  const auto s = t.servers();
  ASSERT_EQ(s.size(), 4u);
  // S1-S2 share the access switch (1), S1-S4 cross the root (3): the pair of
  // distances that makes the paper's 112 -> 64 GB*T arithmetic exact.
  EXPECT_EQ(t.switch_hops(t.shortest_path(s[0], s[1])), 1u);
  EXPECT_EQ(t.switch_hops(t.shortest_path(s[0], s[3])), 3u);
  EXPECT_EQ(t.switch_hops(t.shortest_path(s[2], s[3])), 1u);
}

}  // namespace
}  // namespace hit::topo
