// Extension experiment (not a paper figure): control-plane crash recovery.
//
// Crashes the centralized controller mid-run in both simulators and measures
// the blast radius of the blackout against an uncrashed baseline, across the
// recovery ladder: fail-static only (no journal cadence), journal + periodic
// snapshots, and warm standby (bounded takeover instead of the full scripted
// blackout).  Reports, per arm: blackout time, launches deferred past the
// blackout, flows that rode it out fail-static, stalls that had to wait for
// the restart, reconciliation violations found / repaired at restart,
// journal volume (records, snapshot count, tail replayed), and the makespan
// disruption relative to the uncrashed run.
//
// The run is also a regression gate:
//   - every divergence the restart reconciliation finds must be repaired
//     (zero unreconciled violations in every arm);
//   - a crashed run must stay deterministic: each arm executes twice and the
//     two runs must agree exactly (makespan and every control-plane stat);
//   - disruption must stay bounded: makespan under a crash may exceed
//     baseline + blackout by at most 25%;
//   - warm standby must actually bound the outage: its blackout must not
//     exceed the takeover latency (+eps) and must beat the full-blackout arm.
// Violations exit nonzero.
//
// Writes BENCH_recovery.json (manifest-stamped rows; see harness.h) and
// `bench.recovery.*` gauges into the HIT_BENCH_METRICS snapshot so future
// PRs can diff the numbers.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "sim/online.h"

namespace {

struct ArmStats {
  double makespan = 0.0;
  hit::sim::ControlPlaneStats control;

  [[nodiscard]] bool operator==(const ArmStats& o) const {
    return makespan == o.makespan && control.crashes == o.control.crashes &&
           control.restarts == o.control.restarts &&
           control.blackout_seconds == o.control.blackout_seconds &&
           control.waves_delayed == o.control.waves_delayed &&
           control.flows_failstatic == o.control.flows_failstatic &&
           control.flows_stalled_blackout == o.control.flows_stalled_blackout &&
           control.reconcile_violations == o.control.reconcile_violations &&
           control.reconcile_repairs == o.control.reconcile_repairs &&
           control.journal_records == o.control.journal_records &&
           control.snapshots == o.control.snapshots &&
           control.replayed_records == o.control.replayed_records;
  }
};

}  // namespace

int main() {
  using namespace hit;
  using namespace hit::bench;

  print_header("Control-plane crash recovery: blackout cost and reconciliation");

  const auto testbed = make_testbed_tree();

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 16;
  wconfig.max_maps_per_job = 10;
  wconfig.max_reduces_per_job = 4;
  wconfig.block_size_gb = 2.0;

  constexpr std::uint64_t kSeed = 8200;
  constexpr double kCrashAt = 40.0;
  constexpr double kBlackout = 120.0;
  constexpr double kSnapshotEvery = 50.0;
  constexpr double kTakeover = 15.0;
  constexpr double kSlack = 1.25;  // makespan may exceed base + blackout by 25%
  constexpr double kEps = 1e-9;

  struct Arm {
    std::string name;
    bool crash = false;
    double snapshot_every = 0.0;
    bool standby = false;
  };
  const std::vector<Arm> arms = {
      {"baseline", false, 0.0, false},
      {"crash-failstatic", true, 0.0, false},
      {"crash-journal", true, kSnapshotEvery, false},
      {"crash-standby", true, kSnapshotEvery, true},
  };

  const auto run_mode = [&](const std::string& mode, const Arm& arm) {
    sched::CapacityScheduler capacity;
    BenchObserver& obs = BenchObserver::instance();
    obs.manifest().scheduler = std::string(capacity.name());
    obs.manifest().seed = kSeed;

    Rng rng(kSeed);
    mr::IdAllocator ids;
    const mr::WorkloadGenerator generator(wconfig);
    const auto jobs = generator.generate(ids, rng);

    sim::SimConfig sconfig;
    sconfig.bandwidth_scale = 0.05;
    sconfig.observer = &obs.context();
    if (arm.crash) sconfig.faults.crash_controller(kCrashAt, kBlackout);
    sconfig.recovery.snapshot_every = arm.snapshot_every;
    sconfig.recovery.standby = arm.standby;
    sconfig.recovery.standby_takeover_s = kTakeover;
    obs.manifest().config = describe_config(wconfig, sconfig) + " mode=" +
                            mode + " arm=" + arm.name;

    ArmStats out;
    if (mode == "batch") {
      const sim::ClusterSimulator sim(testbed->cluster, sconfig);
      const sim::SimResult result = sim.run(capacity, jobs, ids, rng);
      out.makespan = result.makespan;
      out.control = result.control;
    } else {
      sim::OnlineConfig oconfig;
      oconfig.arrival_rate = 0.2;
      oconfig.sim = sconfig;
      const sim::OnlineSimulator sim(testbed->cluster, oconfig);
      const sim::OnlineResult result = sim.run(capacity, jobs, ids, rng);
      out.makespan = result.makespan;
      out.control = result.control;
    }
    return out;
  };

  stats::Table table({"mode", "arm", "makespan (s)", "blackout (s)",
                      "launches delayed", "fail-static", "blackout stalls",
                      "violations", "repairs", "journal", "replayed",
                      "snapshots"});
  JsonResults json("recovery");
  obs::Registry& reg = BenchObserver::instance().registry();
  bool ok = true;

  for (const std::string mode : {"batch", "online"}) {
    double base_makespan = 0.0;
    double failstatic_blackout = 0.0;
    for (const Arm& arm : arms) {
      const ArmStats first = run_mode(mode, arm);
      if (arm.crash) {
        // Crash-restart determinism: a second execution of the same arm must
        // reproduce every number exactly.
        const ArmStats second = run_mode(mode, arm);
        if (!(first == second)) {
          std::cerr << "VERDICT FAIL " << mode << "/" << arm.name
                    << ": two identical runs disagree (makespan "
                    << first.makespan << " vs " << second.makespan << ")\n";
          ok = false;
        }
      }
      const sim::ControlPlaneStats& c = first.control;
      if (!arm.crash) base_makespan = first.makespan;
      if (arm.name == "crash-failstatic") {
        failstatic_blackout = c.blackout_seconds;
      }

      table.add_row({mode, arm.name, stats::Table::num(first.makespan),
                     stats::Table::num(c.blackout_seconds),
                     std::to_string(c.waves_delayed),
                     std::to_string(c.flows_failstatic),
                     std::to_string(c.flows_stalled_blackout),
                     std::to_string(c.reconcile_violations),
                     std::to_string(c.reconcile_repairs),
                     std::to_string(c.journal_records),
                     std::to_string(c.replayed_records),
                     std::to_string(c.snapshots)});
      json.add({{"mode", mode},
                {"arm", arm.name},
                {"makespan_s", first.makespan},
                {"blackout_s", c.blackout_seconds},
                {"launches_delayed", static_cast<std::int64_t>(c.waves_delayed)},
                {"failstatic_flows",
                 static_cast<std::int64_t>(c.flows_failstatic)},
                {"blackout_stalls",
                 static_cast<std::int64_t>(c.flows_stalled_blackout)},
                {"reconcile_violations",
                 static_cast<std::int64_t>(c.reconcile_violations)},
                {"reconcile_repairs",
                 static_cast<std::int64_t>(c.reconcile_repairs)},
                {"journal_records",
                 static_cast<std::int64_t>(c.journal_records)},
                {"replayed_records",
                 static_cast<std::int64_t>(c.replayed_records)},
                {"snapshots", static_cast<std::int64_t>(c.snapshots)}});
      const std::string g = "bench.recovery." + mode + "." + arm.name;
      reg.gauge(g + ".makespan_s").set(first.makespan);
      reg.gauge(g + ".blackout_s").set(c.blackout_seconds);
      reg.gauge(g + ".reconcile_violations")
          .set(static_cast<double>(c.reconcile_violations));
      reg.gauge(g + ".reconcile_repairs")
          .set(static_cast<double>(c.reconcile_repairs));
      reg.gauge(g + ".journal_records")
          .set(static_cast<double>(c.journal_records));

      // Verdicts.
      if (c.reconcile_repairs != c.reconcile_violations) {
        std::cerr << "VERDICT FAIL " << mode << "/" << arm.name << ": "
                  << c.reconcile_violations - c.reconcile_repairs
                  << " unreconciled violations after restart\n";
        ok = false;
      }
      if (arm.crash) {
        const double bound = (base_makespan + c.blackout_seconds) * kSlack;
        if (first.makespan > bound + kEps) {
          std::cerr << "VERDICT FAIL " << mode << "/" << arm.name
                    << ": makespan " << first.makespan
                    << " exceeds disruption bound " << bound << "\n";
          ok = false;
        }
      }
      if (arm.standby) {
        if (c.blackout_seconds > kTakeover + kEps) {
          std::cerr << "VERDICT FAIL " << mode << "/" << arm.name
                    << ": standby blackout " << c.blackout_seconds
                    << " exceeds takeover latency " << kTakeover << "\n";
          ok = false;
        }
        if (c.blackout_seconds > failstatic_blackout + kEps) {
          std::cerr << "VERDICT FAIL " << mode << "/" << arm.name
                    << ": standby blackout " << c.blackout_seconds
                    << " does not beat full blackout " << failstatic_blackout
                    << "\n";
          ok = false;
        }
      }
    }
  }

  std::cout << table.render();
  if (!json.write()) ok = false;
  std::cout << "\nFail-static keeps installed routes moving through the "
               "blackout; the journal+snapshot cadence bounds the replay "
               "tail at restart, and warm standby converts the scripted "
               "outage into a fixed takeover latency.  Restart "
               "reconciliation must repair every stalled flow it finds.\n";
  std::cout << (ok ? "VERDICT PASS\n" : "VERDICT FAIL\n");
  return ok ? 0 : 1;
}
