// Extension experiment (not a paper figure): online multi-tenant operation.
//
// Jobs arrive as a Poisson process and queue for containers; shuffle flows
// from all running jobs share one max-min fair network.  Sweeps the arrival
// rate and reports completion time (including queueing) per scheduler — the
// "dynamic computing and communication resources" setting the paper argues
// static schedulers handle poorly (§1, §8).
#include <iostream>

#include "harness.h"
#include "sim/online.h"

int main() {
  using namespace hit;
  using namespace hit::bench;

  print_header("Online multi-tenancy: Poisson arrivals, shared network");

  auto testbed = make_testbed_tree();

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 16;
  wconfig.max_maps_per_job = 10;
  wconfig.max_reduces_per_job = 4;
  wconfig.block_size_gb = 2.0;

  Lineup lineup;
  stats::Table table({"arrival rate (jobs/s)", "scheduler", "mean JCT (s)",
                      "p95 JCT (s)", "mean queueing (s)", "avg flow time (s)"});

  for (double rate : {0.02, 0.08, 0.25}) {
    for (sched::Scheduler* s : lineup.all()) {
      stats::RunningSummary jct, wait, flow_time;
      std::vector<double> all_jct;
      for (int r = 0; r < 3; ++r) {
        Rng rng(3000 + r);
        mr::IdAllocator ids;
        const mr::WorkloadGenerator generator(wconfig);
        const auto jobs = generator.generate(ids, rng);

        sim::OnlineConfig oconfig;
        oconfig.arrival_rate = rate;
        oconfig.sim.bandwidth_scale = 0.05;
        const sim::OnlineSimulator sim(testbed->cluster, oconfig);
        const sim::OnlineResult result = sim.run(*s, jobs, ids, rng);

        for (double v : result.completion_times()) {
          jct.add(v);
          all_jct.push_back(v);
        }
        for (double v : result.queueing_delays()) wait.add(v);
        flow_time.add(result.average_flow_duration());
      }
      table.add_row({stats::Table::num(rate, 2), std::string(s->name()),
                     stats::Table::num(jct.mean()),
                     stats::Table::num(stats::percentile(all_jct, 95.0)),
                     stats::Table::num(wait.mean()),
                     stats::Table::num(flow_time.mean())});
    }
  }
  std::cout << table.render();
  std::cout << "\nUnder pressure, topology-aware placement drains the queue "
               "faster: shorter shuffles free containers sooner, which feeds "
               "back into lower queueing delay.\n";
  return 0;
}
