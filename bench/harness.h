// Shared experiment plumbing for the paper-figure benchmark harnesses.
//
// Every bench binary reproduces one table/figure: it builds the relevant
// testbed, runs the scheduler lineup over seeded replicas, and prints the
// same rows/series the paper reports.  Numbers are expected to match the
// paper in *shape* (ordering, rough factors, crossovers), not absolutely —
// see EXPERIMENTS.md.
#pragma once

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/hit_scheduler.h"
#include "mapreduce/workload.h"
#include "obs/context.h"
#include "sched/capacity_scheduler.h"
#include "sched/delay_scheduler.h"
#include "sched/pna_scheduler.h"
#include "sched/random_scheduler.h"
#include "sim/engine.h"
#include "stats/export.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "topology/builders.h"
#include "util/buildinfo.h"
#include "util/rng.h"

#ifndef HITSCHED_BUILD_TYPE
#define HITSCHED_BUILD_TYPE "unknown"
#endif

namespace hit::bench {

/// Machine-readable description of one benchmark run: which binary, which
/// scheduler, which workload/simulator knobs, which seed, and what build
/// produced the numbers.  Stamped onto every metrics record the harness
/// emits, so a result file is self-describing.
struct RunManifest {
  std::string bench;      ///< bench binary / experiment name
  std::string scheduler;  ///< scheduler under test ("" until a replica runs)
  std::uint64_t seed = 0;
  std::string config;       ///< one-line workload/sim config summary
  std::string build_type;   ///< CMAKE_BUILD_TYPE baked in at compile time
  std::string git_sha;      ///< commit the binary was built from
  std::string host;         ///< machine that produced the numbers

  [[nodiscard]] std::vector<std::pair<std::string, stats::Cell>> stamp() const {
    return {{"bench", bench},
            {"scheduler", scheduler},
            {"seed", static_cast<std::int64_t>(seed)},
            {"config", config},
            {"build_type", build_type},
            {"git_sha", git_sha},
            {"host", host}};
  }
};

/// One-line config summary for the manifest.
inline std::string describe_config(const mr::WorkloadConfig& wconfig,
                                   const sim::SimConfig& sconfig) {
  std::ostringstream out;
  out << "jobs=" << wconfig.num_jobs << " bw=" << sconfig.bandwidth_scale
      << " jitter=" << sconfig.map_time_jitter_sigma
      << " repl=" << sconfig.hdfs_replication;
  if (!sconfig.faults.empty()) out << " faults=" << sconfig.faults.events().size();
  return out.str();
}

/// Process-wide observability for bench binaries.  Always collects metrics
/// (near-zero cost); `manifest()` is mutable so harness helpers can note the
/// scheduler/seed of the latest replica.  `dump()` writes the snapshot as
/// JSON Lines stamped with the manifest — harness `main`s call it at exit
/// when HIT_BENCH_METRICS names a file.
class BenchObserver {
 public:
  static BenchObserver& instance() {
    static BenchObserver obs;
    return obs;
  }

  [[nodiscard]] obs::Registry& registry() { return registry_; }
  [[nodiscard]] RunManifest& manifest() { return manifest_; }
  [[nodiscard]] const obs::Context& context() const { return context_; }

  /// Write the metrics snapshot to `path` (JSON Lines, manifest-stamped).
  void dump(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench: cannot write metrics to '" << path << "'\n";
      return;
    }
    const auto stamp = manifest_.stamp();
    registry_.write_jsonl(out, stamp);
  }

  /// Honor HIT_BENCH_METRICS=<file> (no-op when unset).
  void dump_if_requested() const {
    if (const char* path = std::getenv("HIT_BENCH_METRICS")) {
      if (*path != '\0') dump(path);
    }
  }

 private:
  BenchObserver() : context_(&registry_, nullptr, nullptr) {
    manifest_.build_type = HITSCHED_BUILD_TYPE;
    manifest_.git_sha = util::git_sha();
    manifest_.host = util::hostname();
  }
  // Every bench binary honors HIT_BENCH_METRICS without touching its main:
  // the singleton dumps on static destruction at process exit.
  ~BenchObserver() { dump_if_requested(); }

  obs::Registry registry_;
  RunManifest manifest_;
  obs::Context context_;
};

/// Machine-readable bench results: one JSON document per bench binary — the
/// manifest plus one object per result row — so successive PRs can diff the
/// numbers.  Written as BENCH_<name>.json into the current directory, or
/// into $HIT_BENCH_JSON_DIR when set.  Committed snapshots live in
/// bench/results/.
class JsonResults {
 public:
  using Row = std::vector<std::pair<std::string, stats::Cell>>;

  explicit JsonResults(std::string name) : name_(std::move(name)) {}

  void add(Row row) { rows_.push_back(std::move(row)); }

  /// Write BENCH_<name>.json; returns false (and complains on stderr) when
  /// the file cannot be written.
  bool write() const {
    std::string dir = ".";
    if (const char* env = std::getenv("HIT_BENCH_JSON_DIR")) {
      if (*env != '\0') dir = env;
    }
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench: cannot write results to '" << path << "'\n";
      return false;
    }
    out << "{\n  \"manifest\": "
        << object(BenchObserver::instance().manifest().stamp())
        << ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << (i == 0 ? "\n    " : ",\n    ") << object(rows_[i]);
    }
    out << "\n  ]\n}\n";
    std::cout << "results: " << path << "\n";
    return static_cast<bool>(out);
  }

 private:
  static std::string value(const stats::Cell& cell) {
    struct Visitor {
      std::string operator()(const std::string& s) const {
        return "\"" + stats::JsonLinesWriter::escape(s) + "\"";
      }
      std::string operator()(double d) const {
        if (!std::isfinite(d)) return "null";
        std::ostringstream out;
        out << d;
        return out.str();
      }
      std::string operator()(std::int64_t i) const { return std::to_string(i); }
    };
    return std::visit(Visitor{}, cell);
  }

  static std::string object(const Row& fields) {
    std::string out = "{";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + stats::JsonLinesWriter::escape(fields[i].first) +
             "\": " + value(fields[i].second);
    }
    return out + "}";
  }

  std::string name_;
  std::vector<Row> rows_;
};

/// Topology + cluster pair; the cluster holds a pointer into the topology,
/// so the pair is allocated once and never moved.
struct Testbed {
  topo::Topology topology;
  cluster::Cluster cluster;

  Testbed(topo::Topology t, cluster::Resource per_server)
      : topology(std::move(t)), cluster(topology, per_server) {}
  Testbed(const Testbed&) = delete;
};

/// Two-slot servers, as in the paper's case study configuration.
inline constexpr cluster::Resource kServerCapacity{2.0, 8.0};

/// The paper's testbed-scale network: 64 hosts in a three-level tree
/// (hop diversity 1 / 3 / 5 like the Mininet depth-3 setup).
inline std::unique_ptr<Testbed> make_testbed_tree() {
  topo::TreeConfig config;
  config.depth = 3;
  config.fanout = 4;
  config.redundancy = 2;
  config.hosts_per_access = 4;
  return std::make_unique<Testbed>(topo::make_tree(config), kServerCapacity);
}

/// Figure 9's large-scale simulation: 512 hosts.
inline std::unique_ptr<Testbed> make_large_tree() {
  topo::TreeConfig config;
  config.depth = 3;
  config.fanout = 8;
  config.redundancy = 2;
  config.hosts_per_access = 8;
  return std::make_unique<Testbed>(topo::make_tree(config), kServerCapacity);
}

/// The scheduler lineup of the evaluation section.
struct Lineup {
  sched::CapacityScheduler capacity;
  sched::PnaScheduler pna;
  core::HitScheduler hit;

  [[nodiscard]] std::vector<sched::Scheduler*> all() {
    return {&capacity, &pna, &hit};
  }
};

/// One replica: generate jobs with `seed`, run `scheduler`, return metrics.
/// Identical seeds produce identical jobs/HDFS layouts across schedulers.
inline sim::SimResult run_replica(const Testbed& testbed, sched::Scheduler& scheduler,
                                  const mr::WorkloadConfig& wconfig,
                                  const sim::SimConfig& sconfig, std::uint64_t seed) {
  BenchObserver& obs = BenchObserver::instance();
  obs.manifest().scheduler = std::string(scheduler.name());
  obs.manifest().seed = seed;
  obs.manifest().config = describe_config(wconfig, sconfig);
  Rng rng(seed);
  mr::IdAllocator ids;
  const mr::WorkloadGenerator generator(wconfig);
  const std::vector<mr::Job> jobs = generator.generate(ids, rng);
  sim::SimConfig observed = sconfig;
  if (observed.observer == nullptr) observed.observer = &obs.context();
  const sim::ClusterSimulator simulator(testbed.cluster, observed);
  return simulator.run(scheduler, jobs, ids, rng);
}

/// A one-shot (single-wave) scheduling problem built from a generated
/// workload — used by the static analyses (Figure 7's D-ITG-style
/// measurement, Figure 8's cost comparisons) where no time dynamics are
/// needed.  Owns everything the Problem points at.
struct StaticExperiment {
  std::vector<mr::Job> jobs;
  std::unique_ptr<mr::BlockPlacement> blocks;
  sched::Problem problem;
};

inline std::unique_ptr<StaticExperiment> make_static_experiment(
    const Testbed& testbed, const mr::WorkloadConfig& wconfig, std::uint64_t seed) {
  auto exp = std::make_unique<StaticExperiment>();
  Rng rng(seed);
  mr::IdAllocator ids;
  const mr::WorkloadGenerator generator(wconfig);
  exp->jobs = generator.generate(ids, rng);
  Rng hdfs_rng = rng.fork(0x48444653);
  exp->blocks = std::make_unique<mr::BlockPlacement>(testbed.cluster, exp->jobs,
                                                     hdfs_rng);
  exp->problem.topology = &testbed.topology;
  exp->problem.cluster = &testbed.cluster;
  exp->problem.blocks = exp->blocks.get();
  for (const mr::Job& job : exp->jobs) {
    for (const mr::Task& t : job.maps) {
      exp->problem.tasks.push_back(
          sched::TaskRef{t.id, t.job, t.kind, cluster::kDefaultContainerDemand,
                         t.input_gb});
    }
    for (const mr::Task& t : job.reduces) {
      exp->problem.tasks.push_back(
          sched::TaskRef{t.id, t.job, t.kind, cluster::kDefaultContainerDemand,
                         t.input_gb});
    }
  }
  exp->problem.flows = mr::build_shuffle_flows(exp->jobs, ids);
  return exp;
}

/// Percentage improvement of `value` over `baseline` (positive = better
/// when lower-is-better).
inline double improvement(double baseline, double value) {
  return baseline > 0.0 ? (baseline - value) / baseline : 0.0;
}

inline void print_header(const std::string& title) {
  // First header names the run in the manifest (bench mains that want a
  // different name set manifest().bench themselves).
  RunManifest& manifest = BenchObserver::instance().manifest();
  if (manifest.bench.empty()) manifest.bench = title;
  std::cout << "==== " << title << " ====\n";
}

}  // namespace hit::bench
