// Shared experiment plumbing for the paper-figure benchmark harnesses.
//
// Every bench binary reproduces one table/figure: it builds the relevant
// testbed, runs the scheduler lineup over seeded replicas, and prints the
// same rows/series the paper reports.  Numbers are expected to match the
// paper in *shape* (ordering, rough factors, crossovers), not absolutely —
// see EXPERIMENTS.md.
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/hit_scheduler.h"
#include "mapreduce/workload.h"
#include "sched/capacity_scheduler.h"
#include "sched/delay_scheduler.h"
#include "sched/pna_scheduler.h"
#include "sched/random_scheduler.h"
#include "sim/engine.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "topology/builders.h"
#include "util/rng.h"

namespace hit::bench {

/// Topology + cluster pair; the cluster holds a pointer into the topology,
/// so the pair is allocated once and never moved.
struct Testbed {
  topo::Topology topology;
  cluster::Cluster cluster;

  Testbed(topo::Topology t, cluster::Resource per_server)
      : topology(std::move(t)), cluster(topology, per_server) {}
  Testbed(const Testbed&) = delete;
};

/// Two-slot servers, as in the paper's case study configuration.
inline constexpr cluster::Resource kServerCapacity{2.0, 8.0};

/// The paper's testbed-scale network: 64 hosts in a three-level tree
/// (hop diversity 1 / 3 / 5 like the Mininet depth-3 setup).
inline std::unique_ptr<Testbed> make_testbed_tree() {
  topo::TreeConfig config;
  config.depth = 3;
  config.fanout = 4;
  config.redundancy = 2;
  config.hosts_per_access = 4;
  return std::make_unique<Testbed>(topo::make_tree(config), kServerCapacity);
}

/// Figure 9's large-scale simulation: 512 hosts.
inline std::unique_ptr<Testbed> make_large_tree() {
  topo::TreeConfig config;
  config.depth = 3;
  config.fanout = 8;
  config.redundancy = 2;
  config.hosts_per_access = 8;
  return std::make_unique<Testbed>(topo::make_tree(config), kServerCapacity);
}

/// The scheduler lineup of the evaluation section.
struct Lineup {
  sched::CapacityScheduler capacity;
  sched::PnaScheduler pna;
  core::HitScheduler hit;

  [[nodiscard]] std::vector<sched::Scheduler*> all() {
    return {&capacity, &pna, &hit};
  }
};

/// One replica: generate jobs with `seed`, run `scheduler`, return metrics.
/// Identical seeds produce identical jobs/HDFS layouts across schedulers.
inline sim::SimResult run_replica(const Testbed& testbed, sched::Scheduler& scheduler,
                                  const mr::WorkloadConfig& wconfig,
                                  const sim::SimConfig& sconfig, std::uint64_t seed) {
  Rng rng(seed);
  mr::IdAllocator ids;
  const mr::WorkloadGenerator generator(wconfig);
  const std::vector<mr::Job> jobs = generator.generate(ids, rng);
  const sim::ClusterSimulator simulator(testbed.cluster, sconfig);
  return simulator.run(scheduler, jobs, ids, rng);
}

/// A one-shot (single-wave) scheduling problem built from a generated
/// workload — used by the static analyses (Figure 7's D-ITG-style
/// measurement, Figure 8's cost comparisons) where no time dynamics are
/// needed.  Owns everything the Problem points at.
struct StaticExperiment {
  std::vector<mr::Job> jobs;
  std::unique_ptr<mr::BlockPlacement> blocks;
  sched::Problem problem;
};

inline std::unique_ptr<StaticExperiment> make_static_experiment(
    const Testbed& testbed, const mr::WorkloadConfig& wconfig, std::uint64_t seed) {
  auto exp = std::make_unique<StaticExperiment>();
  Rng rng(seed);
  mr::IdAllocator ids;
  const mr::WorkloadGenerator generator(wconfig);
  exp->jobs = generator.generate(ids, rng);
  Rng hdfs_rng = rng.fork(0x48444653);
  exp->blocks = std::make_unique<mr::BlockPlacement>(testbed.cluster, exp->jobs,
                                                     hdfs_rng);
  exp->problem.topology = &testbed.topology;
  exp->problem.cluster = &testbed.cluster;
  exp->problem.blocks = exp->blocks.get();
  for (const mr::Job& job : exp->jobs) {
    for (const mr::Task& t : job.maps) {
      exp->problem.tasks.push_back(
          sched::TaskRef{t.id, t.job, t.kind, cluster::kDefaultContainerDemand,
                         t.input_gb});
    }
    for (const mr::Task& t : job.reduces) {
      exp->problem.tasks.push_back(
          sched::TaskRef{t.id, t.job, t.kind, cluster::kDefaultContainerDemand,
                         t.input_gb});
    }
  }
  exp->problem.flows = mr::build_shuffle_flows(exp->jobs, ids);
  return exp;
}

/// Percentage improvement of `value` over `baseline` (positive = better
/// when lower-is-better).
inline double improvement(double baseline, double value) {
  return baseline > 0.0 ? (baseline - value) / baseline : 0.0;
}

inline void print_header(const std::string& title) {
  std::cout << "==== " << title << " ====\n";
}

}  // namespace hit::bench
