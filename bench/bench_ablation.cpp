// Ablation — which parts of Hit-Scheduler pay?  (DESIGN.md §5)
//
// Compares the full scheduler against: greedy assignment instead of stable
// matching, shortest-path policies instead of Algorithm 1 routing, neither,
// and the random floor — on shuffle cost and job completion time.
#include <iostream>

#include "core/local_search.h"
#include "core/taa.h"
#include "harness.h"

int main() {
  using namespace hit;
  using namespace hit::bench;

  print_header("Ablation: stable matching and policy optimization");

  auto testbed = make_testbed_tree();

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 10;
  wconfig.max_maps_per_job = 16;
  wconfig.max_reduces_per_job = 6;
  wconfig.block_size_gb = 2.0;

  sim::SimConfig sconfig;
  sconfig.bandwidth_scale = 0.035;

  core::HitConfig full;
  core::HitConfig greedy = full;
  greedy.use_stable_matching = false;
  core::HitConfig no_policy = full;
  no_policy.optimize_policies = false;

  core::HitScheduler hit_full(full);
  core::HitScheduler hit_greedy(greedy);
  core::HitScheduler hit_no_policy(no_policy);
  sched::RandomScheduler random_sched;
  sched::CapacityScheduler capacity;

  struct Row {
    const char* label;
    sched::Scheduler* scheduler;
  };
  const std::vector<Row> rows = {
      {"Hit (matching + policy opt)", &hit_full},
      {"Hit, greedy assignment", &hit_greedy},
      {"Hit, shortest-path policies", &hit_no_policy},
      {"Capacity (neither)", &capacity},
      {"Random floor", &random_sched},
  };

  stats::Table table({"variant", "shuffle cost (GB*T)", "mean JCT", "avg route hops"});
  for (const Row& row : rows) {
    stats::RunningSummary cost, jct, hops;
    for (int r = 0; r < 3; ++r) {
      const sim::SimResult result =
          run_replica(*testbed, *row.scheduler, wconfig, sconfig, 2100 + r);
      cost.add(result.total_shuffle_cost);
      stats::RunningSummary j;
      for (double v : result.job_completion_times()) j.add(v);
      jct.add(j.mean());
      hops.add(result.average_route_hops());
    }
    table.add_row({row.label, stats::Table::num(cost.mean(), 1),
                   stats::Table::num(jct.mean()), stats::Table::num(hops.mean())});
  }
  std::cout << table.render();

  // Placement vs flow scheduling (related work [5][6]): SRPT at the links
  // cannot recover what topology-blind placement lost — "the source or
  // destination of each flow is independently decided by the task scheduler
  // and not necessarily optimal" (§8).
  std::cout << "\n-- placement vs network flow scheduling --\n";
  stats::Table net_table({"placement + sharing", "mean JCT", "avg flow time"});
  struct NetRow {
    const char* label;
    sched::Scheduler* scheduler;
    net::SharingPolicy sharing;
  };
  const std::vector<NetRow> net_rows = {
      {"Capacity + fair sharing", &capacity, net::SharingPolicy::MaxMinFair},
      {"Capacity + SRPT", &capacity, net::SharingPolicy::Srpt},
      {"Hit + fair sharing", &hit_full, net::SharingPolicy::MaxMinFair},
      {"Hit + SRPT", &hit_full, net::SharingPolicy::Srpt},
  };
  for (const NetRow& row : net_rows) {
    sim::SimConfig nconfig = sconfig;
    nconfig.sharing = row.sharing;
    stats::RunningSummary jct, flow_time;
    for (int r = 0; r < 3; ++r) {
      const sim::SimResult result =
          run_replica(*testbed, *row.scheduler, wconfig, nconfig, 2100 + r);
      stats::RunningSummary j;
      for (double v : result.job_completion_times()) j.add(v);
      jct.add(j.mean());
      flow_time.add(result.average_flow_duration());
    }
    net_table.add_row({row.label, stats::Table::num(jct.mean()),
                       stats::Table::num(flow_time.mean())});
  }
  std::cout << net_table.render();

  // How much does the O(M x N) stable matching leave on the table?  Refine
  // Hit's placement with local search on oracle-sized instances and report
  // the residual gap (small workloads: the refinement re-routes every flow
  // per candidate move, so it is exact but expensive).
  std::cout << "\n-- matching quality gap (Hit vs Hit + local search) --\n";
  stats::Table gap_table({"workload", "Hit cost (GB*T)", "refined cost (GB*T)",
                          "gap closed", "moves"});
  core::CostConfig pure;
  pure.congestion_weight = 0.0;
  core::LocalSearchConfig ls_config;
  ls_config.cost = pure;
  const core::LocalSearchSolver refiner(ls_config);
  for (std::size_t jobs : {1u, 2u, 3u}) {
    mr::WorkloadConfig small;
    small.num_jobs = jobs;
    small.max_maps_per_job = 5;
    small.max_reduces_per_job = 2;
    small.block_size_gb = 4.0;
    auto exp = make_static_experiment(*testbed, small, 2500 + jobs);
    Rng rng(2500 + jobs);
    const sched::Assignment seed = hit_full.schedule(exp->problem, rng);
    const double hit_cost = core::taa_objective(exp->problem, seed, pure);
    const auto refined = refiner.refine(exp->problem, seed);
    gap_table.add_row(
        {std::to_string(jobs) + " job(s)", stats::Table::num(hit_cost, 1),
         stats::Table::num(refined.cost, 1),
         stats::Table::pct(hit_cost > 0 ? (hit_cost - refined.cost) / hit_cost : 0),
         std::to_string(refined.moves)});
  }
  std::cout << gap_table.render();
  return 0;
}
