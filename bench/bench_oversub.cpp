// Extension experiment (not a paper figure): oversubscription sensitivity.
//
// Real data-center trees run 2:1-8:1 oversubscribed uplinks; the scarcer the
// core, the more rack-locality pays.  Sweeps the uplink bandwidth factor and
// reports each scheduler's JCT plus Capacity+ECMP (hash-spread routing, the
// commodity-fabric default) as a fourth arm.
#include <iostream>
#include <memory>

#include "harness.h"

int main() {
  using namespace hit;
  using namespace hit::bench;

  print_header("Oversubscription sweep (uplink factor 1.0 -> 0.125)");

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 10;
  wconfig.max_maps_per_job = 16;
  wconfig.max_reduces_per_job = 6;
  wconfig.block_size_gb = 2.0;

  sim::SimConfig sconfig;
  sconfig.bandwidth_scale = 0.1;

  sched::CapacityScheduler capacity;
  sched::CapacityScheduler capacity_ecmp(/*use_ecmp=*/true);
  sched::PnaScheduler pna;
  core::HitScheduler hit;

  stats::Table table({"uplink factor", "Capacity JCT", "Capacity+ECMP JCT",
                      "PNA JCT", "Hit JCT", "Hit vs Capacity"});
  for (double factor : {1.0, 0.5, 0.25, 0.125}) {
    topo::TreeConfig tree;
    tree.depth = 3;
    tree.fanout = 4;
    tree.redundancy = 2;
    tree.hosts_per_access = 4;
    tree.uplink_bandwidth_factor = factor;
    const auto testbed =
        std::make_unique<Testbed>(topo::make_tree(tree), kServerCapacity);

    auto mean_jct = [&](sched::Scheduler& s) {
      stats::RunningSummary jct;
      for (int r = 0; r < 3; ++r) {
        for (double v :
             run_replica(*testbed, s, wconfig, sconfig, 4200 + r)
                 .job_completion_times()) {
          jct.add(v);
        }
      }
      return jct.mean();
    };

    const double cap = mean_jct(capacity);
    const double ecmp = mean_jct(capacity_ecmp);
    const double pna_jct = mean_jct(pna);
    const double hit_jct = mean_jct(hit);
    table.add_row({stats::Table::num(factor, 3), stats::Table::num(cap),
                   stats::Table::num(ecmp), stats::Table::num(pna_jct),
                   stats::Table::num(hit_jct),
                   stats::Table::pct(improvement(cap, hit_jct))});
  }
  std::cout << table.render();
  std::cout << "\nScarcer uplinks widen Hit's margin: rack-local shuffles "
               "bypass the oversubscribed tiers entirely; ECMP helps Capacity "
               "only marginally because its placement still crosses the "
               "core.\n";
  return 0;
}
