// Figure 6 — CDFs of job completion time (a), map task execution time (b)
// and reduce task execution time (c) under Capacity, Probabilistic
// Network-Aware and Hit scheduling.
//
// Paper result: Hit improves job completion time by 28% over Capacity and
// 11% over PNA; Capacity/PNA lead slightly during the map phase (Hit does
// not optimize remote map access), and Hit wins decisively on reduce times.
#include <iostream>

#include "harness.h"
#include "stats/plot.h"

int main() {
  using namespace hit;
  using namespace hit::bench;

  print_header("Figure 6: JCT / map / reduce time CDFs (tree, 64 hosts)");

  auto testbed = make_testbed_tree();

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 10;
  wconfig.max_maps_per_job = 16;
  wconfig.max_reduces_per_job = 6;
  wconfig.block_size_gb = 2.0;

  sim::SimConfig sconfig;
  // The shuffle must be network-bound for topology awareness to matter
  // (the paper throttles Mininet links to Mbps); scale 16 GbE links down.
  sconfig.bandwidth_scale = 0.035;

  constexpr int kReplicas = 5;
  Lineup lineup;

  std::vector<double> jct[3], map_t[3], red_t[3];
  for (int r = 0; r < kReplicas; ++r) {
    int si = 0;
    for (sched::Scheduler* s : lineup.all()) {
      const sim::SimResult result =
          run_replica(*testbed, *s, wconfig, sconfig, 1000 + r);
      for (double v : result.job_completion_times()) jct[si].push_back(v);
      for (double v : result.task_durations(cluster::TaskKind::Map))
        map_t[si].push_back(v);
      for (double v : result.task_durations(cluster::TaskKind::Reduce))
        red_t[si].push_back(v);
      ++si;
    }
  }

  const char* names[3] = {"Capacity", "PNA", "Hit"};
  auto print_cdf = [&](const char* title, std::vector<double>* samples) {
    std::cout << "\n-- " << title << " CDF --\n";
    stats::Table table({"P", names[0], names[1], names[2]});
    stats::Cdf cdfs[3] = {stats::Cdf(samples[0]), stats::Cdf(samples[1]),
                          stats::Cdf(samples[2])};
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0}) {
      table.add_row({stats::Table::num(q, 2), stats::Table::num(cdfs[0].quantile(q)),
                     stats::Table::num(cdfs[1].quantile(q)),
                     stats::Table::num(cdfs[2].quantile(q))});
    }
    std::cout << table.render();
    std::cout << "mean: " << stats::Table::num(stats::mean_of(samples[0])) << " / "
              << stats::Table::num(stats::mean_of(samples[1])) << " / "
              << stats::Table::num(stats::mean_of(samples[2])) << "\n";
  };

  print_cdf("(a) job completion time", jct);
  print_cdf("(b) map task execution time", map_t);
  print_cdf("(c) reduce task execution time", red_t);

  // The actual Figure 6(a) curve shapes, in the terminal.
  std::cout << "\n-- (a) JCT CDF curves (x = seconds, y = P) --\n";
  stats::AsciiChart chart(64, 16);
  const char markers[3] = {'c', 'p', 'H'};
  for (int i = 0; i < 3; ++i) {
    chart.add_series(names[i], stats::Cdf(jct[i]).series(40), markers[i]);
  }
  std::cout << chart.render();

  const double cap = stats::mean_of(jct[0]);
  const double pna = stats::mean_of(jct[1]);
  const double hit = stats::mean_of(jct[2]);
  std::cout << "\nJCT improvement of Hit vs Capacity: "
            << stats::Table::pct(improvement(cap, hit))
            << "  (paper: 28%)\n";
  std::cout << "JCT improvement of Hit vs PNA:      "
            << stats::Table::pct(improvement(pna, hit)) << "  (paper: 11%)\n";
  return 0;
}
