// Extension experiment (not a paper figure): runtime policy rebalancing.
//
// The paper's centralized controller re-optimizes traffic policies as load
// shifts (§7.1, Figure 2).  This bench installs a churning flow population
// under naive shortest-path policies, then measures how much the
// controller's hot-switch rebalancing recovers: peak switch utilization,
// count of hot switches, and total policy cost, before vs after.
#include <iostream>

#include "core/controller.h"
#include "harness.h"
#include "network/routing.h"

int main() {
  using namespace hit;
  using namespace hit::bench;

  print_header("Runtime policy rebalancing (centralized controller)");

  auto testbed = make_testbed_tree();
  const auto servers = testbed->cluster.servers();

  stats::Table table({"flows", "hot switches before", "hot after",
                      "peak util before", "peak after", "cost before",
                      "cost after", "rerouted"});

  for (std::size_t num_flows : {32u, 64u, 128u}) {
    core::ControllerConfig config;
    config.hot_threshold = 0.7;
    core::NetworkController controller(testbed->topology, config);

    // Skewed flow population: shortest-path installs pile onto the
    // lexicographically-first switches (the Figure 2 congestion pattern).
    Rng rng(42);
    for (std::size_t i = 0; i < num_flows; ++i) {
      const auto a = rng.uniform_index(servers.size());
      auto b = rng.uniform_index(servers.size());
      if (b == a) b = (b + 1) % servers.size();
      net::Flow f;
      f.id = FlowId(static_cast<FlowId::value_type>(i));
      f.size_gb = rng.uniform(0.5, 3.0);
      f.rate = f.size_gb;
      const NodeId src = servers[a].node;
      const NodeId dst = servers[b].node;
      controller.install(f, net::shortest_policy(testbed->topology, src, dst, f.id),
                         src, dst);
    }

    auto peak_util = [&]() {
      double peak = 0.0;
      for (NodeId w : testbed->topology.switches()) {
        peak = std::max(peak, controller.load().utilization(w));
      }
      return peak;
    };

    const std::size_t hot_before = controller.hot_switches().size();
    const double util_before = peak_util();
    const double cost_before = controller.total_cost();

    const std::size_t rerouted = controller.rebalance();
    controller.audit();

    table.add_row({std::to_string(num_flows), std::to_string(hot_before),
                   std::to_string(controller.hot_switches().size()),
                   stats::Table::pct(util_before), stats::Table::pct(peak_util()),
                   stats::Table::num(cost_before, 1),
                   stats::Table::num(controller.total_cost(), 1),
                   std::to_string(rerouted)});
  }
  std::cout << table.render();
  std::cout << "\nRebalancing spreads flows over redundant aggregation/core "
               "switches: peak utilization and congestion-aware cost both "
               "drop without touching task placement.\n";
  return 0;
}
