// Figure 8 — (a) shuffle-cost reduction by workload class, (b) shuffle cost
// under four network architectures.
//
// Paper results: (a) for shuffle-heavy workloads Hit cuts shuffle cost by
// up to 38% (PNA: 21%); light/medium classes gain less because they move
// little shuffle data.  (b) across Tree / Fat-Tree / BCube / VL2, Hit beats
// PNA by ~19% and Capacity by ~32%; the Tree carries the least absolute
// cost for map-and-reduce traffic.
#include <iostream>

#include "core/taa.h"
#include "harness.h"

namespace {

using namespace hit;
using namespace hit::bench;

/// Mean traffic cost (GB·T) of a scheduler over seeded replicas of one
/// static problem family.  `include_remote_map` adds the remote map-input
/// cost, so the per-class percentages reflect *total* communication — the
/// quantity whose shuffle share Figure 1 characterizes.
double mean_cost(const Testbed& testbed, sched::Scheduler& scheduler,
                 const mr::WorkloadConfig& wconfig, int replicas,
                 std::uint64_t seed0, bool include_remote_map = false) {
  core::CostConfig pure;
  pure.congestion_weight = 0.0;
  stats::RunningSummary cost;
  for (int r = 0; r < replicas; ++r) {
    auto exp = make_static_experiment(testbed, wconfig, seed0 + r);
    Rng rng(seed0 + r);
    const sched::Assignment a = scheduler.schedule(exp->problem, rng);
    double total = core::taa_objective(exp->problem, a, pure);
    if (include_remote_map) {
      const core::CostModel model(testbed.topology, pure);
      total += model.remote_map_cost(exp->problem, a);
    }
    cost.add(total);
  }
  return cost.mean();
}

}  // namespace

int main() {
  print_header("Figure 8(a): shuffle-cost reduction by workload class");

  {
    auto testbed = make_testbed_tree();
    Lineup lineup;
    stats::Table table({"class", "Capacity (GB*T)", "PNA (GB*T)", "Hit (GB*T)",
                        "PNA reduction", "Hit reduction"});
    for (mr::JobClass cls : {mr::JobClass::ShuffleHeavy, mr::JobClass::ShuffleMedium,
                             mr::JobClass::ShuffleLight}) {
      mr::WorkloadConfig wconfig;
      wconfig.num_jobs = 8;
      wconfig.max_maps_per_job = 10;
      wconfig.max_reduces_per_job = 4;
      wconfig.block_size_gb = 2.0;
      wconfig.only_class = cls;

      const double cap = mean_cost(*testbed, lineup.capacity, wconfig, 3, 300);
      const double pna = mean_cost(*testbed, lineup.pna, wconfig, 3, 300);
      const double hit = mean_cost(*testbed, lineup.hit, wconfig, 3, 300);
      table.add_row({std::string(mr::job_class_name(cls)), stats::Table::num(cap, 1),
                     stats::Table::num(pna, 1), stats::Table::num(hit, 1),
                     stats::Table::pct(improvement(cap, pna)),
                     stats::Table::pct(improvement(cap, hit))});
    }
    std::cout << table.render();
    std::cout << "Paper: shuffle-heavy reductions 38% (Hit) / 21% (PNA); smaller "
                 "for medium and light.\n\n";
  }

  print_header("Figure 8(b): shuffle cost under four network architectures");
  {
    struct Arch {
      const char* name;
      std::unique_ptr<Testbed> testbed;
    };
    std::vector<Arch> archs;
    archs.push_back({"Tree", make_testbed_tree()});
    archs.push_back({"Fat-Tree",
                     std::make_unique<Testbed>(
                         topo::make_fat_tree(topo::FatTreeConfig{6, 16.0, 32.0}),
                         kServerCapacity)});
    archs.push_back({"BCube",
                     std::make_unique<Testbed>(
                         topo::make_bcube(topo::BCubeConfig{4, 2, 16.0, 32.0}),
                         kServerCapacity)});
    archs.push_back({"VL2",
                     std::make_unique<Testbed>(
                         topo::make_vl2(topo::Vl2Config{4, 8, 16, 4, 16.0, 32.0}),
                         kServerCapacity)});

    // 6 jobs keep the task count inside the smallest architecture
    // (Fat-Tree k=6: 54 servers, 108 container slots).
    mr::WorkloadConfig wconfig;
    wconfig.num_jobs = 6;
    wconfig.max_maps_per_job = 10;
    wconfig.max_reduces_per_job = 4;
    wconfig.block_size_gb = 2.0;
    wconfig.only_class = mr::JobClass::ShuffleHeavy;

    Lineup lineup;
    stats::Table table({"architecture", "Capacity (GB*T)", "PNA (GB*T)", "Hit (GB*T)",
                        "Hit vs PNA", "Hit vs Capacity"});
    stats::RunningSummary vs_pna, vs_cap;
    for (const Arch& arch : archs) {
      const double cap = mean_cost(*arch.testbed, lineup.capacity, wconfig, 2, 600);
      const double pna = mean_cost(*arch.testbed, lineup.pna, wconfig, 2, 600);
      const double hit = mean_cost(*arch.testbed, lineup.hit, wconfig, 2, 600);
      vs_pna.add(improvement(pna, hit));
      vs_cap.add(improvement(cap, hit));
      table.add_row({arch.name, stats::Table::num(cap, 1), stats::Table::num(pna, 1),
                     stats::Table::num(hit, 1),
                     stats::Table::pct(improvement(pna, hit)),
                     stats::Table::pct(improvement(cap, hit))});
    }
    std::cout << table.render();
    std::cout << "mean Hit advantage: vs PNA " << stats::Table::pct(vs_pna.mean())
              << " (paper ~19%), vs Capacity " << stats::Table::pct(vs_cap.mean())
              << " (paper ~32%).\n";
  }
  return 0;
}
