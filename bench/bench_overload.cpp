// Extension experiment (not a paper figure): behavior under offered overload.
//
// Sweeps the Poisson arrival rate past the cluster's service capacity with
// deadline-shed admission control and reports, per scheduler, how much work
// was shed, how long the survivors queued (p99), and — for the Hit scheduler
// with the degradation ladder armed — which ladder tier served each wave.
// With HIT_BENCH_METRICS=<file> the run also dumps the ambient counters
// (online.jobs_shed, core.hit_scheduler.ladder.*, ...) as JSON Lines.
#include <array>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "sim/online.h"

int main() {
  using namespace hit;
  using namespace hit::bench;

  print_header("Overload sweep: deadline-shed admission + degradation ladder");

  // Small testbed (8 hosts, 16 slots): a job of up to 14 containers runs
  // nearly alone, so super-capacity arrival rates genuinely overload it.
  topo::TreeConfig tree;
  tree.depth = 2;
  tree.fanout = 4;
  tree.redundancy = 2;
  tree.hosts_per_access = 2;
  const Testbed testbed(topo::make_tree(tree), kServerCapacity);

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 12;
  wconfig.max_maps_per_job = 10;
  wconfig.max_reduces_per_job = 4;
  wconfig.block_size_gb = 2.0;
  wconfig.low_priority_fraction = 0.25;
  wconfig.high_priority_fraction = 0.25;

  constexpr double kQueueDeadline = 300.0;  // seconds a job may wait

  core::HitConfig ladder_config;
  ladder_config.ladder.enabled = true;
  ladder_config.ladder.route_budget = 20'000;
  ladder_config.ladder.proposal_budget = 5'000;
  ladder_config.ladder.breaker.enabled = true;

  stats::Table table({"arrival rate (jobs/s)", "scheduler", "completed", "shed",
                      "shed rate", "p99 queueing (s)", "tiers f/p/g/r"});
  JsonResults json("overload");

  for (double rate : {0.02, 0.2, 1.0}) {
    for (const bool use_hit : {false, true}) {
      std::size_t completed = 0, shed = 0;
      std::vector<double> waits;
      core::LadderStats tiers;

      for (int r = 0; r < 3; ++r) {
        sched::CapacityScheduler capacity;
        core::HitScheduler hit(ladder_config);
        sched::Scheduler& scheduler =
            use_hit ? static_cast<sched::Scheduler&>(hit) : capacity;

        BenchObserver& obs = BenchObserver::instance();
        obs.manifest().scheduler = std::string(scheduler.name());
        obs.manifest().seed = static_cast<std::uint64_t>(7000 + r);

        Rng rng(7000 + r);
        mr::IdAllocator ids;
        const mr::WorkloadGenerator generator(wconfig);
        const auto jobs = generator.generate(ids, rng);

        sim::OnlineConfig oconfig;
        oconfig.arrival_rate = rate;
        oconfig.sim.bandwidth_scale = 0.05;
        oconfig.sim.observer = &obs.context();
        oconfig.admission.policy = sim::AdmissionPolicy::DeadlineShed;
        oconfig.max_queue_wait = kQueueDeadline;
        obs.manifest().config = describe_config(wconfig, oconfig.sim) +
                                " admission=deadline-shed wait=" +
                                stats::Table::num(kQueueDeadline);

        const sim::OnlineSimulator sim(testbed.cluster, oconfig);
        const sim::OnlineResult result = sim.run(scheduler, jobs, ids, rng);

        completed += result.jobs.size();
        shed += result.overload.jobs_shed;
        for (double w : result.queueing_delays()) waits.push_back(w);
        if (use_hit) {
          for (std::size_t t = 0; t < core::kLadderTiers; ++t) {
            tiers.served[t] += hit.ladder_stats().served[t];
          }
          tiers.budget_exhaustions += hit.ladder_stats().budget_exhaustions;
          tiers.breaker_skips += hit.ladder_stats().breaker_skips;
        }
      }

      const double offered = static_cast<double>(completed + shed);
      std::string tier_cell = "-";
      if (use_hit) {
        tier_cell = std::to_string(tiers.served[0]) + "/" +
                    std::to_string(tiers.served[1]) + "/" +
                    std::to_string(tiers.served[2]) + "/" +
                    std::to_string(tiers.served[3]);
      }
      table.add_row(
          {stats::Table::num(rate, 2), use_hit ? "hit (laddered)" : "capacity",
           std::to_string(completed), std::to_string(shed),
           stats::Table::num(offered > 0.0
                                 ? static_cast<double>(shed) / offered * 100.0
                                 : 0.0, 1) + "%",
           stats::Table::num(stats::percentile(waits, 99.0)), tier_cell});
      json.add({{"rate", rate},
                {"scheduler", std::string(use_hit ? "hit-laddered" : "capacity")},
                {"completed", static_cast<std::int64_t>(completed)},
                {"shed", static_cast<std::int64_t>(shed)},
                {"shed_rate",
                 offered > 0.0 ? static_cast<double>(shed) / offered : 0.0},
                {"p99_wait_s", stats::percentile(waits, 99.0)},
                {"ladder_tiers", tier_cell}});
    }
  }

  std::cout << table.render();
  json.write();
  std::cout << "\nPast the service rate the deadline sheds the queue tail "
               "instead of letting waits grow without bound; shed rate and "
               "p99 queueing bound each other.\n";
  return 0;
}
