// Microbenchmarks (google-benchmark): scheduler-side decision latency.
//
// Not a paper figure — these bound the online overhead of the pluggable
// module: preference construction (Alg. 1), stable matching (Alg. 2,
// O(M x N)), single-flow optimal routing, Yen's k-shortest-paths and the
// max-min fair allocator the simulator re-solves per event.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string_view>
#include <vector>

#include "core/local_search.h"
#include "core/mkp.h"
#include "core/policy_optimizer.h"
#include "core/stable_matching.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "sim/packet.h"
#include "harness.h"
#include "network/bandwidth.h"

namespace {

using namespace hit;
using namespace hit::bench;

mr::WorkloadConfig workload_for(std::size_t jobs) {
  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = jobs;
  wconfig.max_maps_per_job = 10;
  wconfig.max_reduces_per_job = 4;
  wconfig.block_size_gb = 2.0;
  return wconfig;
}

void BM_BuildPreferences(benchmark::State& state) {
  auto testbed = make_testbed_tree();
  auto exp = make_static_experiment(*testbed,
                                    workload_for(static_cast<std::size_t>(state.range(0))),
                                    11);
  const core::PolicyOptimizer optimizer(testbed->topology);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.build_preferences(exp->problem));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildPreferences)->Arg(2)->Arg(4)->Arg(8)->Complexity();

void BM_StableMatching(benchmark::State& state) {
  auto testbed = make_testbed_tree();
  auto exp = make_static_experiment(*testbed,
                                    workload_for(static_cast<std::size_t>(state.range(0))),
                                    12);
  const core::PolicyOptimizer optimizer(testbed->topology);
  const core::PreferenceMatrix prefs = optimizer.build_preferences(exp->problem);
  const core::StableMatcher matcher;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(exp->problem, prefs));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StableMatching)->Arg(2)->Arg(4)->Arg(8)->Complexity();

void BM_OptimalRoute(benchmark::State& state) {
  auto testbed = make_large_tree();
  const core::PolicyOptimizer optimizer(testbed->topology);
  net::LoadTracker load(testbed->topology);
  const NodeId src[] = {testbed->cluster.servers().front().node};
  const NodeId dst[] = {testbed->cluster.servers().back().node};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optimizer.optimal_route(src, dst, FlowId{0}, 1.0, 1.0, load));
  }
}
BENCHMARK(BM_OptimalRoute);

void BM_KShortestPaths(benchmark::State& state) {
  auto testbed = make_testbed_tree();
  const NodeId a = testbed->cluster.servers().front().node;
  const NodeId b = testbed->cluster.servers().back().node;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        testbed->topology.k_shortest_paths(a, b, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_KShortestPaths)->Arg(1)->Arg(4)->Arg(16);

void BM_MaxMinFair(benchmark::State& state) {
  auto testbed = make_testbed_tree();
  const auto servers = testbed->cluster.servers();
  std::vector<net::FlowDemand> demands;
  Rng rng(5);
  for (int i = 0; i < state.range(0); ++i) {
    const auto a = rng.uniform_index(servers.size());
    auto b = rng.uniform_index(servers.size());
    if (b == a) b = (b + 1) % servers.size();
    demands.push_back(net::FlowDemand{
        FlowId{static_cast<FlowId::value_type>(i)},
        testbed->topology.shortest_path(servers[a].node, servers[b].node), 0.0});
  }
  const net::MaxMinFairAllocator allocator(testbed->topology);
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(demands));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxMinFair)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_LocalSearchRefine(benchmark::State& state) {
  auto testbed = make_testbed_tree();
  auto exp = make_static_experiment(*testbed, workload_for(2), 13);
  core::HitScheduler hit;
  Rng rng(13);
  const sched::Assignment seed = hit.schedule(exp->problem, rng);
  core::LocalSearchConfig config;
  config.max_evaluations = 200;
  const core::LocalSearchSolver solver(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.refine(exp->problem, seed));
  }
}
BENCHMARK(BM_LocalSearchRefine);

void BM_MkpExact(benchmark::State& state) {
  core::MkpInstance instance;
  Rng rng(14);
  for (int i = 0; i < state.range(0); ++i) {
    instance.profit.push_back(rng.uniform(1, 10));
    instance.weight.push_back(rng.uniform(1, 5));
  }
  instance.capacity = {10, 10, 10};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_mkp_exact(instance));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MkpExact)->Arg(4)->Arg(8)->Arg(10)->Complexity();

void BM_PacketSim(benchmark::State& state) {
  auto testbed = make_testbed_tree();
  const auto servers = testbed->cluster.servers();
  std::vector<sim::PacketFlowSpec> specs;
  Rng rng(15);
  for (int i = 0; i < state.range(0); ++i) {
    const auto a = rng.uniform_index(servers.size());
    auto b = rng.uniform_index(servers.size());
    if (b == a) b = (b + 1) % servers.size();
    specs.push_back(sim::PacketFlowSpec{
        FlowId(static_cast<FlowId::value_type>(i)),
        testbed->topology.shortest_path(servers[a].node, servers[b].node),
        0.032, 0.0});
  }
  const sim::PacketSimulator sim(testbed->topology);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(specs));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PacketSim)->Arg(8)->Arg(32)->Arg(64)->Complexity();

// --- obs overhead mode -----------------------------------------------------
//
// `bench_micro --obs-overhead` skips google-benchmark and instead times the
// obs fast paths directly: each ambient-context op (count / gauge_set /
// observe / HIT_PROF_SCOPE) with no context bound (the shipping default — a
// thread-local read plus a branch) versus with a live Registry + Profiler
// bound.  Rows land in BENCH_obs_overhead.json so successive PRs can diff
// the per-op cost; the committed snapshot lives in bench/results/.

/// Median-of-5 ns/op for `iters` calls of `op`.  Medianing repeats filters
/// scheduler noise without needing google-benchmark's adaptive machinery.
template <typename Op>
double time_op_ns(std::size_t iters, Op&& op) {
  std::vector<double> runs;
  for (int rep = 0; rep < 5; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) op();
    const auto stop = std::chrono::steady_clock::now();
    runs.push_back(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
        static_cast<double>(iters));
  }
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

int run_obs_overhead() {
  constexpr std::size_t kIters = 1'000'000;
  struct OpCase {
    const char* name;
    void (*body)();
  };
  const OpCase cases[] = {
      {"count", [] { obs::count("bench.counter"); }},
      {"gauge_set", [] { obs::gauge_set("bench.gauge", 42.0); }},
      {"observe", [] { obs::observe("bench.histogram", 0.5); }},
      {"prof_scope", [] { HIT_PROF_SCOPE("bench.scope"); }},
  };

  JsonResults results("obs_overhead");
  std::printf("%-12s %14s %14s %12s\n", "op", "off_ns_per_op", "on_ns_per_op",
              "delta_ns");
  for (const OpCase& c : cases) {
    // Off: whatever ambient context the harness left (BenchObserver only
    // binds one when HIT_BENCH_METRICS asks for it); force the null context
    // so "off" is the shipping default.
    double off_ns = 0.0;
    {
      const obs::Context null_ctx;
      const obs::Bind bind(null_ctx);
      off_ns = time_op_ns(kIters, c.body);
    }
    double on_ns = 0.0;
    {
      obs::Registry registry;
      obs::Profiler profiler;
      const obs::Context ctx(&registry, nullptr, &profiler);
      const obs::Bind bind(ctx);
      on_ns = time_op_ns(kIters, c.body);
    }
    const double delta = on_ns - off_ns;
    std::printf("%-12s %14.2f %14.2f %12.2f\n", c.name, off_ns, on_ns, delta);
    results.add({{"op", std::string(c.name)},
                 {"iters", static_cast<std::int64_t>(kIters)},
                 {"off_ns_per_op", off_ns},
                 {"on_ns_per_op", on_ns},
                 {"delta_ns_per_op", delta}});
  }
  return results.write() ? 0 : 1;
}

}  // namespace

// BENCHMARK_MAIN(), plus the run manifest as google-benchmark context keys
// (they land in the console header and the --benchmark_format=json output)
// and an optional HIT_BENCH_METRICS metrics dump at exit.
int main(int argc, char** argv) {
  bench::RunManifest& manifest = bench::BenchObserver::instance().manifest();
  manifest.bench = "bench_micro";
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--obs-overhead") return run_obs_overhead();
  }
  benchmark::AddCustomContext("bench", manifest.bench);
  benchmark::AddCustomContext("build_type", manifest.build_type);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::BenchObserver::instance().dump_if_requested();
  return 0;
}
