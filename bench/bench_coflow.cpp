// Coflow scheduling comparison (extension experiment, not a paper figure).
//
// Groups each job wave's shuffle flows into a coflow (Varys-style) and
// compares completion times under per-flow fair sharing against FIFO, SEBF
// (smallest-effective-bottleneck-first) and priority inter-coflow orders
// with MADD rate allocation, on an oversubscribed tree where the contest
// for uplinks makes ordering matter.  CCT is recorded for every arm — the
// fair-sharing baseline groups flows post-hoc — so the columns compare
// like with like.
//
//   bench_coflow            full sweep (3 replicas, 10 jobs)
//   bench_coflow --smoke    CI mode: 1 replica, 4 jobs, same output shape
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "coflow/coflow.h"
#include "harness.h"
#include "stats/export.h"

int main(int argc, char** argv) {
  using namespace hit;
  using namespace hit::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::cerr << "bench_coflow: unknown option '" << argv[i]
                << "' (only --smoke)\n";
      return 2;
    }
  }

  print_header(smoke ? "Coflow orders: CCT on a 4:1 oversubscribed tree (smoke)"
                     : "Coflow orders: CCT on a 4:1 oversubscribed tree");

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = smoke ? 4 : 10;
  wconfig.max_maps_per_job = 16;
  wconfig.max_reduces_per_job = 6;
  wconfig.block_size_gb = 2.0;
  // A priority mix so the priority order has something to act on.
  wconfig.low_priority_fraction = 0.3;
  wconfig.high_priority_fraction = 0.2;

  topo::TreeConfig tree;
  tree.depth = 3;
  tree.fanout = 4;
  tree.redundancy = 2;
  tree.hosts_per_access = 4;
  tree.uplink_bandwidth_factor = 0.25;
  const auto testbed =
      std::make_unique<Testbed>(topo::make_tree(tree), kServerCapacity);

  const int replicas = smoke ? 1 : 3;

  struct Arm {
    const char* name;
    bool enabled;
    coflow::OrderPolicy order;
  };
  const Arm arms[] = {
      {"fair", false, coflow::OrderPolicy::Fifo},
      {"fifo", true, coflow::OrderPolicy::Fifo},
      {"sebf", true, coflow::OrderPolicy::Sebf},
      {"priority", true, coflow::OrderPolicy::Priority},
  };

  obs::Registry& reg = BenchObserver::instance().registry();

  double fair_cct = 0.0;
  stats::Table table({"order", "mean CCT (s)", "p95 CCT (s)", "mean JCT (s)",
                      "CCT vs fair"});
  std::ostringstream csv_buffer;
  stats::CsvWriter csv(csv_buffer,
                       {"order", "mean_cct_s", "p95_cct_s", "mean_jct_s"});
  for (const Arm& arm : arms) {
    sim::SimConfig sconfig;
    sconfig.bandwidth_scale = 0.1;
    sconfig.coflow.enabled = arm.enabled;
    sconfig.coflow.order = arm.order;

    core::HitConfig hconfig;
    hconfig.coflow = sconfig.coflow;
    core::HitScheduler scheduler(hconfig);

    std::vector<double> ccts;
    stats::RunningSummary jct;
    for (int r = 0; r < replicas; ++r) {
      const sim::SimResult result =
          run_replica(*testbed, scheduler, wconfig, sconfig, 7100 + r);
      for (double v : result.coflow_completion_times()) ccts.push_back(v);
      for (double v : result.job_completion_times()) jct.add(v);
    }
    stats::RunningSummary cct;
    for (double v : ccts) cct.add(v);
    const double p95 = ccts.empty() ? 0.0 : stats::percentile(ccts, 95.0);
    if (std::strcmp(arm.name, "fair") == 0) fair_cct = cct.mean();
    table.add_row({arm.name, stats::Table::num(cct.mean()),
                   stats::Table::num(p95), stats::Table::num(jct.mean()),
                   stats::Table::pct(improvement(fair_cct, cct.mean()))});
    csv.row({std::string(arm.name), cct.mean(), p95, jct.mean()});
    reg.gauge(obs::Registry::tagged("bench.coflow.mean_cct_s",
                                    {{"order", arm.name}}))
        .set(cct.mean());
    reg.gauge(obs::Registry::tagged("bench.coflow.p95_cct_s",
                                    {{"order", arm.name}}))
        .set(p95);
  }
  std::cout << table.render();
  std::cout << "\ncsv:\n" << csv_buffer.str();
  std::cout << "\nSEBF approximates shortest-coflow-first: small shuffles "
               "drain ahead of elephants instead of sharing every contested "
               "uplink with them, so mean CCT drops versus both FIFO and "
               "per-flow fair sharing; the elephants finish no later because "
               "MADD keeps the bottlenecks saturated.\n";
  return 0;
}
