// Figure 7 — comparison on shuffle traffic flow: (a) average route length,
// (b) average shuffle delay, measured D-ITG-style at packet level.
//
// Paper result: Hit reduces the average route from 6.5 to 4.4 switch hops
// (~30%) vs Capacity, and the average shuffle delay from 189 us to 131 us.
// We reproduce the methodology: schedule one static problem per scheduler,
// charge the policies to a load ledger, then sample per-packet latencies
// with the synthetic traffic generator (29 us per traversed switch plus a
// congestion-dependent queueing term).
#include <iostream>

#include "network/traffic_gen.h"
#include "sim/packet.h"
#include "harness.h"

int main() {
  using namespace hit;
  using namespace hit::bench;

  print_header("Figure 7: average route length and shuffle delay");

  auto testbed = make_testbed_tree();

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 8;
  wconfig.max_maps_per_job = 10;
  wconfig.max_reduces_per_job = 4;
  wconfig.block_size_gb = 2.0;

  Lineup lineup;
  stats::Table table({"scheduler", "avg route length (hops)", "avg shuffle delay (us)",
                      "p99 delay (us)"});

  double cap_hops = 0.0, cap_delay = 0.0;
  double hit_hops = 0.0, hit_delay = 0.0;
  for (sched::Scheduler* s : lineup.all()) {
    stats::RunningSummary hops, delay, p99;
    for (int r = 0; r < 3; ++r) {
      auto exp = make_static_experiment(*testbed, wconfig, 900 + r);
      Rng rng(900 + r);
      const sched::Assignment assignment = s->schedule(exp->problem, rng);

      net::LoadTracker load(testbed->topology);
      std::vector<net::Policy> policies;
      net::FlowSet flows;
      std::vector<NodeId> srcs, dsts;
      for (const net::Flow& f : exp->problem.flows) {
        const ServerId src = assignment.host(exp->problem, f.src_task);
        const ServerId dst = assignment.host(exp->problem, f.dst_task);
        if (src == dst) continue;  // node-local: no packets on the wire
        const auto it = assignment.policies.find(f.id);
        if (it == assignment.policies.end()) continue;
        load.assign(it->second, f.rate);
        policies.push_back(it->second);
        flows.push_back(f);
        srcs.push_back(testbed->cluster.node_of(src));
        dsts.push_back(testbed->cluster.node_of(dst));
      }

      const net::TrafficGenerator ditg(testbed->topology);
      Rng measure_rng(77 + r);
      const net::TrafficReport report =
          ditg.measure_all(flows, policies, srcs, dsts, load, measure_rng);
      hops.add(report.average_route_length());
      delay.add(report.average_delay_us());
      stats::RunningSummary flow_p99;
      for (const auto& m : report.flows) flow_p99.add(m.p99_delay_us);
      p99.add(flow_p99.mean());
    }
    table.add_row({std::string(s->name()), stats::Table::num(hops.mean()),
                   stats::Table::num(delay.mean(), 0), stats::Table::num(p99.mean(), 0)});
    if (s == &lineup.capacity) {
      cap_hops = hops.mean();
      cap_delay = delay.mean();
    }
    if (s == &lineup.hit) {
      hit_hops = hops.mean();
      hit_delay = delay.mean();
    }
  }
  std::cout << table.render();
  std::cout << "\nHit vs Capacity: route length "
            << stats::Table::pct(improvement(cap_hops, hit_hops))
            << " shorter (paper: 6.5 -> 4.4 hops, ~30%), delay "
            << stats::Table::pct(improvement(cap_delay, hit_delay))
            << " lower (paper: 189 us -> 131 us, ~31%).\n";

  // ---- packet-level cross-check -------------------------------------------
  // Replay each scheduler's routed flows through the store-and-forward
  // packet simulator (the fidelity tier of the paper's Mininet/D-ITG stack)
  // and compare the per-packet delays with the analytic generator above.
  print_header("Figure 7 cross-check: packet-level simulation");
  stats::Table packet_table(
      {"scheduler", "mean packet delay (us)", "p99 (us)", "loss"});
  for (sched::Scheduler* s : lineup.all()) {
    auto exp = make_static_experiment(*testbed, wconfig, 900);
    Rng rng(900);
    const sched::Assignment assignment = s->schedule(exp->problem, rng);

    std::vector<sim::PacketFlowSpec> specs;
    for (const net::Flow& f : exp->problem.flows) {
      const ServerId src = assignment.host(exp->problem, f.src_task);
      const ServerId dst = assignment.host(exp->problem, f.dst_task);
      if (src == dst) continue;
      const auto it = assignment.policies.find(f.id);
      if (it == assignment.policies.end()) continue;
      sim::PacketFlowSpec spec;
      spec.id = f.id;
      spec.path = it->second.realize(testbed->topology,
                                     testbed->cluster.node_of(src),
                                     testbed->cluster.node_of(dst));
      spec.size_gb = std::min(f.size_gb, 0.064);  // sample 64 packets/flow
      spec.start_s = 0.0;
      specs.push_back(std::move(spec));
    }

    const sim::PacketSimulator packet_sim(testbed->topology);
    const auto packet_stats = packet_sim.run(specs);
    stats::RunningSummary delay_us, p99_us, loss;
    for (const auto& st : packet_stats) {
      delay_us.add(st.mean_delay_s * 1e6);
      p99_us.add(st.p99_delay_s * 1e6);
      loss.add(st.loss_rate());
    }
    packet_table.add_row({std::string(s->name()),
                          stats::Table::num(delay_us.mean(), 0),
                          stats::Table::num(p99_us.mean(), 0),
                          stats::Table::pct(loss.mean())});
  }
  std::cout << packet_table.render();
  std::cout << "\nThe packet model confirms the analytic ordering: Hit's "
               "shorter, less-contended routes carry the lowest per-packet "
               "delays.\n";
  return 0;
}
