// Extension experiment (not a paper figure): failure-domain blast radius.
//
// A rack fault under the lost-output model (DESIGN.md §17) destroys every
// completed map output its servers held, and lineage recovery re-executes
// exactly the upstream maps whose outputs still feed pending shuffles.  This
// bench measures two promises of the subsystem:
//
//   (a) Blast-radius containment — the domain-spread soft constraint
//       (HitConfig::spread_weight) trades shuffle locality for fewer
//       same-rack map pairs per job, so a rack fault destroys fewer of any
//       one job's outputs.  Batch arms run the hit scheduler locality-only
//       (weight 0) and spread-aware over the same scripted rack faults;
//       mean post-fault makespan degradation (faulted minus clean makespan,
//       averaged over a sweep of victim racks) must not be worse with
//       spread, and the faults must actually destroy outputs.
//
//   (b) Lineage recovery completeness — in online mode, with a mid-run rack
//       crash, certain output loss, and (in the second arm) a controller
//       crash bridged by a warm standby, every admitted job must still
//       complete: nothing shed, no unreconciled divergence at restart, and
//       the whole run bit-deterministic (each arm executes twice and every
//       counter must agree).
//
// Violations print VERDICT FAIL to stderr and exit nonzero.  Writes
// BENCH_blast.json (manifest-stamped; see harness.h) for the committed
// snapshot in bench/results/.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "sim/domains.h"
#include "sim/online.h"

namespace {

using namespace hit;

constexpr std::uint64_t kSeed = 9300;
constexpr double kEps = 1e-9;

// Batch arm (a): one scripted rack fault per victim, mid-map wave.
constexpr double kFaultAt = 30.0;
constexpr double kRepairAfter = 60.0;
constexpr double kSpreadWeight = 4.0;
constexpr std::size_t kVictimRacks = 8;

// Online arm (b): two staggered rack crashes + certain output loss,
// optionally a controller blackout bridged by the warm standby.
constexpr std::size_t kOnlineRackA = 6;
constexpr double kOnlineFaultAtA = 50.0;
constexpr std::size_t kOnlineRackB = 2;
constexpr double kOnlineFaultAtB = 70.0;
constexpr double kOnlineRepair = 100.0;
constexpr double kCrashAt = 60.0;
constexpr double kBlackout = 80.0;
constexpr double kSnapshotEvery = 50.0;
constexpr double kTakeover = 15.0;

struct OnlineOutcome {
  double makespan = 0.0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  sim::FaultDomainStats domains;
  sim::ControlPlaneStats control;

  [[nodiscard]] bool operator==(const OnlineOutcome& o) const {
    return makespan == o.makespan && completed == o.completed &&
           shed == o.shed && domains.domain_faults == o.domains.domain_faults &&
           domains.outputs_lost == o.domains.outputs_lost &&
           domains.maps_reexecuted_lineage == o.domains.maps_reexecuted_lineage &&
           domains.stage_reopens == o.domains.stage_reopens &&
           domains.partition_parks == o.domains.partition_parks &&
           control.reconcile_violations == o.control.reconcile_violations &&
           control.reconcile_repairs == o.control.reconcile_repairs;
  }
};

}  // namespace

int main() {
  using namespace hit::bench;

  print_header("Failure-domain blast radius: spread placement and lineage recovery");

  const auto testbed = make_testbed_tree();
  const sim::DomainSet domains = sim::DomainSet::derive(testbed->topology);

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 12;
  wconfig.max_maps_per_job = 10;
  wconfig.max_reduces_per_job = 4;
  wconfig.block_size_gb = 2.0;

  JsonResults json("blast");
  obs::Registry& reg = BenchObserver::instance().registry();
  bool ok = true;

  // ---- (a) batch: spread-aware vs locality-only placement under rack faults
  const auto run_batch = [&](double spread_weight,
                             const sim::FailureDomain* victim) {
    core::HitConfig hconfig;
    hconfig.spread_weight = spread_weight;
    core::HitScheduler hit(hconfig);
    sim::SimConfig sconfig;
    sconfig.bandwidth_scale = 0.05;
    if (victim != nullptr) {
      sconfig.faults.fail_domain(*victim, kFaultAt, kRepairAfter);
      sconfig.domains.enabled = true;
      sconfig.domains.output_loss_prob = 1.0;
    }
    return run_replica(*testbed, hit, wconfig, sconfig, kSeed);
  };

  stats::Table batch_table({"arm", "clean makespan (s)", "mean faulted (s)",
                            "mean degradation (s)", "outputs lost",
                            "lineage re-executions"});
  double degradation_by_arm[2] = {0.0, 0.0};
  const double weights[2] = {0.0, kSpreadWeight};
  const char* arm_names[2] = {"locality-only", "spread"};
  for (int arm = 0; arm < 2; ++arm) {
    const double clean = run_batch(weights[arm], nullptr).makespan;
    double faulted_sum = 0.0;
    std::size_t outputs_lost = 0, reexecuted = 0;
    std::size_t victims = 0;
    for (std::size_t r = 0; r < kVictimRacks; ++r) {
      const sim::FailureDomain* victim = domains.find(sim::DomainKind::Rack, r);
      if (victim == nullptr) break;
      ++victims;
      const sim::SimResult result = run_batch(weights[arm], victim);
      faulted_sum += result.makespan;
      outputs_lost += result.fault_domains.outputs_lost;
      reexecuted += result.fault_domains.maps_reexecuted_lineage;
    }
    if (victims == 0) {
      std::cerr << "VERDICT FAIL batch: topology has no rack domains\n";
      ok = false;
      break;
    }
    const double mean_faulted = faulted_sum / static_cast<double>(victims);
    const double degradation = mean_faulted - clean;
    degradation_by_arm[arm] = degradation;
    batch_table.add_row({arm_names[arm], stats::Table::num(clean),
                         stats::Table::num(mean_faulted),
                         stats::Table::num(degradation),
                         std::to_string(outputs_lost),
                         std::to_string(reexecuted)});
    json.add({{"mode", std::string("batch")},
              {"arm", std::string(arm_names[arm])},
              {"spread_weight", weights[arm]},
              {"clean_makespan_s", clean},
              {"mean_faulted_makespan_s", mean_faulted},
              {"mean_degradation_s", degradation},
              {"outputs_lost", static_cast<std::int64_t>(outputs_lost)},
              {"lineage_reexecutions", static_cast<std::int64_t>(reexecuted)}});
    const std::string g = std::string("bench.blast.batch.") + arm_names[arm];
    reg.gauge(g + ".degradation_s").set(degradation);
    reg.gauge(g + ".outputs_lost").set(static_cast<double>(outputs_lost));

    // The fault sweep must actually exercise the lost-output path, or the
    // comparison is vacuous.
    if (outputs_lost == 0) {
      std::cerr << "VERDICT FAIL batch/" << arm_names[arm]
                << ": rack faults destroyed no map outputs\n";
      ok = false;
    }
    if (reexecuted == 0) {
      std::cerr << "VERDICT FAIL batch/" << arm_names[arm]
                << ": no lineage re-executions across the rack sweep\n";
      ok = false;
    }
  }
  // Gate (a): spread-aware placement bounds the post-rack-fault makespan
  // degradation at or below the locality-only scheduler's.
  if (degradation_by_arm[1] > degradation_by_arm[0] + kEps) {
    std::cerr << "VERDICT FAIL batch: spread degradation "
              << degradation_by_arm[1] << "s exceeds locality-only "
              << degradation_by_arm[0] << "s\n";
    ok = false;
  }
  std::cout << batch_table.render() << "\n";

  // ---- (b) online: lineage recovery completes every job, deterministically
  struct Arm {
    std::string name;
    bool crash = false;
  };
  const std::vector<Arm> arms = {{"lineage", false},
                                 {"lineage-standby-crash", true}};

  const auto run_online = [&](const Arm& arm) {
    core::HitScheduler hit;
    BenchObserver& obs = BenchObserver::instance();
    obs.manifest().scheduler = std::string(hit.name());
    obs.manifest().seed = kSeed;

    Rng rng(kSeed);
    mr::IdAllocator ids;
    const mr::WorkloadGenerator generator(wconfig);
    const auto jobs = generator.generate(ids, rng);

    sim::SimConfig sconfig;
    sconfig.bandwidth_scale = 0.05;
    sconfig.observer = &obs.context();
    if (const sim::FailureDomain* victim =
            domains.find(sim::DomainKind::Rack, kOnlineRackA)) {
      sconfig.faults.fail_domain(*victim, kOnlineFaultAtA, kOnlineRepair);
    }
    if (const sim::FailureDomain* victim =
            domains.find(sim::DomainKind::Rack, kOnlineRackB)) {
      sconfig.faults.fail_domain(*victim, kOnlineFaultAtB, kOnlineRepair);
    }
    sconfig.domains.enabled = true;
    sconfig.domains.output_loss_prob = 1.0;
    if (arm.crash) {
      sconfig.faults.crash_controller(kCrashAt, kBlackout);
      sconfig.recovery.snapshot_every = kSnapshotEvery;
      sconfig.recovery.standby = true;
      sconfig.recovery.standby_takeover_s = kTakeover;
    }
    obs.manifest().config = describe_config(wconfig, sconfig) +
                            " mode=online arm=" + arm.name;

    sim::OnlineConfig oconfig;
    oconfig.arrival_rate = 0.2;
    oconfig.sim = sconfig;
    const sim::OnlineSimulator sim(testbed->cluster, oconfig);
    const sim::OnlineResult result = sim.run(hit, jobs, ids, rng);

    OnlineOutcome out;
    out.makespan = result.makespan;
    out.completed = result.jobs.size();
    out.shed = result.overload.jobs_shed;
    out.domains = result.fault_domains;
    out.control = result.control;
    return out;
  };

  stats::Table online_table({"arm", "makespan (s)", "completed", "shed",
                             "outputs lost", "lineage re-executions",
                             "partition parks", "unreconciled"});
  for (const Arm& arm : arms) {
    const OnlineOutcome first = run_online(arm);
    const OnlineOutcome second = run_online(arm);
    if (!(first == second)) {
      std::cerr << "VERDICT FAIL online/" << arm.name
                << ": two identical runs disagree (makespan " << first.makespan
                << " vs " << second.makespan << ")\n";
      ok = false;
    }
    const std::size_t unreconciled =
        first.control.reconcile_violations - first.control.reconcile_repairs;
    online_table.add_row(
        {arm.name, stats::Table::num(first.makespan),
         std::to_string(first.completed), std::to_string(first.shed),
         std::to_string(first.domains.outputs_lost),
         std::to_string(first.domains.maps_reexecuted_lineage),
         std::to_string(first.domains.partition_parks),
         std::to_string(unreconciled)});
    json.add({{"mode", std::string("online")},
              {"arm", arm.name},
              {"makespan_s", first.makespan},
              {"completed", static_cast<std::int64_t>(first.completed)},
              {"shed", static_cast<std::int64_t>(first.shed)},
              {"outputs_lost",
               static_cast<std::int64_t>(first.domains.outputs_lost)},
              {"lineage_reexecutions",
               static_cast<std::int64_t>(first.domains.maps_reexecuted_lineage)},
              {"partition_parks",
               static_cast<std::int64_t>(first.domains.partition_parks)},
              {"unreconciled", static_cast<std::int64_t>(unreconciled)}});
    const std::string g = "bench.blast.online." + arm.name;
    reg.gauge(g + ".makespan_s").set(first.makespan);
    reg.gauge(g + ".outputs_lost")
        .set(static_cast<double>(first.domains.outputs_lost));
    reg.gauge(g + ".lineage_reexecutions")
        .set(static_cast<double>(first.domains.maps_reexecuted_lineage));

    // Gate (b): every admitted job completes despite the lost outputs, and
    // a crash restart leaves nothing unreconciled.
    if (first.shed != 0 || first.completed != wconfig.num_jobs) {
      std::cerr << "VERDICT FAIL online/" << arm.name << ": "
                << first.completed << "/" << wconfig.num_jobs
                << " jobs completed, " << first.shed << " shed\n";
      ok = false;
    }
    if (first.domains.outputs_lost == 0) {
      std::cerr << "VERDICT FAIL online/" << arm.name
                << ": the rack fault destroyed no map outputs\n";
      ok = false;
    }
    if (unreconciled != 0) {
      std::cerr << "VERDICT FAIL online/" << arm.name << ": " << unreconciled
                << " unreconciled divergences after restart\n";
      ok = false;
    }
  }
  std::cout << online_table.render();

  if (!json.write()) ok = false;
  std::cout << "\nSpread-aware placement pays a little shuffle locality to "
               "cap how many of one job's map outputs a single rack fault "
               "can destroy; lineage recovery then re-executes exactly the "
               "lost producers, so every admitted job still finishes — even "
               "through a controller blackout bridged by the warm standby.\n";
  std::cout << (ok ? "VERDICT PASS\n" : "VERDICT FAIL\n");
  return ok ? 0 : 1;
}
