// Figure 1 — traffic volume during the shuffle phase, by workload class.
//
// Paper result: for shuffle-heavy jobs the shuffle volume contributes > 75%
// of total communication traffic and remote-map traffic < 20%; light jobs
// invert the picture.  Measured under a locality-aware (delay-scheduling)
// baseline, which is what stock Hadoop map placement approximates.
#include <iostream>

#include "harness.h"

int main() {
  using namespace hit;
  using namespace hit::bench;

  print_header("Figure 1: shuffle vs remote-map traffic volume per class");

  auto testbed = make_testbed_tree();
  sched::CapacityScheduler capacity_sched;

  stats::Table table({"class", "shuffle (GB)", "remote map (GB)", "shuffle share",
                      "remote-map share"});
  for (mr::JobClass cls : {mr::JobClass::ShuffleHeavy, mr::JobClass::ShuffleMedium,
                           mr::JobClass::ShuffleLight}) {
    mr::WorkloadConfig wconfig;
    wconfig.num_jobs = 6;
    wconfig.max_maps_per_job = 16;
    wconfig.max_reduces_per_job = 6;
    wconfig.block_size_gb = 2.0;
    wconfig.only_class = cls;

    // Single-replica splits: locality misses happen at realistic Hadoop
    // rates once the cluster fills up (3-way replication on an idle cluster
    // would make every map node-local and hide the remote-map bar).
    sim::SimConfig sconfig;
    sconfig.hdfs_replication = 1;

    double shuffle_gb = 0.0;
    double remote_gb = 0.0;
    for (int r = 0; r < 3; ++r) {
      const sim::SimResult result =
          run_replica(*testbed, capacity_sched, wconfig, sconfig, 500 + r);
      shuffle_gb += result.total_shuffle_gb;
      remote_gb += result.total_remote_map_gb;
    }
    const double total = shuffle_gb + remote_gb;
    table.add_row({std::string(mr::job_class_name(cls)),
                   stats::Table::num(shuffle_gb, 1), stats::Table::num(remote_gb, 1),
                   stats::Table::pct(total > 0 ? shuffle_gb / total : 0),
                   stats::Table::pct(total > 0 ? remote_gb / total : 0)});
  }
  std::cout << table.render();
  std::cout << "\nPaper: shuffle-heavy jobs move >75% of their traffic in the "
               "shuffle; remote map input is <20%.\n";
  return 0;
}
