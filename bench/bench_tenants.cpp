// Extension experiment (not a paper figure): multi-tenant adaptive admission.
//
// Sweeps the Poisson arrival rate across the capacity knee under an
// adversarial tenant mix (tenant 0 floods, tenants 1-2 trickle) and compares
// hand-tuned static drop-oldest queue caps against the AIMD controller with
// per-tenant DRF caps.  Reports, per arm: completions, shed rate, p95
// queueing, Jain's fairness index over weight-normalized completions, and —
// for the aimd arm — the converged admission limit.
//
// The run is also a regression gate: the aimd arm must sit on the static
// arms' shed-rate/wait trade-off frontier — no hand-tuned cap may beat it on
// both metrics at once (within a small tolerance: aimd must shed no more
// than the best static arm at comparable wait, and wait no longer than the
// best static arm at comparable shed rate) — and under the adversarial mix
// its Jain index must be at least the static arms' average.  Violations
// exit nonzero.
//
// Writes BENCH_tenants.json (manifest-stamped rows; see harness.h) so future
// PRs can diff the numbers.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "sched/admission/tenant.h"
#include "sim/online.h"

namespace {

struct ArmResult {
  std::string name;
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::vector<double> waits;
  std::vector<double> tenant_completed;  // weight-normalized, accumulated
  double final_limit_sum = 0.0;
  std::size_t runs = 0;

  [[nodiscard]] double shed_rate() const {
    const double offered = static_cast<double>(completed + shed);
    return offered > 0.0 ? static_cast<double>(shed) / offered : 0.0;
  }
  [[nodiscard]] double p95_wait() const {
    return hit::stats::percentile(waits, 95.0);
  }
  [[nodiscard]] double jain() const {
    return hit::sched::admission::jain_index(tenant_completed);
  }
};

}  // namespace

int main() {
  using namespace hit;
  using namespace hit::bench;
  namespace adm = hit::sched::admission;

  print_header("Multi-tenant admission: static caps vs AIMD + DRF");

  // Same 8-host/16-slot testbed as the overload sweep: jobs of up to 14
  // containers run nearly alone, so super-capacity rates genuinely overload.
  topo::TreeConfig tree;
  tree.depth = 2;
  tree.fanout = 4;
  tree.redundancy = 2;
  tree.hosts_per_access = 2;
  const Testbed testbed(topo::make_tree(tree), kServerCapacity);

  // Adversarial mix: tenant 0 submits ~8x the jobs of each small tenant but
  // is entitled to an equal share.
  const std::vector<double> kMix = {8.0, 1.0, 1.0};
  const std::vector<double> kEntitlements = {1.0, 1.0, 1.0};

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 18;
  wconfig.max_maps_per_job = 10;
  wconfig.max_reduces_per_job = 4;
  wconfig.block_size_gb = 2.0;
  wconfig.num_tenants = kMix.size();
  wconfig.tenant_weights = kMix;

  // Arms: hand-tuned static drop-oldest caps vs the adaptive controller.
  const std::vector<std::size_t> kStaticCaps = {2, 8, 32};
  constexpr int kReplicas = 3;
  constexpr double kSlack = 1.05;  // aimd may trail the best arm by 5%

  const auto tenant_roster = [&] {
    std::vector<adm::TenantSpec> roster;
    for (std::size_t t = 0; t < kEntitlements.size(); ++t) {
      roster.push_back({"tenant-" + std::to_string(t), kEntitlements[t]});
    }
    return roster;
  };

  stats::Table table({"arrival rate (jobs/s)", "arm", "completed", "shed",
                      "shed rate", "p95 queueing (s)", "jain", "aimd limit"});
  JsonResults json("tenants");
  bool ok = true;

  for (double rate : {0.02, 0.2, 1.0}) {
    std::vector<ArmResult> arms;

    const auto run_arm = [&](const std::string& name,
                             const sim::AdmissionConfig& admission) {
      ArmResult arm;
      arm.name = name;
      arm.tenant_completed.assign(kMix.size(), 0.0);
      for (int r = 0; r < kReplicas; ++r) {
        sched::CapacityScheduler capacity;
        BenchObserver& obs = BenchObserver::instance();
        obs.manifest().scheduler = std::string(capacity.name());
        obs.manifest().seed = static_cast<std::uint64_t>(7100 + r);

        Rng rng(7100 + r);
        mr::IdAllocator ids;
        const mr::WorkloadGenerator generator(wconfig);
        const auto jobs = generator.generate(ids, rng);

        sim::OnlineConfig oconfig;
        oconfig.arrival_rate = rate;
        oconfig.sim.bandwidth_scale = 0.05;
        oconfig.sim.observer = &obs.context();
        oconfig.admission = admission;
        obs.manifest().config =
            describe_config(wconfig, oconfig.sim) + " admission=" +
            sim::admission_policy_name(admission.policy) + " arm=" + name;

        const sim::OnlineSimulator sim(testbed.cluster, oconfig);
        const sim::OnlineResult result = sim.run(capacity, jobs, ids, rng);

        arm.completed += result.jobs.size();
        arm.shed += result.overload.jobs_shed;
        for (double w : result.queueing_delays()) arm.waits.push_back(w);
        for (const adm::TenantStats& ts : result.tenants) {
          arm.tenant_completed[ts.tenant] +=
              static_cast<double>(ts.completed) / ts.weight;
        }
        arm.final_limit_sum += result.aimd.final_limit;
        ++arm.runs;
      }
      arms.push_back(std::move(arm));
    };

    for (std::size_t cap : kStaticCaps) {
      sim::AdmissionConfig admission;
      admission.policy = sim::AdmissionPolicy::DropOldest;
      admission.max_queue = cap;
      admission.tenants = tenant_roster();  // accounting only: static cap
      run_arm("static-" + std::to_string(cap), admission);
    }
    {
      sim::AdmissionConfig admission;
      admission.policy = sim::AdmissionPolicy::Aimd;
      admission.tenants = tenant_roster();
      admission.aimd.epoch_s = 30.0;
      admission.aimd.start_limit = 8.0;
      admission.aimd.wait_threshold_s = 240.0;
      run_arm("aimd", admission);
    }

    const ArmResult& aimd = arms.back();

    for (const ArmResult& arm : arms) {
      const bool is_aimd = arm.name == "aimd";
      table.add_row(
          {stats::Table::num(rate, 2), arm.name, std::to_string(arm.completed),
           std::to_string(arm.shed),
           stats::Table::num(arm.shed_rate() * 100.0, 1) + "%",
           stats::Table::num(arm.p95_wait()), stats::Table::num(arm.jain(), 3),
           is_aimd ? stats::Table::num(arm.final_limit_sum /
                                       static_cast<double>(arm.runs), 1)
                   : "-"});
      json.add({{"rate", rate},
                {"arm", arm.name},
                {"completed", static_cast<std::int64_t>(arm.completed)},
                {"shed", static_cast<std::int64_t>(arm.shed)},
                {"shed_rate", arm.shed_rate()},
                {"p95_wait_s", arm.p95_wait()},
                {"jain", arm.jain()},
                {"aimd_final_limit",
                 is_aimd ? arm.final_limit_sum / static_cast<double>(arm.runs)
                         : 0.0}});
    }

    // Verdicts: the adaptive arm must sit on the static trade-off frontier.
    // A giant cap never sheds a finite workload (it just queues it), so
    // "best static shed rate" alone is vacuous — each metric is compared
    // against the best static arm that is no worse on the *other* metric.
    double frontier_shed = 1e300;  // best shed among arms at comparable wait
    double frontier_p95 = 1e300;   // best wait among arms at comparable shed
    double jain_sum = 0.0;
    for (std::size_t i = 0; i + 1 < arms.size(); ++i) {
      if (arms[i].p95_wait() <= aimd.p95_wait() * kSlack + 1e-9) {
        frontier_shed = std::min(frontier_shed, arms[i].shed_rate());
      }
      if (arms[i].shed_rate() <= aimd.shed_rate() * kSlack + 1e-9) {
        frontier_p95 = std::min(frontier_p95, arms[i].p95_wait());
      }
      jain_sum += arms[i].jain();
    }
    const double jain_mean = jain_sum / static_cast<double>(arms.size() - 1);
    if (frontier_shed < 1e300 &&
        aimd.shed_rate() > frontier_shed * kSlack + 1e-9) {
      std::cerr << "VERDICT FAIL at rate " << rate << ": aimd shed rate "
                << aimd.shed_rate() << " > best comparable-wait static "
                << frontier_shed << "\n";
      ok = false;
    }
    if (frontier_p95 < 1e300 && aimd.p95_wait() > frontier_p95 * kSlack + 1e-9) {
      std::cerr << "VERDICT FAIL at rate " << rate << ": aimd p95 wait "
                << aimd.p95_wait() << " > best comparable-shed static "
                << frontier_p95 << "\n";
      ok = false;
    }
    if (aimd.jain() + 1e-9 < jain_mean) {
      std::cerr << "VERDICT FAIL at rate " << rate << ": aimd jain "
                << aimd.jain() << " < static mean " << jain_mean << "\n";
      ok = false;
    }
  }

  std::cout << table.render();
  if (!json.write()) ok = false;
  std::cout << "\nThe AIMD controller learns the sustainable queue limit per "
               "epoch and the DRF caps keep the flooding tenant from "
               "starving the small ones; static caps must pick one point on "
               "the shed-rate/wait trade-off for all tenants at once.\n";
  std::cout << (ok ? "VERDICT PASS\n" : "VERDICT FAIL\n");
  return ok ? 0 : 1;
}
