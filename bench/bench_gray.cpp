// Gray-failure resilience (extension experiment, not a paper figure).
//
// Degrades a handful of access switches to a fraction of their nominal
// capacity mid-run — the classic "gray failure": every health check passes,
// the element routes packets, but crossing flows crawl — and compares three
// online arms on the 4:1 oversubscribed tree:
//
//   clean       no degradations, health monitor on (false-positive control)
//   degraded    degradations, monitor only (detection without reaction)
//   quarantine  degradations + quarantine: suspect switches are cost-
//               penalized in placement/policy optimization and probed back
//
// The run fails (exit 1) unless the monitor detects >= 90% of the injected
// degradations, flags nothing on the clean arm, and quarantine lands a
// lower total shuffle cost than detection-only on the degraded network.
//
//   bench_gray            full sweep (3 replicas)
//   bench_gray --smoke    CI mode: 1 replica, same output shape
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness.h"
#include "sim/online.h"
#include "stats/export.h"

int main(int argc, char** argv) {
  using namespace hit;
  using namespace hit::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::cerr << "bench_gray: unknown option '" << argv[i]
                << "' (only --smoke)\n";
      return 2;
    }
  }

  print_header(smoke ? "Gray failures: quarantine on a 4:1 tree (smoke)"
                     : "Gray failures: quarantine on a 4:1 tree");

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = smoke ? 12 : 12;
  wconfig.max_maps_per_job = 10;
  wconfig.max_reduces_per_job = 4;
  wconfig.block_size_gb = 2.0;

  topo::TreeConfig tree;
  tree.depth = 3;
  tree.fanout = 4;
  tree.redundancy = 2;
  tree.hosts_per_access = 4;
  tree.uplink_bandwidth_factor = 0.25;
  const auto testbed =
      std::make_unique<Testbed>(topo::make_tree(tree), kServerCapacity);

  // The injected gray failures: a quarter of the racks lose 95% of their
  // access-switch capacity for most of the run.  Access switches have no
  // redundant twin, so only placement (not rerouting) can escape.  One rack
  // per aggregation group, so every agg switch still carries healthy racks
  // and the monitor's max-fold can clear it.
  std::vector<NodeId> access;
  for (NodeId sw : testbed->topology.switches()) {
    if (testbed->topology.tier(sw) == topo::Tier::Access) access.push_back(sw);
  }
  std::vector<NodeId> degraded_switches;
  for (std::size_t i = 0; i < access.size(); i += tree.fanout) {
    degraded_switches.push_back(access[i]);
  }
  // Onset early: the point is that most jobs are *placed* while the rack is
  // crawling, so the quarantine arm's placement penalty has arrivals to steer.
  // The factor must undercut the rack's uplink bandwidth (2 x 4 GbE vs 32
  // units of switch capacity) or the fault never binds and nothing observable
  // happens — the definitional hazard of a gray failure.
  const double kFactor = 0.05;
  const double kOnset = 5.0;
  const double kDuration = 4000.0;

  struct Arm {
    const char* name;
    bool degraded;
    bool quarantine;
  };
  const Arm arms[] = {
      {"clean", false, false},
      {"degraded", true, false},
      {"quarantine", true, true},
  };

  const int replicas = smoke ? 1 : 3;
  obs::Registry& reg = BenchObserver::instance().registry();

  stats::Table table({"arm", "mean JCT (s)", "shuffle cost (GB*T)",
                      "detected", "false pos", "mean TTD (s)", "quarantines",
                      "quarantine (s)"});
  std::ostringstream csv_buffer;
  stats::CsvWriter csv(csv_buffer,
                       {"arm", "mean_jct_s", "shuffle_cost_gbt", "degradations",
                        "detections", "false_positives", "quarantines"});

  double degraded_cost = 0.0, quarantine_cost = 0.0;
  std::size_t clean_flags = 0, clean_quarantines = 0;
  std::size_t injected = 0, detected = 0;
  for (const Arm& arm : arms) {
    core::HitScheduler scheduler;
    stats::RunningSummary jct;
    double cost = 0.0, ttd = 0.0, quarantine_s = 0.0;
    sim::GrayStats total;
    for (int r = 0; r < replicas; ++r) {
      const std::uint64_t seed = 7300 + static_cast<std::uint64_t>(r);
      Rng rng(seed);
      mr::IdAllocator ids;
      const mr::WorkloadGenerator generator(wconfig);
      const auto jobs = generator.generate(ids, rng);

      sim::OnlineConfig oconfig;
      // Enough arrival pressure that jobs overlap: a crawling rack then holds
      // its containers long enough to fragment later placements, which is the
      // congestion quarantine is meant to dodge.
      oconfig.arrival_rate = 0.1;
      oconfig.sim.bandwidth_scale = 0.1;
      oconfig.sim.gray.monitor = true;
      oconfig.sim.gray.quarantine = arm.quarantine;
      // A longer probe streak damps quarantine churn: healthy-but-slow links
      // adjacent to a crawling switch otherwise cycle through reinstate and
      // re-flag, and every cycle re-runs the soft-reroute pass.
      oconfig.sim.gray.probe_successes = 4;
      // Soft penalty: 2x is enough to tip marginal placements off a crawling
      // rack; heavier factors evict whole jobs and trade away more map
      // locality than the congestion they dodge is worth.
      oconfig.sim.gray.penalty = 2.0;
      if (arm.degraded) {
        for (NodeId sw : degraded_switches) {
          oconfig.sim.faults.degrade_switch(sw, kFactor, kOnset, kDuration);
        }
      }
      BenchObserver::instance().manifest().scheduler =
          std::string(scheduler.name());
      BenchObserver::instance().manifest().seed = seed;
      const sim::OnlineSimulator sim(testbed->cluster, oconfig);
      const sim::OnlineResult result = sim.run(scheduler, jobs, ids, rng);

      for (double v : result.completion_times()) jct.add(v);
      cost += result.total_shuffle_cost;
      const sim::GrayStats& g = result.gray;
      total.degradations += g.degradations;
      total.detections += g.detections;
      total.false_positives += g.false_positives;
      total.quarantines += g.quarantines;
      ttd += g.mean_time_to_detect;
      quarantine_s += g.quarantine_seconds;
    }
    const double mean_ttd =
        total.detections > 0 ? ttd / static_cast<double>(replicas) : 0.0;
    table.add_row({arm.name, stats::Table::num(jct.mean()),
                   stats::Table::num(cost, 1),
                   stats::Table::num(static_cast<double>(total.detections), 0),
                   stats::Table::num(static_cast<double>(total.false_positives), 0),
                   stats::Table::num(mean_ttd, 1),
                   stats::Table::num(static_cast<double>(total.quarantines), 0),
                   stats::Table::num(quarantine_s, 1)});
    csv.row({std::string(arm.name), jct.mean(), cost,
             static_cast<std::int64_t>(total.degradations),
             static_cast<std::int64_t>(total.detections),
             static_cast<std::int64_t>(total.false_positives),
             static_cast<std::int64_t>(total.quarantines)});
    reg.gauge(obs::Registry::tagged("bench.gray.shuffle_cost_gbt",
                                    {{"arm", arm.name}}))
        .set(cost);
    reg.gauge(obs::Registry::tagged("bench.gray.detections",
                                    {{"arm", arm.name}}))
        .set(static_cast<double>(total.detections));

    if (std::strcmp(arm.name, "clean") == 0) {
      clean_flags = total.detections + total.false_positives;
      clean_quarantines = total.quarantines;
    } else if (std::strcmp(arm.name, "degraded") == 0) {
      degraded_cost = cost;
      injected = total.degradations;
      detected = total.detections;
    } else {
      quarantine_cost = cost;
    }
  }
  std::cout << table.render();
  std::cout << "\ncsv:\n" << csv_buffer.str();

  bool ok = true;
  if (clean_flags != 0 || clean_quarantines != 0) {
    std::cerr << "bench_gray: FAIL — clean run flagged " << clean_flags
              << " elements (" << clean_quarantines << " quarantined); "
              << "expected zero false positives\n";
    ok = false;
  }
  if (detected * 10 < injected * 9) {
    std::cerr << "bench_gray: FAIL — detected " << detected << "/" << injected
              << " injected degradations (< 90%)\n";
    ok = false;
  }
  if (quarantine_cost >= degraded_cost) {
    std::cerr << "bench_gray: FAIL — quarantine cost " << quarantine_cost
              << " >= detection-only cost " << degraded_cost << "\n";
    ok = false;
  }
  if (ok) {
    std::cout << "\nQuarantine steers new placements off the crawling racks: "
                 "the cost penalty on suspect access switches makes the joint "
                 "optimizer pack jobs into healthy racks, so shuffles keep "
                 "their locality instead of queueing behind a gray uplink.\n";
  }
  return ok ? 0 : 1;
}
