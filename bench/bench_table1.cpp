// Table 1 — benchmark characterization and workload mix.
//
// Prints the per-benchmark profile (class, Table 1 share, shuffle
// selectivity) and the realized mix over a large sample, verifying the
// generator draws jobs with the paper's proportions.
#include <iostream>
#include <map>

#include "harness.h"

int main() {
  using namespace hit;
  using namespace hit::bench;

  print_header("Table 1: benchmark characterization");

  stats::Table profile_table(
      {"benchmark", "class", "mix %", "shuffle selectivity", "typical input (GB)"});
  for (const mr::BenchmarkProfile& p : mr::puma_profiles()) {
    profile_table.add_row({std::string(p.name), std::string(mr::job_class_name(p.cls)),
                           stats::Table::num(p.mix_percent, 0),
                           stats::Table::num(p.shuffle_selectivity),
                           stats::Table::num(p.typical_input_gb, 0)});
  }
  std::cout << profile_table.render();

  // Realized mix over 5000 sampled jobs.
  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 5000;
  const mr::WorkloadGenerator generator(wconfig);
  Rng rng(7);
  mr::IdAllocator ids;
  const std::vector<mr::Job> jobs = generator.generate(ids, rng);

  std::map<std::string, int> counts;
  std::map<std::string, int> class_counts;
  for (const mr::Job& j : jobs) {
    ++counts[j.benchmark];
    ++class_counts[std::string(mr::job_class_name(j.cls))];
  }

  std::cout << "\n-- realized mix over " << jobs.size() << " sampled jobs --\n";
  stats::Table mix({"benchmark", "expected %", "realized %"});
  for (const mr::BenchmarkProfile& p : mr::puma_profiles()) {
    const double realized =
        100.0 * counts[std::string(p.name)] / static_cast<double>(jobs.size());
    mix.add_row({std::string(p.name), stats::Table::num(p.mix_percent, 0),
                 stats::Table::num(realized, 1)});
  }
  std::cout << mix.render();

  std::cout << "\n-- class shares (paper: heavy 40%, medium 20%, light 40%) --\n";
  for (const auto& [cls, n] : class_counts) {
    std::cout << "  " << cls << ": "
              << stats::Table::num(100.0 * n / static_cast<double>(jobs.size()), 1)
              << "%\n";
  }
  return 0;
}
