// Figure 10 — sensitivity to the number of concurrent jobs.
//
// Paper result: Hit's overall shuffle-cost reduction over Capacity grows
// quickly from 3 to ~12 jobs, then flattens as the network saturates; PNA's
// reduction stays roughly flat around 15%.
#include <iostream>

#include "harness.h"

int main() {
  using namespace hit;
  using namespace hit::bench;

  print_header("Figure 10: cost reduction vs number of jobs");

  auto testbed = make_testbed_tree();
  Lineup lineup;

  sim::SimConfig sconfig;
  sconfig.bandwidth_scale = 0.1;

  stats::Table table({"jobs", "Hit shuffle-time reduction", "PNA shuffle-time reduction"});
  for (std::size_t jobs : {3u, 6u, 9u, 12u, 15u, 18u}) {
    mr::WorkloadConfig wconfig;
    wconfig.num_jobs = jobs;
    wconfig.max_maps_per_job = 10;
    wconfig.max_reduces_per_job = 4;
    wconfig.block_size_gb = 2.0;

    // Contention-sensitive cost: the mean shuffle-flow transfer time.  With
    // few jobs the network is idle and every scheduler's flows run at link
    // speed; adding jobs builds congestion, which is where topology-aware
    // placement pays ("parallel running more jobs may provide more
    // opportunities to optimize the network traffic", §7.4).
    stats::RunningSummary hit_red, pna_red;
    for (int r = 0; r < 5; ++r) {
      const double cap =
          run_replica(*testbed, lineup.capacity, wconfig, sconfig, 1500 + r)
              .shuffle_finish_time;
      const double pna =
          run_replica(*testbed, lineup.pna, wconfig, sconfig, 1500 + r)
              .shuffle_finish_time;
      const double hit =
          run_replica(*testbed, lineup.hit, wconfig, sconfig, 1500 + r)
              .shuffle_finish_time;
      hit_red.add(improvement(cap, hit));
      pna_red.add(improvement(cap, pna));
    }
    table.add_row({std::to_string(jobs), stats::Table::pct(hit_red.mean()),
                   stats::Table::pct(pna_red.mean())});
  }
  std::cout << table.render();
  std::cout << "\nPaper: Hit's reduction climbs with job count and plateaus past "
               "~12 jobs; PNA stays near 15%.\n";
  return 0;
}
