// DAG workflow engine: critical-path coflow priority vs plain SEBF
// (extension experiment, not a paper figure; DESIGN.md §16).
//
// Runs a mix of DAG workflows (aggregation trees, chains, diamonds) through
// the online simulator on a 4:1 oversubscribed tree, under per-flow fair
// sharing, SEBF, and OrderPolicy::CriticalPath.  With overlapping workflows
// the inter-stage shuffles contend for the same uplinks; SEBF drains small
// shuffles first regardless of whose DAG they unblock, while CriticalPath
// lets the stage with the longest remaining chain cut the line.  The verdict
// requires the CP order to beat SEBF on mean DAG makespan — the whole point
// of coupling the workflow scheduler's criticality signal into the network
// policy layer.
//
//   bench_workflow            full sweep (3 replicas)
//   bench_workflow --smoke    CI mode: 1 replica, same output shape
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "coflow/coflow.h"
#include "harness.h"
#include "sim/online.h"
#include "stats/export.h"
#include "workflow/runner.h"

int main(int argc, char** argv) {
  using namespace hit;
  using namespace hit::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::cerr << "bench_workflow: unknown option '" << argv[i]
                << "' (only --smoke)\n";
      return 2;
    }
  }

  print_header(smoke
                   ? "DAG workflows: CP coflow priority vs SEBF (smoke)"
                   : "DAG workflows: CP coflow priority vs SEBF");

  // The bench_coflow testbed: 4:1 oversubscribed uplinks so inter-coflow
  // order decides who waits.
  topo::TreeConfig tree;
  tree.depth = 3;
  tree.fanout = 4;
  tree.redundancy = 2;
  tree.hosts_per_access = 4;
  tree.uplink_bandwidth_factor = 0.25;
  const auto testbed =
      std::make_unique<Testbed>(topo::make_tree(tree), kServerCapacity);

  // A shape mix where criticality and shuffle size disagree: the chain's
  // spine stages carry long remaining paths, the diamonds contribute many
  // small concurrent shuffles SEBF happily serves first.
  std::vector<workflow::Workflow> wfs;
  wfs.push_back(workflow::make_tree(2, 3));
  wfs.push_back(workflow::make_chain(5));
  wfs.push_back(workflow::make_diamond(4));
  if (!smoke) {
    wfs.push_back(workflow::make_chain(4));
    wfs.push_back(workflow::make_diamond(3));
  }

  mr::WorkloadConfig wconfig;  // stage jobs come from make_job, not generate()
  const mr::WorkloadGenerator generator(wconfig);
  workflow::SchedConfig wf_sched;  // no hedging: a pure ordering comparison

  const int replicas = smoke ? 1 : 3;

  struct Arm {
    const char* name;
    bool enabled;
    coflow::OrderPolicy order;
  };
  const Arm arms[] = {
      {"fair", false, coflow::OrderPolicy::Fifo},
      {"sebf", true, coflow::OrderPolicy::Sebf},
      {"cp", true, coflow::OrderPolicy::CriticalPath},
  };

  obs::Registry& reg = BenchObserver::instance().registry();
  JsonResults json("workflow");

  double fair_makespan = 0.0;
  double sebf_makespan = 0.0;
  double cp_makespan = 0.0;
  stats::Table table({"order", "mean makespan (s)", "mean stage wait (s)",
                      "mean CCT (s)", "stages done", "vs fair"});
  std::ostringstream csv_buffer;
  stats::CsvWriter csv(csv_buffer, {"order", "mean_makespan_s",
                                    "mean_stage_wait_s", "mean_cct_s",
                                    "stages_completed"});
  for (const Arm& arm : arms) {
    sim::SimConfig sconfig;
    sconfig.bandwidth_scale = 0.1;
    sconfig.coflow.enabled = arm.enabled;
    sconfig.coflow.order = arm.order;

    core::HitConfig hconfig;
    hconfig.coflow = sconfig.coflow;
    core::HitScheduler scheduler(hconfig);

    stats::RunningSummary makespan, wait, cct;
    std::size_t done = 0;
    for (int r = 0; r < replicas; ++r) {
      const std::uint64_t seed = 9100 + static_cast<std::uint64_t>(r);
      BenchObserver::instance().manifest().scheduler =
          std::string(scheduler.name());
      BenchObserver::instance().manifest().seed = seed;
      BenchObserver::instance().manifest().config =
          describe_config(wconfig, sconfig);
      Rng rng(seed);
      mr::IdAllocator ids;
      workflow::OnlinePlanBuild pb =
          workflow::build_online_plan(wfs, wf_sched, generator, ids);
      sim::OnlineConfig oconfig;
      oconfig.sim = sconfig;
      oconfig.sim.observer = &BenchObserver::instance().context();
      oconfig.arrival_rate = 0.05;  // workflow groups; overlap is the point
      oconfig.workflow = std::move(pb.plan);
      const sim::OnlineSimulator simulator(testbed->cluster, oconfig);
      const sim::OnlineResult result =
          simulator.run(scheduler, pb.jobs, ids, rng);
      const workflow::WorkflowStats ws =
          workflow::compute_online_stats(result, wfs);
      makespan.add(ws.makespan);
      wait.add(ws.mean_stage_wait);
      for (const sim::CoflowTiming& c : result.coflows) {
        cct.add(c.finish - c.release);
      }
      done += ws.stages_completed;
    }
    if (std::strcmp(arm.name, "fair") == 0) fair_makespan = makespan.mean();
    if (std::strcmp(arm.name, "sebf") == 0) sebf_makespan = makespan.mean();
    if (std::strcmp(arm.name, "cp") == 0) cp_makespan = makespan.mean();
    table.add_row({arm.name, stats::Table::num(makespan.mean()),
                   stats::Table::num(wait.mean()),
                   stats::Table::num(cct.mean()),
                   stats::Table::num(static_cast<double>(done), 0),
                   stats::Table::pct(improvement(fair_makespan,
                                                 makespan.mean()))});
    csv.row({std::string(arm.name), makespan.mean(), wait.mean(), cct.mean(),
             static_cast<std::int64_t>(done)});
    json.add({{"order", std::string(arm.name)},
              {"mean_makespan_s", makespan.mean()},
              {"mean_stage_wait_s", wait.mean()},
              {"mean_cct_s", cct.mean()},
              {"stages_completed", static_cast<std::int64_t>(done)}});
    reg.gauge(obs::Registry::tagged("bench.workflow.mean_makespan_s",
                                    {{"order", arm.name}}))
        .set(makespan.mean());
    reg.gauge(obs::Registry::tagged("bench.workflow.mean_stage_wait_s",
                                    {{"order", arm.name}}))
        .set(wait.mean());
  }
  std::cout << table.render();
  std::cout << "\ncsv:\n" << csv_buffer.str();
  json.write();

  bool ok = true;
  if (!(cp_makespan < sebf_makespan)) {
    std::cerr << "VERDICT FAIL: cp mean makespan " << cp_makespan
              << " does not beat sebf " << sebf_makespan << "\n";
    ok = false;
  }
  std::cout << "\nSEBF picks the smallest effective bottleneck next, which "
               "on a DAG workload keeps serving side-branch shuffles while "
               "the spine stage everyone downstream waits on queues behind "
               "them; ordering coflows by remaining critical path instead "
               "finishes the stages that unlock the most follow-on work "
               "first, so the DAG makespan drops even when per-coflow CCT "
               "does not.\n";
  std::cout << (ok ? "VERDICT PASS\n" : "VERDICT FAIL\n");
  return ok ? 0 : 1;
}
