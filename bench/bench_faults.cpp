// Extension experiment (not a paper figure): fault-tolerance degradation.
//
// The paper assumes a healthy fabric; this harness measures how gracefully
// each scheduler's plans survive an unhealthy one.  Sweeps the element MTBF
// from "never fails" down to "fails every few hundred seconds" (MTTR fixed),
// replays the same generated FaultPlan against every scheduler, and reports
// JCT / shuffle-cost degradation versus each scheduler's own zero-fault
// baseline plus the recovery work done (maps re-executed, flows rerouted or
// stalled).
#include <iostream>
#include <memory>

#include "harness.h"
#include "sim/faults.h"

int main() {
  using namespace hit;
  using namespace hit::bench;

  print_header("Fault-rate sweep (switch+server MTBF, MTTR = 120 s)");

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 10;
  wconfig.max_maps_per_job = 16;
  wconfig.max_reduces_per_job = 6;
  wconfig.block_size_gb = 2.0;

  sim::SimConfig base_config;
  base_config.bandwidth_scale = 0.1;

  const auto testbed = make_testbed_tree();
  Lineup lineup;
  const std::vector<std::pair<std::string, sched::Scheduler*>> arms = {
      {"Capacity", &lineup.capacity},
      {"PNA", &lineup.pna},
      {"Hit", &lineup.hit},
  };
  constexpr int kReplicas = 3;
  constexpr std::uint64_t kSeedBase = 7100;

  struct ArmResult {
    double jct = 0.0;
    double cost = 0.0;
    double maps_reexec = 0.0;
    double reroutes = 0.0;
    double stalls = 0.0;
  };
  auto run_arm = [&](sched::Scheduler& s, const sim::SimConfig& sconfig) {
    ArmResult out;
    stats::RunningSummary jct;
    for (int r = 0; r < kReplicas; ++r) {
      const sim::SimResult result =
          run_replica(*testbed, s, wconfig, sconfig, kSeedBase + r);
      for (double v : result.job_completion_times()) jct.add(v);
      out.cost += result.total_shuffle_cost / kReplicas;
      out.maps_reexec +=
          static_cast<double>(result.recovery.maps_reexecuted) / kReplicas;
      out.reroutes +=
          static_cast<double>(result.recovery.flows_rerouted) / kReplicas;
      out.stalls +=
          static_cast<double>(result.recovery.flows_stalled) / kReplicas;
    }
    out.jct = jct.mean();
    return out;
  };

  // Zero-fault baselines, one per scheduler.
  std::vector<ArmResult> baseline;
  double horizon = 0.0;
  for (const auto& [name, s] : arms) {
    baseline.push_back(run_arm(*s, base_config));
    horizon = std::max(horizon, baseline.back().jct);
  }
  horizon *= 4.0;  // cover the whole (slower) faulty runs

  stats::Table table({"MTBF (s)", "scheduler", "JCT", "JCT degr.",
                      "shuffle cost", "cost degr.", "maps re-run", "reroutes",
                      "stalls"});
  for (std::size_t a = 0; a < arms.size(); ++a) {
    const ArmResult& b = baseline[a];
    table.add_row({"inf", arms[a].first, stats::Table::num(b.jct), "-",
                   stats::Table::num(b.cost), "-", "0", "0", "0"});
  }
  for (double mtbf : {2000.0, 1000.0, 500.0, 250.0}) {
    sim::MtbfConfig mconfig;
    mconfig.horizon = horizon;
    mconfig.switch_mtbf = mtbf;
    mconfig.switch_mttr = 120.0;
    mconfig.server_mtbf = mtbf;
    mconfig.server_mttr = 120.0;
    sim::SimConfig sconfig = base_config;
    sconfig.faults =
        sim::FaultPlan::generate(testbed->topology, mconfig, /*seed=*/99);

    for (std::size_t a = 0; a < arms.size(); ++a) {
      const ArmResult r = run_arm(*arms[a].second, sconfig);
      const ArmResult& b = baseline[a];
      table.add_row({stats::Table::num(mtbf, 0), arms[a].first,
                     stats::Table::num(r.jct),
                     stats::Table::pct(-improvement(b.jct, r.jct)),
                     stats::Table::num(r.cost),
                     stats::Table::pct(-improvement(b.cost, r.cost)),
                     stats::Table::num(r.maps_reexec, 1),
                     stats::Table::num(r.reroutes, 1),
                     stats::Table::num(r.stalls, 1)});
    }
  }
  std::cout << table.render();
  std::cout << "\nAll arms replay the identical fault plan; the JCT gap under "
               "faults shows whose placements leave slack for recovery.  "
               "Rack-local plans (Hit) reroute less because fewer transfers "
               "cross the failed aggregation tiers.\n";
  return 0;
}
