// Figure 9 — sensitivity to network bandwidth (512-node simulation).
//
// Paper result: shuffle-throughput improvement of Hit and PNA over Capacity
// grows as links get scarcer; at 0.1 Mbps Hit gains ~48% while PNA trails,
// and the gap narrows as bandwidth becomes plentiful.
#include <iostream>

#include "harness.h"

int main() {
  using namespace hit;
  using namespace hit::bench;

  print_header("Figure 9: throughput improvement vs bandwidth (512 nodes)");

  auto testbed = make_large_tree();

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 6;
  wconfig.max_maps_per_job = 12;
  wconfig.max_reduces_per_job = 4;
  wconfig.block_size_gb = 2.0;

  Lineup lineup;
  stats::Table table({"bandwidth (Mbps)", "Hit improvement", "PNA improvement"});

  // The paper sweeps absolute link bandwidth from 0.1 to 60 Mbps; our links
  // are 16 rate units, so the scale maps Mbps onto the same dynamic range.
  for (double mbps : {0.1, 0.5, 1.0, 5.0, 15.0, 30.0, 60.0}) {
    sim::SimConfig sconfig;
    sconfig.bandwidth_scale = mbps / 16.0;
    sconfig.local_disk_bandwidth = 1.0;  // local shuffles still pay disk time

    // Job-level throughput (shuffled bytes over the workload makespan): the
    // map phase is bandwidth-independent, so gains saturate realistically
    // instead of exploding when links starve.
    auto throughput = [&](sched::Scheduler& s, int r) {
      const sim::SimResult result = run_replica(*testbed, s, wconfig, sconfig, 1200 + r);
      return result.makespan > 0.0 ? result.total_shuffle_gb / result.makespan : 0.0;
    };
    stats::RunningSummary hit_gain, pna_gain;
    for (int r = 0; r < 2; ++r) {
      const double cap = throughput(lineup.capacity, r);
      const double pna = throughput(lineup.pna, r);
      const double hit = throughput(lineup.hit, r);
      if (cap > 0.0) {
        hit_gain.add((hit - cap) / cap);
        pna_gain.add((pna - cap) / cap);
      }
    }
    table.add_row({stats::Table::num(mbps, 1), stats::Table::pct(hit_gain.mean()),
                   stats::Table::pct(pna_gain.mean())});
  }
  std::cout << table.render();
  std::cout << "\nPaper: Hit's gain reaches ~48% at 0.1 Mbps and shrinks with "
               "bandwidth; PNA trails Hit throughout because it assumes static "
               "costs and single-path routing.\n";
  return 0;
}
