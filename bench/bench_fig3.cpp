// Figure 3 / §2.3 case study — two jobs on the 5-node cluster.
//
// Maps M1 (job 1, 34 GB shuffle) and M2 (job 2, 10 GB shuffle) both run on
// S1.  The Capacity placement in the paper's logs put R1 on S4 and R2 on S2,
// for a shuffle delay cost of 112 GB·T; swapping them gives 64 GB·T (-42%).
// This bench reproduces both numbers exactly, then lets Hit-Scheduler and
// the brute-force oracle place the reduces; both land at or below the
// paper's improved placement (co-locating R1 and R2 on S2 is feasible under
// the two-tasks-per-server cap and costs 44 GB·T — see EXPERIMENTS.md).
#include <iostream>

#include "core/brute_force.h"
#include "core/taa.h"
#include "harness.h"

namespace {

using namespace hit;

struct CaseStudy {
  topo::Topology topology = topo::make_case_study_tree();
  cluster::Cluster cluster{topology, cluster::Resource{2.0, 8.0}};
  sched::Problem problem;
  net::FlowSet flows;
  TaskId m1{0}, r1{1}, m2{2}, r2{3};

  CaseStudy() {
    problem.topology = &topology;
    problem.cluster = &cluster;
    // Maps are already running on S1 (paper's observed log state).
    const ServerId s1 = cluster.server_at(topology.servers()[0]);
    problem.fixed[m1] = s1;
    problem.fixed[m2] = s1;
    problem.base_usage.assign(cluster.size(), cluster::Resource{});
    problem.base_usage[s1.index()] =
        cluster::kDefaultContainerDemand * 2.0;  // M1 + M2
    // Open: the two reduce tasks.
    problem.tasks.push_back(sched::TaskRef{r1, JobId{0}, cluster::TaskKind::Reduce,
                                           cluster::kDefaultContainerDemand, 34.0});
    problem.tasks.push_back(sched::TaskRef{r2, JobId{1}, cluster::TaskKind::Reduce,
                                           cluster::kDefaultContainerDemand, 10.0});
    // One shuffle flow per job.
    net::Flow f1{FlowId{0}, JobId{0}, m1, r1, 34.0, 34.0};
    net::Flow f2{FlowId{1}, JobId{1}, m2, r2, 10.0, 10.0};
    problem.flows = {f1, f2};
  }

  /// GB·T cost of placing the reduces explicitly.
  double cost_of(ServerId host_r1, ServerId host_r2) const {
    sched::Assignment a;
    a.placement[r1] = host_r1;
    a.placement[r2] = host_r2;
    sched::attach_shortest_policies(problem, a);
    core::CostConfig config;
    config.congestion_weight = 0.0;  // the case study uses the pure GB x hops metric
    return core::taa_objective(problem, a, config);
  }
};

}  // namespace

int main() {
  using namespace hit::bench;
  print_header("Figure 3 / case study: 5-node cluster, jobs of 34 GB and 10 GB shuffle");

  CaseStudy cs;
  const ServerId s2 = cs.cluster.servers()[1].id;
  const ServerId s4 = cs.cluster.servers()[3].id;

  const double original = cs.cost_of(s4, s2);  // paper's observed placement
  const double improved = cs.cost_of(s2, s4);  // paper's proposed placement

  hit::core::HitScheduler hit_scheduler;
  hit::Rng rng(1);
  const hit::sched::Assignment hit_assignment = cs.problem.valid()
      ? hit_scheduler.schedule(cs.problem, rng)
      : hit::sched::Assignment{};
  hit::core::CostConfig pure;
  pure.congestion_weight = 0.0;
  const double hit_cost = hit::core::taa_objective(cs.problem, hit_assignment, pure);

  const hit::core::BruteForceSolver oracle(pure);
  const auto optimal = oracle.solve(cs.problem);

  hit::stats::Table table({"placement", "shuffle delay cost (GB*T)", "vs original"});
  table.add_row({"paper: R1@S4, R2@S2 (observed)", hit::stats::Table::num(original, 0), "-"});
  table.add_row({"paper: R1@S2, R2@S4 (proposed)", hit::stats::Table::num(improved, 0),
                 hit::stats::Table::pct(improvement(original, improved))});
  table.add_row({"Hit-Scheduler", hit::stats::Table::num(hit_cost, 0),
                 hit::stats::Table::pct(improvement(original, hit_cost))});
  if (optimal) {
    table.add_row({"brute-force optimal", hit::stats::Table::num(optimal->cost, 0),
                   hit::stats::Table::pct(improvement(original, optimal->cost))});
  }
  std::cout << table.render();
  std::cout << "\nPaper: 112 GB*T -> 64 GB*T (~42% improvement).  Hit matches the "
               "oracle, which beats the paper's hand placement by co-locating "
               "both reduces behind S1's access switch.\n";
  return 0;
}
