// The paper's §6 offline/online split, end to end:
//
//   offline:  run a calibration batch, profile each application's shuffle
//             selectivity and rate from the observed logs;
//   online:   jobs arrive continuously; the scheduler's flow model is fed
//             the *profiled* shuffle volumes (a production scheduler never
//             knows the true intermediate sizes up front).
//
// Prints how close the profiled estimates get to the ground truth and the
// resulting online performance, with machine-readable CSV at the end.
//
//   $ ./examples/profile_and_schedule
#include <iostream>

#include "core/hit_scheduler.h"
#include "mapreduce/profiler.h"
#include "mapreduce/workload.h"
#include "sim/engine.h"
#include "sim/online.h"
#include "stats/export.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "topology/builders.h"

int main() {
  using namespace hit;

  topo::TreeConfig tree;
  tree.depth = 3;
  tree.fanout = 4;
  tree.redundancy = 2;
  tree.hosts_per_access = 4;
  const topo::Topology topology = topo::make_tree(tree);
  const cluster::Cluster cluster(topology, cluster::Resource{2.0, 8.0});

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 30;
  wconfig.max_maps_per_job = 8;
  wconfig.max_reduces_per_job = 3;
  wconfig.block_size_gb = 2.0;
  const mr::WorkloadGenerator generator(wconfig);

  // ---- offline phase: calibration batch + profiling ----------------------
  core::HitScheduler scheduler;
  mr::ShuffleProfiler profiler;
  {
    Rng rng(100);
    mr::IdAllocator ids;
    const auto batch = generator.generate(ids, rng);
    const sim::ClusterSimulator sim(cluster);
    const sim::SimResult result = sim.run(scheduler, batch, ids, rng);

    // "Logs": per-job observed input, shuffle bytes, shuffle duration.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      double shuffle_seconds = 0.0;
      for (const sim::FlowTiming& f : result.flows) {
        if (f.job == batch[i].id) {
          shuffle_seconds = std::max(shuffle_seconds, f.finish - f.release);
        }
      }
      profiler.observe(batch[i].benchmark, batch[i].input_gb, batch[i].shuffle_gb,
                       shuffle_seconds);
    }
  }

  std::cout << "Offline profiling (" << profiler.benchmarks_profiled()
            << " applications observed):\n";
  stats::Table ptable({"benchmark", "true selectivity", "profiled", "samples"});
  for (const mr::BenchmarkProfile& p : mr::puma_profiles()) {
    const auto e = profiler.estimate(p.name);
    if (!e) continue;
    ptable.add_row({std::string(p.name), stats::Table::num(p.shuffle_selectivity),
                    stats::Table::num(e->shuffle_selectivity),
                    std::to_string(e->samples)});
  }
  std::cout << ptable.render() << "\n";

  // ---- online phase: arrivals scheduled with profiled knowledge ----------
  Rng rng(200);
  mr::IdAllocator ids;
  std::vector<mr::Job> arrivals = generator.generate(ids, rng);
  // The scheduler sees *profiled* shuffle volumes, not ground truth
  // (benchmarks the calibration batch happened to miss keep their true
  // selectivity as the fallback).
  for (mr::Job& job : arrivals) {
    const double fallback = job.shuffle_selectivity();
    job.shuffle_gb =
        profiler.selectivity_or(job.benchmark, fallback) * job.input_gb;
  }

  sim::OnlineConfig oconfig;
  oconfig.arrival_rate = 0.1;
  oconfig.sim.bandwidth_scale = 0.05;
  const sim::OnlineSimulator online(cluster, oconfig);
  const sim::OnlineResult result = online.run(scheduler, arrivals, ids, rng);

  stats::RunningSummary jct, wait;
  for (double v : result.completion_times()) jct.add(v);
  for (double v : result.queueing_delays()) wait.add(v);
  std::cout << "Online phase: " << result.jobs.size() << " jobs, mean JCT "
            << stats::Table::num(jct.mean()) << " s (p-max "
            << stats::Table::num(jct.max()) << "), mean queueing "
            << stats::Table::num(wait.mean()) << " s\n\n";

  std::cout << "Per-job records (CSV):\n";
  stats::CsvWriter csv(std::cout, {"job", "benchmark", "class", "arrival",
                                   "queueing_s", "completion_s", "shuffle_gb"});
  for (const sim::OnlineJobRecord& j : result.jobs) {
    csv.row({std::int64_t{j.id.value()}, j.benchmark,
             std::string(mr::job_class_name(j.cls)), j.arrival, j.queueing_delay(),
             j.completion_time(), j.shuffle_gb});
  }
  return 0;
}
