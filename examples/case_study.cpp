// The paper's §2.3 case study, interactively: a 5-node cluster (one master,
// four slaves behind two access switches), one shuffle-heavy job (34 GB) and
// one shuffle-light job (10 GB), maps pinned to S1 as observed in the
// paper's logs.  Shows the shuffle-delay cost of every possible reduce
// placement, then lets Hit-Scheduler pick.
//
//   $ ./examples/case_study
#include <iostream>

#include "core/brute_force.h"
#include "core/hit_scheduler.h"
#include "core/taa.h"
#include "stats/table.h"
#include "topology/builders.h"

int main() {
  using namespace hit;

  const topo::Topology topology = topo::make_case_study_tree();
  const cluster::Cluster cluster(topology, cluster::Resource{2.0, 8.0});

  std::cout << "Cluster: " << cluster.size() << " slaves, "
            << topology.switches().size() << " switches.\n"
            << "Switch distances: S1<->S2 = 1, S1<->S4 = 3 (GB*T metric).\n\n";

  // Maps M1 (job 1) and M2 (job 2) already run on S1.
  const TaskId m1(100), m2(101), r1(0), r2(1);
  sched::Problem problem;
  problem.topology = &topology;
  problem.cluster = &cluster;
  problem.fixed[m1] = ServerId(0);
  problem.fixed[m2] = ServerId(0);
  problem.base_usage.assign(cluster.size(), cluster::Resource{});
  problem.base_usage[0] = cluster::kDefaultContainerDemand * 2.0;
  problem.tasks = {sched::TaskRef{r1, JobId(0), cluster::TaskKind::Reduce,
                                  cluster::kDefaultContainerDemand, 34.0},
                   sched::TaskRef{r2, JobId(1), cluster::TaskKind::Reduce,
                                  cluster::kDefaultContainerDemand, 10.0}};
  problem.flows = {net::Flow{FlowId(0), JobId(0), m1, r1, 34.0, 34.0},
                   net::Flow{FlowId(1), JobId(1), m2, r2, 10.0, 10.0}};

  core::CostConfig pure;
  pure.congestion_weight = 0.0;

  // Enumerate every feasible reduce placement.
  std::cout << "All feasible placements (R1 carries 34 GB, R2 carries 10 GB):\n";
  stats::Table table({"R1 host", "R2 host", "cost (GB*T)", "note"});
  for (const auto& s_r1 : cluster.servers()) {
    for (const auto& s_r2 : cluster.servers()) {
      sched::Assignment a;
      a.placement[r1] = s_r1.id;
      a.placement[r2] = s_r2.id;
      sched::UsageLedger ledger(problem);
      try {
        ledger.place(s_r1.id, cluster::kDefaultContainerDemand);
        ledger.place(s_r2.id, cluster::kDefaultContainerDemand);
      } catch (const std::logic_error&) {
        continue;  // over capacity (e.g. anything on the full S1)
      }
      sched::attach_shortest_policies(problem, a);
      const double cost = core::taa_objective(problem, a, pure);
      std::string note;
      if (s_r1.hostname == "S4" && s_r2.hostname == "S2") note = "paper: observed";
      if (s_r1.hostname == "S2" && s_r2.hostname == "S4") note = "paper: proposed";
      table.add_row({s_r1.hostname, s_r2.hostname, stats::Table::num(cost, 0), note});
    }
  }
  std::cout << table.render() << "\n";

  core::HitScheduler hit;
  Rng rng(1);
  const sched::Assignment a = hit.schedule(problem, rng);
  const double hit_cost = core::taa_objective(problem, a, pure);
  std::cout << "Hit-Scheduler places R1 on "
            << cluster.server(a.placement.at(r1)).hostname << ", R2 on "
            << cluster.server(a.placement.at(r2)).hostname << " -> "
            << stats::Table::num(hit_cost, 0) << " GB*T\n";

  const core::BruteForceSolver oracle(pure);
  if (const auto best = oracle.solve(problem)) {
    std::cout << "Brute-force optimum: " << stats::Table::num(best->cost, 0)
              << " GB*T";
    std::cout << (best->cost == hit_cost ? "  (Hit is optimal here)\n" : "\n");
  }
  std::cout << "\nPaper narrative: observed placement costs 112, proposed 64 "
               "(~42% better); the true optimum co-locates both reduces next "
               "to the maps' access switch.\n";
  return 0;
}
