// Operator drill: the cluster is offered more work than it can serve.
//
// Act 1 — admission control: a burst of jobs on a 16-slot cluster.  Under
// the strict default the run aborts with OverloadError; with deadline-shed
// admission the same burst completes, abandoning the queue tail with full
// accounting of what was shed and why.
//
// Act 2 — degradation ladder: the Hit scheduler runs the same overloaded
// arrival process with tight optimization budgets and a circuit breaker;
// each wave reports which ladder tier served it.
//
// Act 3 — network pressure: a switch saturates; the controller parks the
// lowest-priority flows crossing it until it cools, then re-admits them in
// priority order once capacity frees.
//
//   $ ./examples/overload_drill
#include <iostream>

#include "core/controller.h"
#include "core/hit_scheduler.h"
#include "mapreduce/workload.h"
#include "network/routing.h"
#include "sched/capacity_scheduler.h"
#include "sim/online.h"
#include "stats/table.h"
#include "topology/builders.h"
#include "util/rng.h"

int main() {
  using namespace hit;

  // 8 hosts x 2 slots: one big job nearly fills the cluster.
  topo::TreeConfig tree;
  tree.depth = 2;
  tree.fanout = 4;
  tree.redundancy = 2;
  tree.hosts_per_access = 2;
  const topo::Topology topology = topo::make_tree(tree);
  const cluster::Cluster cluster(topology, cluster::Resource{2.0, 8.0});

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 10;
  wconfig.max_maps_per_job = 10;
  wconfig.max_reduces_per_job = 4;
  wconfig.block_size_gb = 2.0;
  wconfig.low_priority_fraction = 0.3;  // sheddable background work

  auto make_jobs = [&](mr::IdAllocator& ids, Rng& rng) {
    return mr::WorkloadGenerator(wconfig).generate(ids, rng);
  };

  std::cout << "== Act 1: admission control under a burst ==\n";
  {
    sched::CapacityScheduler scheduler;
    sim::OnlineConfig strict;
    strict.arrival_rate = 50.0;  // near-simultaneous arrivals
    strict.max_queue_wait = 120.0;
    try {
      mr::IdAllocator ids;
      Rng rng(21);
      const auto jobs = make_jobs(ids, rng);
      (void)sim::OnlineSimulator(cluster, strict).run(scheduler, jobs, ids, rng);
      std::cout << "unexpected: the strict run survived the burst\n";
    } catch (const core::OverloadError& e) {
      std::cout << "strict (unbounded) policy aborts: " << e.what() << "\n";
    }

    sim::OnlineConfig shed = strict;
    shed.admission.policy = sim::AdmissionPolicy::DeadlineShed;
    mr::IdAllocator ids;
    Rng rng(21);
    const auto jobs = make_jobs(ids, rng);
    const sim::OnlineResult result =
        sim::OnlineSimulator(cluster, shed).run(scheduler, jobs, ids, rng);

    std::cout << "deadline-shed policy completes: " << result.jobs.size()
              << " jobs finished, " << result.overload.jobs_shed
              << " shed (peak queue depth " << result.overload.peak_queue_depth
              << ", " << result.overload.shed_gb << " GB of shuffle given up)\n";
    stats::Table table({"job", "priority", "waited (s)", "reason"});
    for (const auto& record : result.shed) {
      table.add_row({std::to_string(record.id.value()),
                     std::string(mr::priority_name(record.priority)),
                     stats::Table::num(record.waited()),
                     std::string(sim::shed_reason_name(record.reason))});
    }
    std::cout << table.render();
  }

  std::cout << "\n== Act 2: degradation ladder under the same burst ==\n";
  {
    core::HitConfig hconfig;
    hconfig.ladder.enabled = true;
    hconfig.ladder.route_budget = 500;  // tight: Dijkstra work is rationed
    hconfig.ladder.proposal_budget = 200;
    hconfig.ladder.breaker.enabled = true;
    hconfig.ladder.breaker.failure_threshold = 2;
    core::HitScheduler hit(hconfig);

    sim::OnlineConfig oconfig;
    oconfig.arrival_rate = 50.0;
    oconfig.max_queue_wait = 120.0;
    oconfig.admission.policy = sim::AdmissionPolicy::DeadlineShed;
    mr::IdAllocator ids;
    Rng rng(21);
    const auto jobs = make_jobs(ids, rng);
    const sim::OnlineResult result =
        sim::OnlineSimulator(cluster, oconfig).run(hit, jobs, ids, rng);

    const core::LadderStats& stats = hit.ladder_stats();
    std::cout << result.jobs.size() << " jobs finished, "
              << result.overload.jobs_shed << " shed.\nwaves served: full="
              << stats.served[0] << " preference-only=" << stats.served[1]
              << " locality-greedy=" << stats.served[2]
              << " random=" << stats.served[3]
              << "; budget exhaustions=" << stats.budget_exhaustions
              << ", breaker trips=" << stats.breaker.trips
              << ", breaker skips=" << stats.breaker_skips << "\n";
  }

  std::cout << "\n== Act 3: shedding network pressure ==\n";
  {
    core::ControllerConfig config;
    config.hot_threshold = 0.5;
    core::NetworkController controller(topology, config);
    const auto servers = topology.servers();

    // Three flows out of the same host: its access leg saturates.
    const std::uint8_t priorities[] = {2, 0, 1};
    for (unsigned i = 0; i < 3; ++i) {
      net::Flow f;
      f.id = FlowId(i);
      f.size_gb = 12.0;
      f.rate = 12.0;
      f.priority = priorities[i];
      controller.install(
          f, net::shortest_policy(topology, servers[0], servers[i + 1], f.id),
          servers[0], servers[i + 1]);
    }
    std::cout << controller.hot_switches().size()
              << " switch(es) over threshold; shedding...\n";
    const std::size_t parked = controller.shed_pressure();
    std::cout << "parked " << parked << " flow(s), lowest priority first:";
    for (FlowId id : controller.parked()) {
      std::cout << " flow" << id.value()
                << "(prio=" << int(priorities[id.value()]) << ")";
    }
    std::cout << "\n";
    controller.remove(FlowId(0));  // the high-priority flow finishes
    const std::size_t restored = controller.readmit_parked();
    std::cout << "after the high-priority flow finished, re-admitted "
              << restored << " flow(s); " << controller.parked_count()
              << " remain parked.\n";
    controller.audit();
  }

  std::cout << "\nOverload is absorbed by policy, not by crashing: shed what "
               "the deadline allows, degrade optimization before abandoning "
               "placement, and park the least important traffic first.\n";
  return 0;
}
