// Operator drill, in two acts.
//
// Act 1 — planned: a core switch must be drained for maintenance while
// shuffle traffic is in flight.  The controller absorbs its headroom and
// rebalances every movable flow off it.
//
// Act 2 — unplanned: the *other* core dies mid-shuffle with no warning.
// The controller evacuates crossing flows with bounded retry-and-backoff
// (parking whatever cannot be placed), and a simulated MapReduce run replays
// the same failure through the fault injector, printing the recovery
// metrics: maps killed and re-executed, transfers rerouted or stalled, and
// the cost of it all versus the fault-free run.
//
//   $ ./examples/failure_drill
#include <algorithm>
#include <iostream>

#include "core/controller.h"
#include "mapreduce/workload.h"
#include "network/routing.h"
#include "sched/capacity_scheduler.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "stats/table.h"
#include "topology/builders.h"
#include "util/rng.h"

int main() {
  using namespace hit;

  topo::TreeConfig tree;
  tree.depth = 2;
  tree.fanout = 8;
  tree.redundancy = 2;
  tree.hosts_per_access = 8;
  const topo::Topology topology = topo::make_tree(tree);
  const auto servers = topology.servers();

  core::ControllerConfig config;
  config.hot_threshold = 0.75;
  core::NetworkController controller(topology, config);

  // 48 cross-rack flows under ECMP routing.
  Rng rng(11);
  for (unsigned i = 0; i < 48; ++i) {
    const auto a = rng.uniform_index(servers.size());
    auto b = rng.uniform_index(servers.size());
    if (b == a) b = (b + 1) % servers.size();
    net::Flow f;
    f.id = FlowId(i);
    f.size_gb = rng.uniform(0.5, 2.0);
    f.rate = f.size_gb;
    controller.install(f, net::ecmp_policy(topology, servers[a], servers[b], f.id),
                       servers[a], servers[b]);
  }

  // Pick the busier core as the maintenance target.
  NodeId draining;
  for (NodeId w : topology.switches()) {
    if (topology.tier(w) != topo::Tier::Core) continue;
    if (!draining.valid() ||
        controller.load().load(w) > controller.load().load(draining)) {
      draining = w;
    }
  }
  auto flows_crossing = [&](NodeId w) {
    std::size_t n = 0;
    for (unsigned i = 0; i < 48; ++i) {
      if (!controller.installed(FlowId(i))) continue;
      const auto& list = controller.policy_of(FlowId(i)).list;
      n += std::count(list.begin(), list.end(), w) > 0 ? 1 : 0;
    }
    return n;
  };

  std::cout << "== Act 1: planned drain ==\n"
            << "Draining " << topology.info(draining).name << ": "
            << flows_crossing(draining) << " flows cross it, load "
            << controller.load().load(draining) << " / "
            << topology.switch_capacity(draining) << "\n";

  controller.drain(draining);
  const std::size_t rerouted = controller.rebalance();
  std::cout << "Rebalance rerouted " << rerouted << " flows; "
            << flows_crossing(draining) << " still cross the draining switch.\n";
  controller.undrain(draining);  // maintenance done

  // Act 2: an unplanned failure of another core, mid-shuffle.  No drain, no
  // warning — the controller must evacuate and re-admit on its own.
  NodeId dead;
  for (NodeId w : topology.switches()) {
    if (topology.tier(w) == topo::Tier::Core && w != draining) dead = w;
  }
  std::cout << "\n== Act 2: unplanned failure of " << topology.info(dead).name
            << " ==\n"
            << flows_crossing(dead) << " flows were crossing it.\n";
  const std::size_t evacuated = controller.fail(dead);
  std::cout << "fail(): " << evacuated << " flows rerouted (backoff-throttled "
            << "where needed), " << controller.parked_count()
            << " parked with no alive route.\n";
  controller.audit();  // throws if any active policy still crosses the corpse
  const std::size_t restored = controller.recover(dead);
  std::cout << "recover(): " << restored << " parked flows re-admitted; "
            << controller.parked_count() << " remain parked.\n";

  // The same failure replayed inside a MapReduce run: a fault plan kills a
  // server mid-map and the core mid-shuffle, and the simulator recovers.
  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 8;
  wconfig.max_maps_per_job = 12;
  wconfig.max_reduces_per_job = 4;
  wconfig.block_size_gb = 2.0;

  const cluster::Cluster cluster(topology, cluster::Resource{2.0, 8.0});
  sched::CapacityScheduler scheduler;

  auto simulate = [&](const sim::FaultPlan& plan) {
    Rng run_rng(42);
    mr::IdAllocator ids;
    const mr::WorkloadGenerator generator(wconfig);
    const auto jobs = generator.generate(ids, run_rng);
    sim::SimConfig sconfig;
    sconfig.bandwidth_scale = 0.1;
    sconfig.faults = plan;
    return sim::ClusterSimulator(cluster, sconfig).run(scheduler, jobs, ids, run_rng);
  };

  const sim::SimResult healthy = simulate({});

  // Kill a server early (mid-map) and the *popular* core mid-shuffle —
  // shortest-path policies concentrate on it, so transfers must detour.
  sim::FaultPlan plan;
  plan.fail_server(servers[0], healthy.makespan * 0.05,
                   /*repair_after=*/healthy.makespan * 0.5);
  plan.fail_switch(draining, healthy.shuffle_finish_time * 0.5,
                   /*repair_after=*/healthy.makespan * 0.4);
  const sim::SimResult drilled = simulate(plan);
  const sim::RecoveryStats& rec = drilled.recovery;

  std::cout << "\n== Simulated replay: recovery metrics ==\n";
  stats::Table table({"metric", "healthy", "under faults"});
  table.add_row({"makespan (s)", stats::Table::num(healthy.makespan),
                 stats::Table::num(drilled.makespan)});
  table.add_row({"shuffle cost (GB*hop)",
                 stats::Table::num(healthy.total_shuffle_cost),
                 stats::Table::num(drilled.total_shuffle_cost)});
  table.add_row({"maps killed / re-executed", "0 / 0",
                 std::to_string(rec.maps_killed) + " / " +
                     std::to_string(rec.maps_reexecuted)});
  table.add_row({"flows rerouted", "0", std::to_string(rec.flows_rerouted)});
  table.add_row({"flows stalled", "0", std::to_string(rec.flows_stalled)});
  table.add_row({"stall time (s)", "0", stats::Table::num(rec.stall_seconds)});
  table.add_row({"element downtime (s)", "0",
                 stats::Table::num(rec.unavailable_seconds)});
  std::cout << table.render();
  std::cout << "\nEvery killed map re-ran through the scheduler's "
               "subsequent-wave path and every surviving transfer finished on "
               "an alive route.\n";
  return 0;
}
