// Operator drill: a core switch must be drained for maintenance while
// shuffle traffic is in flight.
//
// Installs a flow population under ECMP, then drives the centralized
// controller: saturate the draining switch's headroom (so the optimizer
// treats it as unusable), rebalance, and verify no flow still crosses it.
// Ends with a Graphviz snippet showing one rerouted flow.
//
//   $ ./examples/failure_drill
#include <algorithm>
#include <iostream>

#include "core/controller.h"
#include "network/routing.h"
#include "stats/table.h"
#include "topology/builders.h"
#include "topology/dot.h"
#include "util/rng.h"

int main() {
  using namespace hit;

  topo::TreeConfig tree;
  tree.depth = 2;
  tree.fanout = 8;
  tree.redundancy = 2;
  tree.hosts_per_access = 8;
  const topo::Topology topology = topo::make_tree(tree);
  const auto servers = topology.servers();

  core::ControllerConfig config;
  config.hot_threshold = 0.75;
  core::NetworkController controller(topology, config);

  // 48 cross-rack flows under ECMP routing.
  Rng rng(11);
  for (unsigned i = 0; i < 48; ++i) {
    const auto a = rng.uniform_index(servers.size());
    auto b = rng.uniform_index(servers.size());
    if (b == a) b = (b + 1) % servers.size();
    net::Flow f;
    f.id = FlowId(i);
    f.size_gb = rng.uniform(0.5, 2.0);
    f.rate = f.size_gb;
    controller.install(f, net::ecmp_policy(topology, servers[a], servers[b], f.id),
                       servers[a], servers[b]);
  }

  // Pick the busier core as the maintenance target.
  NodeId draining;
  for (NodeId w : topology.switches()) {
    if (topology.tier(w) != topo::Tier::Core) continue;
    if (!draining.valid() ||
        controller.load().load(w) > controller.load().load(draining)) {
      draining = w;
    }
  }
  auto flows_crossing = [&](NodeId w) {
    std::size_t n = 0;
    for (unsigned i = 0; i < 48; ++i) {
      const auto& list = controller.policy_of(FlowId(i)).list;
      n += std::count(list.begin(), list.end(), w) > 0 ? 1 : 0;
    }
    return n;
  };

  std::cout << "Draining " << topology.info(draining).name << ": "
            << flows_crossing(draining) << " flows cross it, load "
            << controller.load().load(draining) << " / "
            << topology.switch_capacity(draining) << "\n";

  // Drain the switch: the controller absorbs its headroom and treats it as
  // hot, so rebalancing moves every movable flow off it.
  controller.drain(draining);
  const std::size_t rerouted = controller.rebalance();
  std::cout << "Rebalance rerouted " << rerouted << " flows; "
            << flows_crossing(draining) << " still cross the draining switch.\n";

  stats::Table table({"core switch", "load", "capacity"});
  for (NodeId w : topology.switches()) {
    if (topology.tier(w) != topo::Tier::Core) continue;
    table.add_row({topology.info(w).name,
                   stats::Table::num(controller.load().load(w), 1),
                   stats::Table::num(topology.switch_capacity(w), 1)});
  }
  std::cout << "\n" << table.render();

  // Show one surviving flow's route as DOT (switch layer only).
  topo::DotOptions dot;
  dot.include_servers = false;
  dot.graph_name = "after-drain";
  const std::string rendered = topo::to_dot(topology, dot);
  std::cout << "\nGraphviz snippet (switch layer):\n"
            << rendered.substr(0, 400) << "...\n";
  return 0;
}
