// Quickstart: build a hierarchical cluster, generate a Table-1 workload,
// schedule it with three schedulers, and compare shuffle cost and job
// completion time.
//
//   $ ./examples/quickstart [seed]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "core/hit_scheduler.h"
#include "mapreduce/workload.h"
#include "sched/capacity_scheduler.h"
#include "sched/pna_scheduler.h"
#include "sim/engine.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "topology/builders.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace hit;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // The paper's Mininet testbed: tree of 64 hosts behind 10 switches.
  topo::TreeConfig tree;
  tree.depth = 2;
  tree.fanout = 8;
  tree.redundancy = 2;
  tree.hosts_per_access = 8;
  const topo::Topology topology = topo::make_tree(tree);
  const cluster::Cluster cluster(topology, cluster::Resource{2.0, 8.0});

  std::cout << "Cluster: " << cluster.size() << " servers, "
            << topology.switches().size() << " switches ("
            << topo::family_name(topology.family()) << ")\n";

  // Eight jobs drawn from the Table 1 benchmark mix.
  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = 8;
  wconfig.max_maps_per_job = 24;
  wconfig.max_reduces_per_job = 8;
  mr::WorkloadGenerator generator(wconfig);

  core::HitScheduler hit;
  sched::CapacityScheduler capacity;
  sched::PnaScheduler pna;
  std::vector<sched::Scheduler*> schedulers{&capacity, &pna, &hit};

  stats::Table table({"scheduler", "mean JCT", "makespan", "shuffle cost (GB*T)",
                      "avg route hops"});
  for (sched::Scheduler* s : schedulers) {
    // Same seed => identical jobs and HDFS layout for every scheduler.
    Rng rng(seed);
    mr::IdAllocator ids;
    const std::vector<mr::Job> jobs = generator.generate(ids, rng);

    sim::SimConfig sconfig;
    sconfig.bandwidth_scale = 0.05;  // multi-tenant congestion
    sim::ClusterSimulator simulator(cluster, sconfig);
    const sim::SimResult result = simulator.run(*s, jobs, ids, rng);

    stats::RunningSummary jct;
    for (double t : result.job_completion_times()) jct.add(t);
    table.add_row({std::string(s->name()), stats::Table::num(jct.mean()),
                   stats::Table::num(result.makespan),
                   stats::Table::num(result.total_shuffle_cost),
                   stats::Table::num(result.average_route_hops())});
  }
  std::cout << "\n" << table.render();
  std::cout << "\nLower is better everywhere; Hit should lead on shuffle cost "
               "and route length.\n";
  return 0;
}
