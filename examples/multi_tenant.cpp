// Multi-tenant cloud scenario — the setting that motivates the paper: many
// MapReduce jobs of mixed shuffle intensity sharing one hierarchical
// network, with bandwidth that changes as tenants come and go.
//
// Sweeps tenant pressure (number of concurrent jobs) and reports how each
// scheduler's job completion time and shuffle traffic degrade.
//
//   $ ./examples/multi_tenant [seed]
#include <cstdlib>
#include <iostream>

#include "core/hit_scheduler.h"
#include "mapreduce/workload.h"
#include "sched/capacity_scheduler.h"
#include "sched/pna_scheduler.h"
#include "sim/engine.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace hit;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // 64 hosts, three-level tree, two container slots each.
  topo::TreeConfig tree;
  tree.depth = 3;
  tree.fanout = 4;
  tree.redundancy = 2;
  tree.hosts_per_access = 4;
  const topo::Topology topology = topo::make_tree(tree);
  const cluster::Cluster cluster(topology, cluster::Resource{2.0, 8.0});

  sched::CapacityScheduler capacity;
  sched::PnaScheduler pna;
  core::HitScheduler hit;

  std::cout << "Multi-tenant sweep on " << cluster.size()
            << " hosts (constrained network):\n\n";

  stats::Table table({"tenants", "scheduler", "mean JCT", "p95 JCT",
                      "shuffle cost (GB*T)", "avg flow time"});
  for (std::size_t tenants : {4u, 8u, 12u}) {
    mr::WorkloadConfig wconfig;
    wconfig.num_jobs = tenants;
    wconfig.max_maps_per_job = 12;
    wconfig.max_reduces_per_job = 4;
    wconfig.block_size_gb = 2.0;
    const mr::WorkloadGenerator generator(wconfig);

    sim::SimConfig sconfig;
    sconfig.bandwidth_scale = 0.05;  // shared-tenant congestion

    for (sched::Scheduler* s :
         {static_cast<sched::Scheduler*>(&capacity),
          static_cast<sched::Scheduler*>(&pna),
          static_cast<sched::Scheduler*>(&hit)}) {
      Rng rng(seed);
      mr::IdAllocator ids;
      const auto jobs = generator.generate(ids, rng);
      const sim::ClusterSimulator sim(cluster, sconfig);
      const sim::SimResult result = sim.run(*s, jobs, ids, rng);

      const auto jcts = result.job_completion_times();
      table.add_row({std::to_string(tenants), std::string(s->name()),
                     stats::Table::num(stats::mean_of(jcts)),
                     stats::Table::num(stats::percentile(jcts, 95.0)),
                     stats::Table::num(result.total_shuffle_cost, 1),
                     stats::Table::num(result.average_flow_duration())});
    }
  }
  std::cout << table.render();
  std::cout << "\nAs tenant pressure grows, the topology-aware scheduler's "
               "advantage widens: it keeps heavy shuffles inside racks and "
               "routes around saturated switches.\n";
  return 0;
}
