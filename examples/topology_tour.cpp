// Topology tour: build each of the four network families the paper
// evaluates, print their structure, and show how the same shuffle-heavy job
// routes differently on each — including live policy optimization around a
// congested switch (the paper's Figure 2 scenario).
//
//   $ ./examples/topology_tour
#include <iostream>
#include <memory>

#include "core/policy_optimizer.h"
#include "network/routing.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "topology/builders.h"

int main() {
  using namespace hit;

  struct Entry {
    std::string name;
    topo::Topology topology;
  };
  std::vector<Entry> families;
  families.push_back({"Tree (depth 3)", topo::make_tree(topo::TreeConfig{3, 4, 2, 4})});
  families.push_back({"Fat-Tree (k=6)", topo::make_fat_tree(topo::FatTreeConfig{6})});
  families.push_back({"VL2", topo::make_vl2(topo::Vl2Config{4, 8, 16, 4})});
  families.push_back({"BCube(4,2)", topo::make_bcube(topo::BCubeConfig{4, 2})});

  stats::Table structure({"family", "servers", "switches", "links",
                          "diameter (switch hops)", "routes between far pair"});
  for (const Entry& e : families) {
    const auto servers = e.topology.servers();
    const NodeId a = servers.front();
    const NodeId b = servers.back();
    const auto far = e.topology.shortest_path(a, b);
    const auto alternates = e.topology.k_shortest_paths(a, b, 16);
    std::size_t equal_length = 0;
    for (const auto& p : alternates) {
      if (p.size() == far.size()) ++equal_length;
    }
    structure.add_row({e.name, std::to_string(servers.size()),
                       std::to_string(e.topology.switches().size()),
                       std::to_string(e.topology.graph().edge_count()),
                       std::to_string(e.topology.switch_hops(far)),
                       std::to_string(equal_length)});
  }
  std::cout << structure.render() << "\n";

  // Figure 2 scenario: congest the switch on a flow's shortest route and
  // watch the policy optimizer reroute.
  std::cout << "Policy optimization around congestion (paper Figure 2):\n";
  for (const Entry& e : families) {
    const auto servers = e.topology.servers();
    const NodeId a = servers.front();
    const NodeId b = servers.back();
    net::LoadTracker load(e.topology);
    const net::Policy shortest = net::shortest_policy(e.topology, a, b, FlowId(0));

    // Saturate the middle switch of the shortest route.
    const NodeId hot = shortest.list[shortest.len() / 2];
    net::Policy hot_only;
    hot_only.list = {hot};
    hot_only.type = {e.topology.tier(hot)};
    load.assign(hot_only, e.topology.switch_capacity(hot));

    const core::PolicyOptimizer optimizer(e.topology);
    const NodeId srcs[] = {a};
    const NodeId dsts[] = {b};
    const auto route = optimizer.optimal_route(srcs, dsts, FlowId(1), 1.0, 1.0, load);
    std::cout << "  " << e.name << ": congested "
              << e.topology.info(hot).name << " -> ";
    if (route) {
      const bool avoided =
          std::find(route->policy.list.begin(), route->policy.list.end(), hot) ==
          route->policy.list.end();
      std::cout << (avoided ? "rerouted via " : "still via ")
                << route->policy.to_string(e.topology) << "\n";
    } else {
      std::cout << "no feasible alternative (topology has a single path)\n";
    }
  }
  return 0;
}
